"""Compiled-region microbenchmark: Eq. 10 objective + gradient per family.

The end-to-end attack phase is floored by query labeling — real COUNT(*)
execution against the DBMS — which no compiler touches. This bench
isolates the region ``repro.nn.compile`` actually compiles: the
unrolled-update poisoning objective and its gradient w.r.t. the poison
encodings (the inner loop of PACE's generator training). It reports
interpreted vs compiled wall-clock per estimator family and asserts the
two paths agree bitwise, reproducing the "Compiled execution" table in
EXPERIMENTS.md.

Run with: ``PYTHONPATH=src python -m pytest benchmarks/bench_compile_region.py``
"""

from __future__ import annotations

import time

import numpy as np
from common import once, print_table

from repro.attack.algorithms import _Session
from repro.ce.registry import create_model
from repro.datasets.registry import load_dataset
from repro.db.executor import Executor
from repro.nn.compile import (
    compile_threshold,
    compiled_execution,
    reset_compile_state,
    set_compile_threshold,
)
from repro.nn.tensor import Tensor, grad
from repro.workload.encoding import QueryEncoder
from repro.workload.generator import WorkloadGenerator
from repro.workload.workload import Workload

FAMILIES = ("fcn", "fcn_pool", "mscn", "rnn", "lstm", "linear")
HIDDEN_DIM = 64
UPDATE_STEPS = 3
REPEATS = 5


class _Harness:
    """Carries the ``_Session`` attributes the objective helpers read."""

    poisoning_objective = _Session.poisoning_objective
    _compiled_poisoning_objective = _Session._compiled_poisoning_objective

    def __init__(self, surrogate, test_x, test_y):
        self.surrogate = surrogate
        self.test_x = test_x
        self.test_y = test_y
        self.config = type("Cfg", (), {"update_lr": 2.0})()


def _objective_and_grad(harness, view, encodings, y_norm):
    poison = Tensor(encodings.copy(), requires_grad=True)
    objective = harness.poisoning_objective(view, poison, y_norm, UPDATE_STEPS)
    (g,) = grad(objective, [poison])
    return float(objective.item()), g.data.copy()


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_compile_region_speedup(benchmark):
    database = load_dataset("tpch", scale="smoke", seed=0)
    encoder = QueryEncoder(database.schema)
    gen = WorkloadGenerator(database, seed=0)
    workload = Workload.from_queries(
        [gen.random_query(max_tables=3) for _ in range(16)], Executor(database)
    )
    encodings = np.array(workload.encode(encoder), copy=True)
    cards = workload.cardinalities

    def run():
        reset_compile_state()
        previous_threshold = compile_threshold()
        set_compile_threshold(1)
        rows = []
        all_bitwise = True
        try:
            for family in FAMILIES:
                model = create_model(family, encoder, hidden_dim=HIDDEN_DIM, seed=0)
                model.calibrate_normalization(cards)
                y_norm = model.normalize_log(cards)
                harness = _Harness(model, Tensor(encodings), Tensor(y_norm))
                view = create_model(family, encoder, hidden_dim=HIDDEN_DIM, seed=1)
                view.calibrate_normalization(cards)

                with compiled_execution(False):
                    interp_s, (obj_i, grad_i) = _best_of(
                        lambda: _objective_and_grad(harness, view, encodings, y_norm)
                    )
                with compiled_execution(True):
                    _objective_and_grad(harness, view, encodings, y_norm)  # build plan
                    compiled_s, (obj_c, grad_c) = _best_of(
                        lambda: _objective_and_grad(harness, view, encodings, y_norm)
                    )
                bitwise = obj_i == obj_c and np.array_equal(grad_i, grad_c)
                all_bitwise = all_bitwise and bitwise
                rows.append([
                    family, f"{interp_s * 1e3:.2f}", f"{compiled_s * 1e3:.2f}",
                    f"{interp_s / compiled_s:.2f}x", str(bitwise),
                ])
        finally:
            set_compile_threshold(previous_threshold)
        return rows, all_bitwise

    rows, all_bitwise = once(benchmark, run)
    print()
    print_table(
        ["family", "interpreted (ms)", "compiled (ms)", "speedup", "bitwise"],
        rows,
        title=f"Eq. 10 objective + grad, hidden_dim={HIDDEN_DIM}, "
              f"steps={UPDATE_STEPS} (best of {REPEATS})",
    )
    assert all_bitwise, "compiled objective/gradient diverged from interpreter"
