"""Table 6: model-type speculation accuracy.

For each CE model type, train several black boxes on fresh workloads and
check how often speculation recovers the true type. Paper: 87.5% average,
with FCN / FCN+Pool / MSCN confusable among themselves.
"""

from common import once, print_table

from repro.attack import speculate_model_type, train_candidates
from repro.ce import DeployedEstimator, TrainConfig, create_model, train_model
from repro.datasets import load_dataset
from repro.db import Executor
from repro.utils.config import get_scale
from repro.workload import QueryEncoder, WorkloadGenerator

SCALE = get_scale()
DATASETS = ("dmv",) if SCALE.name == "smoke" else ("dmv", "imdb", "tpch", "stats")
TYPES = ("fcn", "mscn", "rnn", "linear") if SCALE.name == "smoke" else (
    "fcn", "fcn_pool", "mscn", "rnn", "lstm", "linear"
)
TRIALS = 3 if SCALE.name == "smoke" else 20
#: The architecture families the paper observes are mutually confusable.
CONFUSABLE = {"fcn", "fcn_pool", "mscn"}


def _speculation_accuracy(dataset: str) -> dict[str, float]:
    db = load_dataset(dataset, scale=SCALE, seed=0)
    executor = Executor(db)
    encoder = QueryEncoder(db.schema)
    accuracy = {}
    for true_type in TYPES:
        hits = 0
        for trial in range(TRIALS):
            generator = WorkloadGenerator(db, executor, seed=100 + trial)
            train = generator.generate(SCALE.train_queries)
            model = create_model(
                true_type, encoder, hidden_dim=SCALE.hidden_dim, seed=trial
            )
            train_model(model, train, TrainConfig(epochs=SCALE.train_epochs, seed=trial))
            black_box = DeployedEstimator(model, executor)
            candidates = train_candidates(
                encoder,
                generator.generate(SCALE.train_queries),
                model_types=TYPES,
                hidden_dim=SCALE.hidden_dim,
                train_config=TrainConfig(epochs=max(SCALE.train_epochs // 2, 10)),
                seed=trial,
            )
            probes = WorkloadGenerator(db, executor, seed=500 + trial).probe_workloads(
                queries_per_group=SCALE.probe_queries_per_group
            )
            result = speculate_model_type(black_box, candidates, probes)
            guess = result.speculated_type
            if guess == true_type or (
                guess in CONFUSABLE and true_type in CONFUSABLE
            ):
                hits += 1
        accuracy[true_type] = hits / TRIALS
    return accuracy


def test_table6_speculation_accuracy(benchmark):
    def run():
        return {ds: _speculation_accuracy(ds) for ds in DATASETS}

    results = once(benchmark, run)
    rows = [
        [ds] + [f"{acc[t] * 100:.0f}%" for t in TYPES]
        for ds, acc in results.items()
    ]
    print()
    print_table(
        ["dataset"] + list(TYPES),
        rows,
        title=f"Table 6: speculation accuracy over {TRIALS} black boxes "
              "(family-level match)",
    )
    overall = sum(v for acc in results.values() for v in acc.values()) / (
        len(results) * len(TYPES)
    )
    print(f"overall accuracy: {overall * 100:.1f}% (paper: 87.5%)")
