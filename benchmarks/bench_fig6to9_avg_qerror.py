"""Figures 6-9: average Q-error of each CE model, clean vs five attacks.

Paper shape: PACE > Lb-G > Greedy > Lb-S > Random on the five neural
models; Linear is barely attackable; multi-table datasets degrade an order
of magnitude more than single-table DMV.
"""

from common import bench_datasets, bench_models, cached_outcome, once, print_table

from repro.harness import METHOD_LABELS, METHODS


def test_fig6to9_average_qerror(benchmark):
    def run():
        rows = []
        for dataset in bench_datasets():
            for model_type in bench_models():
                row = [dataset, model_type]
                for method in METHODS:
                    outcome = cached_outcome(dataset, model_type, method)
                    row.append(outcome.after.mean())
                rows.append(row)
        return rows

    rows = once(benchmark, run)
    headers = ["dataset", "model"] + [METHOD_LABELS[m] for m in METHODS]
    print()
    print_table(headers, rows, title="Fig. 6-9: average Q-error after attack")
