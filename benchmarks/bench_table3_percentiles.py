"""Table 3: percentile Q-error (90th/95th/99th/max) for the four deep
models under each attack method.
"""

from common import bench_datasets, cached_outcome, once, print_table

from repro.harness import METHOD_LABELS, METHODS
from repro.metrics import QErrorSummary
from repro.utils.config import get_scale

MODELS = ("fcn", "mscn") if get_scale().name == "smoke" else (
    "fcn", "fcn_pool", "mscn", "rnn"
)


def test_table3_percentile_qerror(benchmark):
    def run():
        rows = []
        for dataset in bench_datasets():
            for model_type in MODELS:
                for method in METHODS:
                    outcome = cached_outcome(dataset, model_type, method)
                    summary = QErrorSummary.from_errors(outcome.after)
                    row = summary.as_row()
                    rows.append(
                        [dataset, model_type, METHOD_LABELS[method],
                         row["90th"], row["95th"], row["99th"], row["max"]]
                    )
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["dataset", "model", "method", "90th", "95th", "99th", "max"],
        rows,
        title="Table 3: percentile Q-error after attack",
    )
