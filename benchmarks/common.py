"""Shared plumbing for the per-table / per-figure benchmark harnesses.

Every bench prints the same rows the paper's corresponding table or figure
reports, at the scale selected by ``REPRO_SCALE`` (default ``smoke``).
Attack outcomes are cached per (dataset, model, method, options) within the
pytest session, so benches that slice the same experiment differently
(e.g. Fig. 6-9 averages vs Table 3 percentiles) do not re-run attacks.
"""

from __future__ import annotations

from repro.harness import AttackOutcome, get_scenario, run_attack
from repro.metrics import print_table  # re-exported for the benches
from repro.utils.config import get_scale

__all__ = [
    "print_table",
    "bench_scale",
    "bench_datasets",
    "bench_models",
    "cached_outcome",
    "once",
]

_OUTCOMES: dict[tuple, AttackOutcome] = {}


def bench_scale():
    return get_scale()


def bench_datasets() -> tuple[str, ...]:
    """Datasets exercised at the current scale (all four beyond smoke)."""
    if bench_scale().name == "smoke":
        return ("dmv", "tpch")
    return ("dmv", "imdb", "tpch", "stats")


def bench_models() -> tuple[str, ...]:
    """CE model types exercised at the current scale."""
    if bench_scale().name == "smoke":
        return ("fcn", "mscn")
    return ("fcn", "fcn_pool", "mscn", "rnn", "lstm", "linear")


def cached_outcome(
    dataset: str,
    model_type: str,
    method: str,
    seed: int = 0,
    **options,
) -> AttackOutcome:
    """Run (or fetch) one attack outcome."""
    key = (dataset, model_type, method, seed, tuple(sorted(options.items())))
    if key not in _OUTCOMES:
        scenario = get_scenario(dataset, model_type, seed=seed)
        _OUTCOMES[key] = run_attack(scenario, method, seed=seed, **options)
    return _OUTCOMES[key]


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
