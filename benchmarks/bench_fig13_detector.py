"""Figure 13: the anomaly-detector adversary — effectiveness vs normality.

Sweep the reconstruction threshold; compare PACE with and without the
detector in the training loop. Paper: the detector costs ~7.6% attack
effectiveness but reduces divergence from the historical workload by ~72%.
"""

from common import once, print_table

import numpy as np

from repro.attack import GeneratorTrainConfig, PoisonQueryGenerator, train_generator_accelerated
from repro.ce import evaluate_q_errors
from repro.harness import get_detector, get_scenario, get_surrogate
from repro.metrics import workload_divergence
from repro.utils.config import get_scale

SCALE = get_scale()
#: Multipliers of the calibrated (95th-percentile) reconstruction
#: threshold — the paper's 5%..10% epsilon sweep expressed relative to the
#: detector's own calibration so the sweep is meaningful at every scale.
THRESHOLD_SCALES = (0.5, 1.0, 2.0)


def _attack(scenario, detector) -> tuple[float, float]:
    surrogate = get_surrogate(scenario)
    generator = PoisonQueryGenerator(scenario.encoder, seed=0)
    config = GeneratorTrainConfig(
        poison_batch=SCALE.poison_queries,
        update_steps=SCALE.update_steps,
        iterations=max(SCALE.generator_steps * 2, 16),
        detector=detector,
        seed=0,
    )
    train_generator_accelerated(
        generator, surrogate, scenario.executor, scenario.test_workload, config
    )
    queries = generator.generate_queries(SCALE.poison_queries, np.random.default_rng(17))
    divergence = workload_divergence(
        scenario.encoder.encode_many(queries),
        scenario.train_workload.encode(scenario.encoder),
    )
    scenario.reset()
    before = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
    scenario.deployed.execute(queries)
    after = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
    scenario.reset()
    return after / before, divergence


def test_fig13_detector_tradeoff(benchmark):
    def run():
        scenario = get_scenario("dmv", "fcn")
        results = {"without": _attack(scenario, None)}
        detector = get_detector(scenario)
        original = detector.threshold
        try:
            for factor in THRESHOLD_SCALES:
                detector.set_threshold(original * factor)
                results[f"with eps={original * factor:.4f}"] = _attack(scenario, detector)
        finally:
            detector.set_threshold(original)
        return results

    results = once(benchmark, run)
    rows = [[name, deg, div] for name, (deg, div) in results.items()]
    print()
    print_table(
        ["configuration", "degradation (x)", "JS divergence"],
        rows,
        title="Fig. 13: detector threshold sweep (DMV, FCN)",
    )
    deg_without, div_without = results["without"]
    with_rows = [v for k, v in results.items() if k != "without"]
    if with_rows and div_without > 0:
        best_div = min(div for _deg, div in with_rows)
        print(f"divergence reduction with detector: "
              f"{(1 - best_div / div_without) * 100:.0f}% (paper: 72%)")
