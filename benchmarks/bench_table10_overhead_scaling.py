"""Table 10: overhead vs number of generated queries.

Paper shape: training time is independent of the final query count;
generation and attack time scale proportionally with it.
"""

from common import once, print_table

from repro.utils.config import get_scale

SCALE = get_scale()
COUNTS = [max(SCALE.poison_queries // 2, 4), SCALE.poison_queries,
          SCALE.poison_queries * 2]


def test_table10_overhead_scaling(benchmark):
    from common import cached_outcome

    def run():
        rows = []
        for count in COUNTS:
            outcome = cached_outcome("dmv", "fcn", "pace", count=count)
            rows.append(
                [f"{count} queries", outcome.train_seconds,
                 outcome.generate_seconds, outcome.attack_seconds]
            )
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["#queries", "train (s)", "generate (s)", "attack (s)"],
        rows,
        title="Table 10: PACE overhead vs #generated queries (DMV, FCN)",
    )
