"""Table 9: attack overhead — training / generation / attack seconds.

Paper shape: training dominates (minutes-hours), generation and attacking
are sub-second-to-seconds; single-table DMV trains fastest (no join
generator work).
"""

from common import bench_datasets, cached_outcome, once, print_table


def test_table9_overhead(benchmark):
    def run():
        rows = []
        for dataset in bench_datasets():
            outcome = cached_outcome(dataset, "fcn", "pace")
            rows.append(
                [dataset, outcome.train_seconds, outcome.generate_seconds,
                 outcome.attack_seconds]
            )
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["dataset", "train (s)", "generate (s)", "attack (s)"],
        rows,
        title="Table 9: PACE overhead on FCN",
    )
    train_times = {row[0]: row[1] for row in rows}
    if "dmv" in train_times and len(train_times) > 1:
        others = [v for k, v in train_times.items() if k != "dmv"]
        print(
            "single-table DMV trains fastest:",
            train_times["dmv"] <= min(others) * 1.5,
        )
