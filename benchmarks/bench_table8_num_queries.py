"""Table 8: attack effect vs number of poisoning queries.

Paper: the full effect arrives by ~5% of the training workload (450 of
10000); doubling beyond that adds little.
"""

from common import cached_outcome, once, print_table

from repro.utils.config import get_scale

SCALE = get_scale()
DATASETS = ("dmv",) if SCALE.name == "smoke" else ("dmv", "imdb")
#: Counts mirroring the paper's 225 / 450 / 900 / 1800 at the current scale.
COUNTS = [max(SCALE.poison_queries // 2, 4), SCALE.poison_queries,
          SCALE.poison_queries * 2, SCALE.poison_queries * 4]


def test_table8_vary_poison_count(benchmark):
    def run():
        rows = []
        for dataset in DATASETS:
            row = [dataset]
            for count in COUNTS:
                outcome = cached_outcome(dataset, "fcn", "pace", count=count)
                row.append(outcome.degradation)
            rows.append(row)
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["dataset"] + [f"n={c}" for c in COUNTS],
        rows,
        title="Table 8: Q-error degradation factor vs #poisoning queries "
              f"(default n={SCALE.poison_queries} ~ "
              f"{SCALE.poison_ratio:.0%} of training)",
    )
