"""Figure 10: combined surrogate loss (Eq. 7) vs direct imitation (Eq. 6).

Paper: the combined strategy's attack is ~32% more effective on DMV.
We report both the imitation quality of each surrogate and the attack
effectiveness achieved through it.
"""

from common import once, print_table

import numpy as np

from repro.attack import (
    GeneratorTrainConfig,
    PoisonQueryGenerator,
    SurrogateConfig,
    output_agreement,
    train_generator_accelerated,
    train_surrogate,
)
from repro.ce import evaluate_q_errors
from repro.harness import get_scenario
from repro.utils.config import get_scale

SCALE = get_scale()


def _attack_through_surrogate(scenario, strategy: str):
    surrogate = train_surrogate(
        scenario.model_type,
        scenario.encoder,
        scenario.train_workload,
        scenario.deployed,
        SurrogateConfig(
            strategy=strategy, hidden_dim=SCALE.hidden_dim,
            epochs=SCALE.train_epochs, seed=0,
        ),
    )
    bb_estimates = scenario.deployed.explain_many(scenario.test_workload.queries)
    agreement = output_agreement(surrogate, bb_estimates, scenario.test_workload.queries)

    generator = PoisonQueryGenerator(scenario.encoder, seed=0)
    config = GeneratorTrainConfig(
        poison_batch=SCALE.poison_queries,
        update_steps=SCALE.update_steps,
        iterations=max(SCALE.generator_steps * 2, 16),
        seed=0,
    )
    train_generator_accelerated(
        generator, surrogate, scenario.executor, scenario.test_workload, config
    )
    queries = generator.generate_queries(SCALE.poison_queries, np.random.default_rng(17))
    scenario.reset()
    before = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
    scenario.deployed.execute(queries)
    after = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
    scenario.reset()
    return agreement, after / before


def test_fig10_surrogate_training_strategy(benchmark):
    def run():
        scenario = get_scenario("dmv", "fcn")
        return {
            strategy: _attack_through_surrogate(scenario, strategy)
            for strategy in ("combined", "direct")
        }

    results = once(benchmark, run)
    rows = [
        [strategy, agreement, degradation]
        for strategy, (agreement, degradation) in results.items()
    ]
    print()
    print_table(
        ["surrogate loss", "imitation |dlog|", "attack degradation (x)"],
        rows,
        title="Fig. 10: Eq. 7 combined loss vs Eq. 6 direct imitation (DMV, FCN)",
    )
