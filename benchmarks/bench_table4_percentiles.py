"""Table 4: percentile Q-error (95th/max) for LSTM and Linear.

Paper shape: LSTM is attackable like the other deep models; Linear barely
moves (few parameters => robust).
"""

from common import cached_outcome, once, print_table

from repro.harness import METHOD_LABELS, METHODS
from repro.metrics import QErrorSummary
from repro.utils.config import get_scale

DATASETS = ("dmv",) if get_scale().name == "smoke" else ("dmv", "imdb", "tpch")


def test_table4_lstm_linear(benchmark):
    def run():
        rows = []
        for dataset in DATASETS:
            for model_type in ("lstm", "linear"):
                for method in METHODS:
                    outcome = cached_outcome(dataset, model_type, method)
                    summary = QErrorSummary.from_errors(outcome.after)
                    rows.append(
                        [dataset, model_type, METHOD_LABELS[method],
                         summary.p95, summary.max]
                    )
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["dataset", "model", "method", "95th", "max"],
        rows,
        title="Table 4: percentile Q-error, LSTM and Linear",
    )


def test_table4_linear_robustness_report(benchmark):
    """Report the paper's Linear-robustness claim.

    Paper: Linear barely degrades (few parameters => low fitting ability =>
    robustness). At smoke scale our incremental-update step is large
    relative to the tiny training workload, so even Linear's global bias
    can be shifted; see EXPERIMENTS.md for the deviation discussion. The
    number is reported, not asserted.
    """

    def run():
        pace = cached_outcome("dmv", "linear", "pace")
        clean = cached_outcome("dmv", "linear", "clean")
        return pace.after.mean() / clean.after.mean()

    factor = once(benchmark, run)
    print(f"\nLinear model degradation under PACE: {factor:.2f}x (paper: ~1x; "
          "see EXPERIMENTS.md on scale sensitivity)")
