"""Figure 15: convergence of the Eq. 10 optimization objective.

We report the loss (negative poisoning objective) trace per dataset.
Paper shape: fluctuating but trending down, converging by the end.
"""

from common import bench_datasets, cached_outcome, once, print_table

import numpy as np


def test_fig15_convergence(benchmark):
    def run():
        return {
            dataset: cached_outcome(dataset, "fcn", "pace").objective_curve
            for dataset in bench_datasets()
        }

    curves = once(benchmark, run)
    rows = []
    for dataset, curve in curves.items():
        curve = np.asarray(curve)
        quarter = max(len(curve) // 4, 1)
        rows.append(
            [dataset, len(curve), curve[:quarter].mean(), curve[-quarter:].mean(),
             curve.min()]
        )
    print()
    print_table(
        ["dataset", "iterations", "early mean loss", "late mean loss", "best loss"],
        rows,
        title="Fig. 15: generator-training loss (negative objective) trace",
    )
    for dataset, curve in curves.items():
        trace = " ".join(f"{v:+.3f}" for v in curve)
        print(f"{dataset}: {trace}")
    print()
