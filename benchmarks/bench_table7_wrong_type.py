"""Table 7: attack-effectiveness decrease under a wrongly speculated type.

Attack an FCN-family black box with surrogates of every candidate type and
report how much weaker each wrong-type attack is relative to the matched
one. Paper: 8.2% average decrease — wrong types still attack well.
"""

from common import once, print_table

import numpy as np

from repro.attack import GeneratorTrainConfig, PaceAttack, PaceConfig, SurrogateConfig
from repro.ce import evaluate_q_errors
from repro.harness import get_scenario
from repro.utils.config import get_scale

SCALE = get_scale()
BLACK_BOX_TYPES = ("fcn",) if SCALE.name == "smoke" else (
    "fcn", "fcn_pool", "mscn", "rnn", "lstm", "linear"
)
SURROGATE_TYPES = ("fcn", "mscn", "linear") if SCALE.name == "smoke" else BLACK_BOX_TYPES


def _attack_with_forced_type(scenario, surrogate_type: str) -> float:
    scenario.reset()
    config = PaceConfig(
        poison_queries=SCALE.poison_queries,
        attacker_queries=SCALE.train_queries,
        speculate=False,
        forced_model_type=surrogate_type,
        use_detector=False,
        surrogate=SurrogateConfig(hidden_dim=SCALE.hidden_dim, seed=0),
        generator=GeneratorTrainConfig(
            poison_batch=SCALE.poison_queries,
            update_steps=SCALE.update_steps,
            iterations=max(SCALE.generator_steps * 2, 16),
            seed=0,
        ),
        seed=0,
    )
    attack = PaceAttack(scenario.database, scenario.deployed, scenario.test_workload, config)
    before = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
    attack.attack()
    after = evaluate_q_errors(scenario.model, scenario.test_workload).mean()
    scenario.reset()
    return after / before


def test_table7_wrong_surrogate_type(benchmark):
    def run():
        matrix = {}
        for bb_type in BLACK_BOX_TYPES:
            scenario = get_scenario("dmv", bb_type)
            matrix[bb_type] = {
                s_type: _attack_with_forced_type(scenario, s_type)
                for s_type in SURROGATE_TYPES
            }
        return matrix

    matrix = once(benchmark, run)
    rows = []
    decreases = []
    for bb_type, row in matrix.items():
        matched = row.get(bb_type, max(row.values()))
        cells = [bb_type]
        for s_type in SURROGATE_TYPES:
            decrease = max(0.0, 1.0 - row[s_type] / max(matched, 1e-9))
            if s_type != bb_type:
                decreases.append(decrease)
            cells.append(f"{decrease * 100:.1f}%")
        rows.append(cells)
    print()
    print_table(
        ["black box \\ surrogate"] + list(SURROGATE_TYPES),
        rows,
        title="Table 7: effectiveness decrease vs matched surrogate type",
    )
    if decreases:
        print(f"average decrease: {np.mean(decreases) * 100:.1f}% (paper: 8.2%)")
