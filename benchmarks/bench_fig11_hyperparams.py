"""Figure 11: surrogate/black-box hyper-parameter mismatch.

The surrogate keeps default hyper-parameters while the black box varies
layer count and hidden width. Paper: ~5.5% / ~6.5% average reduction —
mismatch barely matters.
"""

from common import once, print_table

import numpy as np

from repro.attack import GeneratorTrainConfig, PaceAttack, PaceConfig, SurrogateConfig
from repro.ce import DeployedEstimator, TrainConfig, create_model, evaluate_q_errors, train_model
from repro.datasets import load_dataset
from repro.db import Executor
from repro.harness import make_workloads
from repro.utils.config import get_scale
from repro.workload import QueryEncoder

SCALE = get_scale()
LAYER_COUNTS = (1, 2, 3)
HIDDEN_SCALES = (0.5, 1.0, 2.0)


def _attack_black_box(num_layers: int, hidden_scale: float) -> float:
    db = load_dataset("dmv", scale=SCALE, seed=0)
    executor = Executor(db)
    train_wl, test_wl = make_workloads(db, executor, SCALE, seed=0)
    encoder = QueryEncoder(db.schema)
    model = create_model(
        "fcn", encoder,
        hidden_dim=max(int(SCALE.hidden_dim * hidden_scale), 4),
        num_layers=num_layers, seed=0,
    )
    train_model(model, train_wl, TrainConfig(epochs=SCALE.train_epochs, seed=0))
    deployed = DeployedEstimator(model, executor, update_steps=SCALE.update_steps)
    config = PaceConfig(
        poison_queries=SCALE.poison_queries,
        attacker_queries=SCALE.train_queries,
        speculate=False,
        forced_model_type="fcn",
        use_detector=False,
        surrogate=SurrogateConfig(hidden_dim=SCALE.hidden_dim, num_layers=2, seed=0),
        generator=GeneratorTrainConfig(
            poison_batch=SCALE.poison_queries,
            update_steps=SCALE.update_steps,
            iterations=max(SCALE.generator_steps * 2, 16),
            seed=0,
        ),
        seed=0,
    )
    attack = PaceAttack(db, deployed, test_wl, config)
    before = evaluate_q_errors(model, test_wl).mean()
    attack.attack()
    after = evaluate_q_errors(model, test_wl).mean()
    return after / before


def test_fig11_hyperparameter_mismatch(benchmark):
    def run():
        layer_results = {n: _attack_black_box(n, 1.0) for n in LAYER_COUNTS}
        hidden_results = {s: _attack_black_box(2, s) for s in HIDDEN_SCALES}
        return layer_results, hidden_results

    layer_results, hidden_results = once(benchmark, run)
    base = layer_results[2]
    print()
    print_table(
        ["black-box layers", "degradation (x)", "relative to matched"],
        [[n, d, d / max(base, 1e-9)] for n, d in layer_results.items()],
        title="Fig. 11(a): black-box depth vs fixed default surrogate",
    )
    base_h = hidden_results[1.0]
    print_table(
        ["black-box hidden scale", "degradation (x)", "relative to matched"],
        [[s, d, d / max(base_h, 1e-9)] for s, d in hidden_results.items()],
        title="Fig. 11(b): black-box width vs fixed default surrogate",
    )
    relatives = [d / max(base, 1e-9) for n, d in layer_results.items() if n != 2]
    relatives += [d / max(base_h, 1e-9) for s, d in hidden_results.items() if s != 1.0]
    print(f"mean relative effectiveness under mismatch: {np.mean(relatives):.2f} "
          "(paper: ~0.94)")
