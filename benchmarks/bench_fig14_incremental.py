"""Figure 14: attacking an incrementally trained CE model.

The training workload is split into five parts; after each incremental
training round, PACE attacks the current model. Paper: the first round
(model still under-trained) degrades most; later rounds stabilize around a
consistent degradation factor.
"""

from common import once, print_table

import numpy as np

from repro.attack import GeneratorTrainConfig, PaceAttack, PaceConfig, SurrogateConfig
from repro.ce import (
    DeployedEstimator,
    TrainConfig,
    create_model,
    evaluate_q_errors,
    train_model,
)
from repro.datasets import load_dataset
from repro.db import Executor
from repro.harness import make_workloads
from repro.utils.config import get_scale
from repro.workload import QueryEncoder

SCALE = get_scale()
DATASETS = ("dmv",) if SCALE.name == "smoke" else ("dmv", "imdb", "tpch", "stats")
ROUNDS = 5


def _incremental_rounds(dataset: str) -> list[tuple[float, float]]:
    db = load_dataset(dataset, scale=SCALE, seed=0)
    executor = Executor(db)
    train_wl, test_wl = make_workloads(db, executor, SCALE, seed=0)
    encoder = QueryEncoder(db.schema)
    model = create_model("fcn", encoder, hidden_dim=SCALE.hidden_dim, seed=0)
    chunks = train_wl.chunks(ROUNDS)

    results = []
    epochs = max(SCALE.train_epochs // ROUNDS, 5)
    for round_index, chunk in enumerate(chunks):
        if round_index == 0:
            train_model(model, chunk, TrainConfig(epochs=epochs, seed=0))
        else:
            from repro.ce import incremental_update

            incremental_update(model, chunk, steps=SCALE.update_steps * 2)
        deployed = DeployedEstimator(model, executor, update_steps=SCALE.update_steps)
        snapshot = deployed.snapshot()
        before = evaluate_q_errors(model, test_wl).mean()
        config = PaceConfig(
            poison_queries=SCALE.poison_queries,
            attacker_queries=max(SCALE.train_queries // 2, 30),
            speculate=False,
            forced_model_type="fcn",
            use_detector=False,
            surrogate=SurrogateConfig(hidden_dim=SCALE.hidden_dim, seed=round_index),
            generator=GeneratorTrainConfig(
                poison_batch=SCALE.poison_queries,
                update_steps=SCALE.update_steps,
                iterations=max(SCALE.generator_steps, 12),
                seed=round_index,
            ),
            seed=round_index,
        )
        attack = PaceAttack(db, deployed, test_wl, config)
        attack.attack()
        after = evaluate_q_errors(model, test_wl).mean()
        deployed.restore(snapshot)  # the next round trains on clean params
        results.append((before, after))
    return results


def test_fig14_incremental_training(benchmark):
    def run():
        return {ds: _incremental_rounds(ds) for ds in DATASETS}

    results = once(benchmark, run)
    rows = []
    for dataset, rounds in results.items():
        for i, (before, after) in enumerate(rounds):
            rows.append([dataset, i + 1, before, after, after / max(before, 1e-9)])
    print()
    print_table(
        ["dataset", "round", "clean Q-err", "attacked Q-err", "factor"],
        rows,
        title="Fig. 14: PACE vs an incrementally trained FCN",
    )
    factors = [after / max(before, 1e-9) for rounds in results.values()
               for before, after in rounds]
    print(f"mean degradation factor per round: {np.mean(factors):.1f}x (paper: 22.4x)")
