"""Table 5: end-to-end execution time of 20 multi-table join queries.

Plans are chosen with the (clean or poisoned) CE model's estimates; the
reported seconds are the chosen plans' true-cardinality cost under the
latency model. Paper shape: PACE yields the slowest execution on every
dataset and model.
"""

from common import once, print_table

from repro.harness import METHOD_LABELS, METHODS, get_scenario, run_e2e
from repro.utils.config import get_scale

SCALE = get_scale()
DATASETS = ("tpch",) if SCALE.name == "smoke" else ("imdb", "tpch", "stats")
MODELS = ("fcn",) if SCALE.name == "smoke" else ("fcn", "fcn_pool", "mscn", "rnn", "lstm")
NUM_QUERIES = 10 if SCALE.name == "smoke" else 20


def test_table5_e2e_latency(benchmark):
    def run():
        rows = []
        for dataset in DATASETS:
            for model_type in MODELS:
                scenario = get_scenario(dataset, model_type)
                row = [dataset, model_type]
                for method in METHODS:
                    row.append(run_e2e(scenario, method, num_queries=NUM_QUERIES))
                rows.append(row)
        return rows

    rows = once(benchmark, run)
    print()
    print_table(
        ["dataset", "model"] + [METHOD_LABELS[m] for m in METHODS],
        rows,
        title=f"Table 5: simulated E2E seconds for {NUM_QUERIES} join queries",
    )
