"""Figure 12: PACE-basic vs PACE-optimized (Fig. 5's two algorithms).

Paper: the optimized (interleaved) algorithm is ~20.6% more effective and
~9.7x faster. We give the basic algorithm a comparable number of generator
updates and report both wall time and attack effectiveness.
"""

from common import cached_outcome, once, print_table


def test_fig12_basic_vs_optimized(benchmark):
    def run():
        optimized = cached_outcome("dmv", "fcn", "pace", algorithm="accelerated")
        basic = cached_outcome("dmv", "fcn", "pace", algorithm="basic")
        return optimized, basic

    optimized, basic = once(benchmark, run)
    print()
    print_table(
        ["algorithm", "degradation (x)", "train wall (s)", "gen updates"],
        [
            ["PACE-optimized", optimized.degradation, optimized.train_seconds,
             len(optimized.objective_curve)],
            ["PACE-basic", basic.degradation, basic.train_seconds,
             len(basic.objective_curve)],
        ],
        title="Fig. 12: algorithm ablation (DMV, FCN)",
    )
    if basic.train_seconds > 0 and optimized.train_seconds > 0:
        speedup = basic.train_seconds / optimized.train_seconds
        quality = optimized.degradation / max(basic.degradation, 1e-9)
        print(f"end-to-end: optimized is {speedup:.1f}x faster and reaches "
              f"{quality:.1f}x the attack strength (paper: 9.7x faster, "
              "+20.6% effectiveness)")
