"""``pace-repro resume-bench``: warm-resume speedup of the durable grid.

Runs the same smoke attack grid three ways in throwaway stores:

1. **cold** — an uninterrupted durable run, timed end to end;
2. **crashed** — the identical run killed by an injected
   :class:`~repro.store.faults.CrashPoint` at the start of its last
   attack cell (so the expensive surrogate training and the earlier
   cells are already committed);
3. **resume** — ``resume_run`` on the crashed store, timed end to end.

The report records the cold/resume wall-clock ratio, the fraction of
step wall-clock replayed from checkpoints instead of re-executed, and
whether the resumed report artifact is byte-identical (same content
digest) to the cold run's — the PR 5 acceptance numbers, written to
``benchmarks/BENCH_PR5.json``.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro.store.faults import CrashPoint, FaultInjector, FaultSpec, inject
from repro.store.pipeline import resume_run
from repro.store.store import ArtifactStore

SCHEMA_VERSION = 1

#: Where the resume benchmark report lands by default.
DEFAULT_REPORT = Path("benchmarks") / "BENCH_PR5.json"


def _report_digest(store: ArtifactStore, run_id: str) -> str:
    return store.open_run(run_id).step("report")["artifact"]


def run_resume_bench(
    methods: tuple[str, ...] = ("clean", "random", "lbs"),
    dataset: str = "dmv",
    model_type: str = "fcn",
    scale: str = "smoke",
    seed: int = 0,
) -> dict:
    """Measure crash-resume correctness and warm-restart savings."""
    from repro.harness.pipelines import cell_step_name, run_grid_durable

    workdir = Path(tempfile.mkdtemp(prefix="pace-resume-bench-"))
    try:
        cold_store = ArtifactStore(workdir / "cold")
        start = time.perf_counter()
        cold = run_grid_durable(
            cold_store, datasets=(dataset,), models=(model_type,),
            methods=methods, scale=scale, seed=seed,
        )
        cold_seconds = time.perf_counter() - start
        cold_digest = _report_digest(cold_store, cold.run_id)

        # Kill the identical run at the start of its final attack cell:
        # everything before that boundary is committed and must replay.
        crash_store = ArtifactStore(workdir / "crash")
        crash_site = f"step:{cell_step_name(dataset, model_type, methods[-1])}:start"
        injector = FaultInjector([FaultSpec(site=crash_site, kind="crash")])
        try:
            with inject(injector):
                run_grid_durable(
                    crash_store, datasets=(dataset,), models=(model_type,),
                    methods=methods, scale=scale, seed=seed,
                )
            raise RuntimeError(f"injected crash at {crash_site!r} never fired")
        except CrashPoint:
            pass

        start = time.perf_counter()
        resumed = resume_run(crash_store, crash_store.run_ids()[0])
        resume_seconds = time.perf_counter() - start
        resumed_digest = _report_digest(crash_store, resumed.run_id)

        # Fraction of the cold run's step wall-clock the resume did NOT
        # redo. Priced against the cold run because the crashed run
        # shares this process and benefits from in-process caches (e.g.
        # the surrogate cache), so its manifest under-reports the cost
        # of the steps the resume gets to skip.
        total = sum(cold.step_seconds.values())
        replayed = sum(cold.step_seconds[name] for name in resumed.skipped)
        skipped_wallclock_fraction = replayed / total if total else 0.0
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "pace-repro resume-bench",
        "dataset": dataset,
        "model": model_type,
        "methods": list(methods),
        "scale": scale,
        "seed": seed,
        "recorded_unix": time.time(),
        "crash_site": crash_site,
        "cold_seconds": float(cold_seconds),
        "resume_seconds": float(resume_seconds),
        "speedup": float(cold_seconds / resume_seconds) if resume_seconds else 0.0,
        "steps_total": len(resumed.executed) + len(resumed.skipped),
        "steps_replayed": len(resumed.skipped),
        "steps_reexecuted": len(resumed.executed),
        "skipped_wallclock_fraction": float(skipped_wallclock_fraction),
        "byte_identical": resumed_digest == cold_digest,
        "report_digest": cold_digest,
    }


def format_resume_bench(report: dict) -> str:
    lines = [
        f"resume-bench ({report['dataset']}/{report['model']}, "
        f"methods {', '.join(report['methods'])}, scale {report['scale']}, "
        f"seed {report['seed']})",
        f"  crash site:      {report['crash_site']}",
        f"  cold run:        {report['cold_seconds']:.2f}s "
        f"({report['steps_total']} steps)",
        f"  warm resume:     {report['resume_seconds']:.2f}s "
        f"({report['steps_replayed']} replayed, "
        f"{report['steps_reexecuted']} re-executed)",
        f"  speedup:         x{report['speedup']:.2f}",
        f"  wall-clock kept: {report['skipped_wallclock_fraction']:.0%}",
        f"  byte-identical:  {report['byte_identical']}",
    ]
    return "\n".join(lines)
