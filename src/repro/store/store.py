"""Content-addressed artifact store with versioned run manifests.

Layout under one root directory::

    root/
      objects/aa/<sha256>      # immutable blobs, keyed by content hash
      runs/<run_id>/manifest.json

Blobs are deduplicated by construction (same bytes, same digest, same
path) and every read re-hashes the content, so torn or corrupted writes
are *detected* rather than silently served — the resumable pipeline
treats a failed verification as "this step never happened" and re-runs
it. Manifests record, per run: step status, the artifact each step
produced, explicit lineage edges (``parents`` digests, e.g. surrogate
checkpoint → attack outcome → merged report), and free-form events
(model promotions/rollbacks from the serving layer). Every manifest
update is one atomic write, which is precisely the crash boundary the
fault-injection sweep kills at.

Typed artifact kinds:

``json`` / ``report``
    Canonical JSON (sorted keys, pinned layout) — deterministic bytes.
``checkpoint``
    A module/estimator state dict in the versioned container from
    :mod:`repro.nn.serialization` — also deterministic bytes.
``workload``
    Labeled queries (tables, normalized predicates, cardinality) as
    canonical JSON; rebuilt against a schema on load.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.db.query import LabeledQuery, Query
from repro.nn.serialization import state_from_bytes, state_to_bytes
from repro.store.io import atomic_write_bytes, atomic_write_json, canonical_json_bytes, jsonify
from repro.utils.errors import StoreError
from repro.workload.workload import Workload

MANIFEST_VERSION = 1

ARTIFACT_KINDS = ("json", "report", "checkpoint", "workload")


def content_digest(data: bytes) -> str:
    """The store's content address: hex SHA-256."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class Artifact:
    """Handle to one stored blob."""

    digest: str
    kind: str
    size: int


class ArtifactStore:
    """A durable artifact/run store rooted at one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # objects
    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    def object_path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / digest

    def put_bytes(self, data: bytes, kind: str = "json") -> Artifact:
        """Store ``data`` by content hash (idempotent; heals corrupt blobs)."""
        if kind not in ARTIFACT_KINDS:
            raise StoreError(f"unknown artifact kind {kind!r}; expected one of {ARTIFACT_KINDS}")
        digest = content_digest(data)
        path = self.object_path(digest)
        if not self._object_ok(digest):
            atomic_write_bytes(path, data)
        return Artifact(digest=digest, kind=kind, size=len(data))

    def _object_ok(self, digest: str) -> bool:
        path = self.object_path(digest)
        try:
            data = path.read_bytes()
        except OSError:
            return False
        return content_digest(data) == digest

    def has_object(self, digest: str) -> bool:
        return self.object_path(digest).exists()

    def verify_object(self, digest: str) -> bool:
        """Whether the blob exists *and* hashes back to its digest."""
        return self._object_ok(digest)

    def get_bytes(self, digest: str) -> bytes:
        """Read a blob, verifying its content hash (torn-write detection)."""
        path = self.object_path(digest)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise StoreError(f"missing artifact {digest[:12]}… at {path}") from exc
        actual = content_digest(data)
        if actual != digest:
            raise StoreError(
                f"corrupt artifact {digest[:12]}…: content hashes to {actual[:12]}… "
                f"(torn or tampered write at {path})"
            )
        return data

    # ------------------------------------------------------------------
    # typed artifacts
    # ------------------------------------------------------------------
    def put_json(self, payload, kind: str = "json") -> Artifact:
        return self.put_bytes(canonical_json_bytes(payload), kind=kind)

    def get_json(self, digest: str):
        import json

        return json.loads(self.get_bytes(digest).decode("utf-8"))

    def put_checkpoint(self, state: dict[str, np.ndarray]) -> Artifact:
        return self.put_bytes(state_to_bytes(state), kind="checkpoint")

    def get_checkpoint(self, digest: str) -> dict[str, np.ndarray]:
        return state_from_bytes(self.get_bytes(digest))

    def put_workload(self, workload: Workload) -> Artifact:
        payload = {
            "examples": [
                {
                    "tables": sorted(ex.query.tables),
                    "predicates": sorted(
                        [table, column, float(low), float(high)]
                        for (table, column), (low, high) in ex.query.predicates.items()
                    ),
                    "cardinality": int(ex.cardinality),
                }
                for ex in workload
            ],
        }
        return self.put_bytes(canonical_json_bytes(payload), kind="workload")

    def get_workload(self, digest: str, schema) -> Workload:
        payload = self.get_json(digest)
        examples = []
        for entry in payload["examples"]:
            predicates = {
                (table, column): (low, high)
                for table, column, low, high in entry["predicates"]
            }
            query = Query.build(schema, entry["tables"], predicates)
            examples.append(LabeledQuery(query, entry["cardinality"]))
        return Workload(examples)

    # ------------------------------------------------------------------
    # runs
    # ------------------------------------------------------------------
    def manifest_path(self, run_id: str) -> Path:
        return self.runs_dir / run_id / "manifest.json"

    def has_run(self, run_id: str) -> bool:
        return self.manifest_path(run_id).exists()

    def run_ids(self) -> list[str]:
        if not self.runs_dir.is_dir():
            return []
        return sorted(
            entry.name for entry in self.runs_dir.iterdir()
            if (entry / "manifest.json").is_file()
        )

    def create_run(
        self,
        pipeline: str,
        run_id: str,
        params: dict | None = None,
        seed: int = 0,
    ) -> "RunHandle":
        if self.has_run(run_id):
            raise StoreError(
                f"run {run_id!r} already exists; open_run() it (or resume) instead"
            )
        if not run_id or "/" in run_id or run_id.startswith("."):
            raise StoreError(f"invalid run id {run_id!r}")
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "run_id": run_id,
            "pipeline": pipeline,
            "params": jsonify(params or {}),
            "seed": int(seed),
            "status": "running",
            "created_unix": time.time(),
            "updated_unix": time.time(),
            "steps": {},
            "step_order": [],
            "artifacts": {},
            "events": [],
        }
        run = RunHandle(self, run_id, manifest)
        run.commit()
        return run

    def open_run(self, run_id: str) -> "RunHandle":
        import json

        path = self.manifest_path(run_id)
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            known = ", ".join(self.run_ids()) or "<none>"
            raise StoreError(
                f"unknown run {run_id!r} (known runs: {known})"
            ) from exc
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt manifest for run {run_id!r}: {exc}") from exc
        return RunHandle(self, run_id, manifest)

    def list_runs(self) -> list[dict]:
        """One summary row per run (for ``pace-repro runs list``)."""
        rows = []
        for run_id in self.run_ids():
            manifest = self.open_run(run_id).manifest
            steps = manifest.get("steps", {})
            done = sum(1 for s in steps.values() if s.get("status") == "done")
            rows.append({
                "run_id": run_id,
                "pipeline": manifest.get("pipeline"),
                "status": manifest.get("status"),
                "seed": manifest.get("seed"),
                "steps_done": done,
                "steps_total": len(manifest.get("step_order", [])) or len(steps),
                "events": len(manifest.get("events", [])),
                "updated_unix": manifest.get("updated_unix"),
            })
        return rows

    def delete_run(self, run_id: str) -> None:
        """Drop a run's manifest directory (its blobs die at the next gc)."""
        import shutil

        run_dir = self.runs_dir / run_id
        if not run_dir.is_dir():
            raise StoreError(f"unknown run {run_id!r}")
        shutil.rmtree(run_dir)

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def referenced_digests(self) -> set[str]:
        """Every digest any manifest still points at (steps, artifacts, events)."""
        referenced: set[str] = set()
        for run_id in self.run_ids():
            manifest = self.open_run(run_id).manifest
            for entry in manifest.get("steps", {}).values():
                if entry.get("artifact"):
                    referenced.add(entry["artifact"])
            for entry in manifest.get("artifacts", {}).values():
                referenced.add(entry["digest"])
                referenced.update(entry.get("parents", []))
            for event in manifest.get("events", []):
                if event.get("digest"):
                    referenced.add(event["digest"])
        return referenced

    def live_locks(self) -> list[Path]:
        """Manifest locks held by live writers (stale ones are excluded)."""
        from repro.store.lock import LOCK_SUFFIX, is_stale

        return [
            lock
            for lock in sorted(self.runs_dir.glob(f"*/manifest.json{LOCK_SUFFIX}"))
            if not is_stale(lock)
        ]

    def gc(self) -> dict:
        """Remove unreferenced blobs and stray temp files; report what happened.

        Refuses (raises :class:`StoreError`) while any *live* manifest
        lock exists: a locked manifest is mid-rewrite, and sweeping
        against its in-flight reference set could free blobs the
        committed manifest still needs. Stale locks (dead holders) are
        swept instead of respected.
        """
        from repro.store.lock import LOCK_SUFFIX, is_stale

        stale_locks = 0
        if self.runs_dir.is_dir():
            live = []
            for lock in sorted(self.runs_dir.glob(f"*/manifest.json{LOCK_SUFFIX}")):
                if is_stale(lock):
                    lock.unlink(missing_ok=True)
                    stale_locks += 1
                else:
                    live.append(lock)
            if live:
                held = ", ".join(str(lock.parent.name) for lock in live)
                raise StoreError(
                    f"refusing to gc: {len(live)} live manifest lock(s) "
                    f"({held}); a writer is mid-commit"
                )
        referenced = self.referenced_digests()
        removed = 0
        freed = 0
        kept = 0
        if self.objects_dir.is_dir():
            for blob in sorted(self.objects_dir.glob("*/*")):
                if not blob.is_file():
                    continue
                if blob.name in referenced:
                    kept += 1
                    continue
                freed += blob.stat().st_size
                blob.unlink()
                removed += 1
        stray_tmp = 0
        for tmp in sorted(self.root.rglob("*.tmp")):
            tmp.unlink()
            stray_tmp += 1
        return {
            "removed_objects": removed,
            "kept_objects": kept,
            "bytes_freed": freed,
            "stray_tmp_removed": stray_tmp,
            "stale_locks_removed": stale_locks,
            "runs": len(self.run_ids()),
        }


class RunHandle:
    """Mutable view of one run's manifest; :meth:`commit` persists atomically."""

    def __init__(self, store: ArtifactStore, run_id: str, manifest: dict) -> None:
        self.store = store
        self.run_id = run_id
        self.manifest = manifest

    @property
    def path(self) -> Path:
        return self.store.manifest_path(self.run_id)

    # ------------------------------------------------------------------
    # steps
    # ------------------------------------------------------------------
    def step(self, name: str) -> dict | None:
        return self.manifest["steps"].get(name)

    def set_step(
        self,
        name: str,
        status: str,
        artifact: str | None = None,
        kind: str | None = None,
        parents: list[str] | None = None,
        seconds: float | None = None,
    ) -> dict:
        entry = {
            "status": status,
            "artifact": artifact,
            "kind": kind,
            "parents": list(parents or []),
            "seconds": seconds,
        }
        if name not in self.manifest["steps"]:
            self.manifest["step_order"].append(name)
        self.manifest["steps"][name] = entry
        return entry

    # ------------------------------------------------------------------
    # lineage
    # ------------------------------------------------------------------
    def record_artifact(
        self,
        name: str,
        artifact: Artifact,
        parents: list[str] | tuple[str, ...] = (),
        step: str | None = None,
    ) -> None:
        """Register ``artifact`` under ``name`` with explicit lineage edges."""
        self.manifest["artifacts"][name] = {
            "digest": artifact.digest,
            "kind": artifact.kind,
            "size": artifact.size,
            "parents": list(parents),
            "step": step,
        }

    def artifact_digest(self, name: str) -> str | None:
        entry = self.manifest["artifacts"].get(name)
        return None if entry is None else entry["digest"]

    def record_event(self, kind: str, **payload) -> dict:
        """Append a lineage event (e.g. ``promotion``/``rollback``)."""
        event = {"kind": kind, "index": len(self.manifest["events"]),
                 "unix": time.time(), **jsonify(payload)}
        self.manifest["events"].append(event)
        return event

    def events(self, kind: str | None = None) -> list[dict]:
        events = self.manifest.get("events", [])
        if kind is None:
            return list(events)
        return [e for e in events if e.get("kind") == kind]

    def last_event(self, kind: str) -> dict | None:
        matching = self.events(kind)
        return matching[-1] if matching else None

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def set_status(self, status: str) -> None:
        self.manifest["status"] = status

    def commit(self) -> None:
        """Atomically persist the manifest — the durability boundary.

        Guarded by an O_EXCL :class:`~repro.store.lock.ManifestLock` so
        concurrent writers (cluster processes, parallel CLI invocations)
        serialize instead of silently losing updates. The atomic rename
        alone guarantees readers a consistent file; the lock guarantees
        *writers* a consistent read-modify-write.
        """
        from repro.store.lock import ManifestLock

        self.manifest["updated_unix"] = time.time()
        with ManifestLock(self.path, owner=f"run:{self.run_id}"):
            atomic_write_json(self.path, self.manifest, sort_keys=True)
