"""Deterministic fault injection for the durable store and pipelines.

Crash recovery that is only ever exercised by real crashes is crash
recovery that does not work. This module gives tests (and the CI smoke
job) a *seedless, fully deterministic* way to kill a run at any chosen
IO or step boundary:

* :class:`CrashPoint` — raised at a named site to simulate the process
  dying there. It derives from ``BaseException`` (like
  ``KeyboardInterrupt``) so no library ``except ReproError``/``except
  Exception`` recovery path can accidentally swallow the "death" and
  make a test pass vacuously.
* transient IO faults — :class:`InjectedIoError` (an ``OSError``) raised
  on the first *k* attempts at a site, exercising the atomic writer's
  retry/backoff loop.
* torn writes — the payload is truncated mid-stream and the "process"
  crashes after the torn bytes reach the final path, simulating a
  non-atomic filesystem; the store's content-hash verification must
  catch the corruption on the next read.

Sites are plain strings (``"write:manifest.json"``,
``"step:cell:dmv/fcn/pace:pre-commit"``) matched with ``fnmatch`` globs,
and every spec fires on an explicit *ordinal* of its matching site, so a
kill-at-every-boundary sweep is just a loop over ``(site, ordinal)``
pairs observed in a dry run.
"""

from __future__ import annotations

import fnmatch
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.utils.errors import ReproError


class CrashPoint(BaseException):
    """Simulated process death at a fault site.

    Deliberately *not* a :class:`ReproError` (nor even an ``Exception``):
    recovery code must never be able to catch-and-continue past a
    simulated crash, exactly as it could not survive ``kill -9``.
    """

    def __init__(self, site: str, ordinal: int) -> None:
        super().__init__(f"injected crash at {site!r} (ordinal {ordinal})")
        self.site = site
        self.ordinal = ordinal


class InjectedIoError(OSError):
    """A transient IO failure injected at a write site."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes:
        site: ``fnmatch`` glob matched against reached site names.
        kind: ``"crash"`` | ``"transient"`` | ``"torn"``.
        ordinal: fire on the n-th matching reach (1-based) for ``crash``
            and ``torn`` faults.
        times: for ``transient`` faults, fail this many matching attempts
            before letting one succeed (exercises retry/backoff).
        keep_bytes: for ``torn`` faults, how many payload bytes survive
            the simulated cut.
    """

    site: str
    kind: str = "crash"
    ordinal: int = 1
    times: int = 1
    keep_bytes: int = 8

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "transient", "torn"):
            raise ReproError(f"unknown fault kind {self.kind!r}")
        if self.ordinal < 1:
            raise ReproError(f"fault ordinal must be >= 1, got {self.ordinal}")
        if self.times < 1:
            raise ReproError(f"fault times must be >= 1, got {self.times}")
        if self.keep_bytes < 0:
            raise ReproError(f"keep_bytes must be >= 0, got {self.keep_bytes}")


@dataclass(frozen=True)
class FiredFault:
    """Record of one fault that actually fired (for test assertions)."""

    site: str
    kind: str
    ordinal: int


class FaultInjector:
    """Deterministic fault schedule, addressed by (site glob, ordinal).

    The injector keeps one counter per spec, incremented every time a
    matching site is reached; a spec fires when its counter hits the
    configured ordinal (or, for transients, while it is within the first
    ``times`` attempts). With no injector installed every hook is a
    no-op costing one global read.
    """

    def __init__(self, specs: tuple[FaultSpec, ...] | list[FaultSpec] = ()) -> None:
        self.specs = tuple(specs)
        self._counts = [0] * len(self.specs)
        self.fired: list[FiredFault] = []
        self.sites_reached: list[str] = []

    # ------------------------------------------------------------------
    # hooks, called by repro.store.io and repro.store.pipeline
    # ------------------------------------------------------------------
    def reach(self, site: str) -> None:
        """A crash boundary was reached; die here if the plan says so."""
        self.sites_reached.append(site)
        for index, spec in enumerate(self.specs):
            if spec.kind != "crash" or not fnmatch.fnmatch(site, spec.site):
                continue
            self._counts[index] += 1
            if self._counts[index] == spec.ordinal:
                self.fired.append(FiredFault(site, "crash", spec.ordinal))
                raise CrashPoint(site, spec.ordinal)

    def io_attempt(self, site: str) -> None:
        """An IO attempt at ``site``; raise a transient error if planned."""
        for index, spec in enumerate(self.specs):
            if spec.kind != "transient" or not fnmatch.fnmatch(site, spec.site):
                continue
            self._counts[index] += 1
            if self._counts[index] <= spec.times:
                self.fired.append(FiredFault(site, "transient", self._counts[index]))
                raise InjectedIoError(f"injected transient IO error at {site!r}")

    def torn_payload(self, site: str, data: bytes) -> bytes | None:
        """Truncated payload if a torn write is planned here, else None.

        The caller is expected to write the returned bytes to the *final*
        path and then call :meth:`torn_crash` — the torn bytes must land
        on disk before the simulated death, otherwise there is nothing
        for recovery to detect.
        """
        for index, spec in enumerate(self.specs):
            if spec.kind != "torn" or not fnmatch.fnmatch(site, spec.site):
                continue
            self._counts[index] += 1
            if self._counts[index] == spec.ordinal:
                self.fired.append(FiredFault(site, "torn", spec.ordinal))
                return data[: spec.keep_bytes]
        return None

    def torn_crash(self, site: str) -> None:
        """Die after a torn payload reached the final path."""
        raise CrashPoint(site, 0)


#: Process-wide injector; ``None`` means every hook is a no-op.
_injector: FaultInjector | None = None


def get_injector() -> FaultInjector | None:
    return _injector


def install_injector(injector: FaultInjector | None) -> None:
    """Install ``injector`` process-wide (pass ``None`` to clear)."""
    global _injector
    _injector = injector


@contextmanager
def inject(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Scoped installation: the injector is removed on exit, even on crash."""
    global _injector
    previous = _injector
    _injector = injector
    try:
        yield injector
    finally:
        _injector = previous


def reach(site: str) -> None:
    """Module-level crash hook used by store/pipeline code."""
    if _injector is not None:
        _injector.reach(site)
