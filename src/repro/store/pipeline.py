"""Checkpointed step DAGs: run once, crash anywhere, resume byte-identical.

A :class:`Pipeline` is an ordered list of :class:`Step`\\ s, each
declaring its inputs (names of earlier steps) and the artifact kind of
its output. Running a pipeline against an :class:`~repro.store.store.ArtifactStore`
memoizes every step: the output is encoded, content-addressed, and
recorded in the run manifest with lineage edges to its inputs, then the
manifest is committed atomically — that commit is the step boundary a
crash can land on either side of.

Resume is nothing special: running the same pipeline against the same
run id finds each completed step's verified artifact, loads it, and
skips the work; the first incomplete (or corrupt) step re-executes.
Because every step's randomness derives from a stable per-step seed
(:func:`step_seed`) rather than a shared stream, the re-executed suffix
is bit-identical to what an uninterrupted run would have produced — the
kill-at-every-boundary tests assert the final report JSON matches
byte-for-byte.

Dependent steps always receive the *decoded artifact* (not the in-memory
return value), so a fresh run and a resumed run see literally the same
inputs.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.store import faults
from repro.store.io import canonical_json_bytes
from repro.store.store import Artifact, ArtifactStore, RunHandle
from repro.utils.errors import StoreError
from repro.utils.rng import derive_rng


def step_seed(run_seed: int, step_name: str) -> int:
    """A stable, collision-resistant seed for one step of one run.

    Independent of execution order and of which steps ran before, so a
    resumed run re-derives exactly the stream an uninterrupted run used.
    """
    digest = hashlib.sha256(f"{run_seed}:{step_name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)


def params_digest(params: dict | None) -> str:
    return hashlib.sha256(canonical_json_bytes(params or {})).hexdigest()


@dataclass(frozen=True)
class Step:
    """One unit of resumable work.

    Attributes:
        name: unique within the pipeline; also the manifest/artifact key.
        fn: ``fn(ctx: StepContext) -> value``; the value must match
            ``kind`` (JSON-serializable for ``json``/``report``, a state
            dict of numpy arrays for ``checkpoint``).
        deps: names of earlier steps whose decoded outputs appear in
            ``ctx.inputs``.
        kind: artifact kind of the output.
    """

    name: str
    fn: Callable[["StepContext"], object]
    deps: tuple[str, ...] = ()
    kind: str = "json"


class StepContext:
    """Everything a step function may depend on (and nothing else)."""

    def __init__(
        self,
        run: RunHandle,
        step: Step,
        seed: int,
        params: dict,
        inputs: dict[str, object],
        store: ArtifactStore,
    ) -> None:
        self.run = run
        self.step = step
        self.seed = seed
        self.params = params
        self.inputs = inputs
        self.store = store
        self.rng = derive_rng(seed)


@dataclass
class PipelineResult:
    """Outcome of one (possibly resumed) pipeline run."""

    run_id: str
    outputs: dict[str, object]
    executed: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    step_seconds: dict[str, float] = field(default_factory=dict)
    final_step: str | None = None

    @property
    def final(self):
        return None if self.final_step is None else self.outputs.get(self.final_step)

    @property
    def resumed_fraction(self) -> float:
        total = len(self.executed) + len(self.skipped)
        return len(self.skipped) / total if total else 0.0


class Pipeline:
    """An ordered, checkpointed step DAG bound to a builder name."""

    def __init__(
        self,
        name: str,
        steps: list[Step] | tuple[Step, ...],
        params: dict | None = None,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.steps = tuple(steps)
        self.params = dict(params or {})
        self.seed = int(seed)
        if not self.steps:
            raise StoreError(f"pipeline {name!r} has no steps")
        seen: set[str] = set()
        for step in self.steps:
            if step.name in seen:
                raise StoreError(f"duplicate step name {step.name!r} in pipeline {name!r}")
            missing = [dep for dep in step.deps if dep not in seen]
            if missing:
                raise StoreError(
                    f"step {step.name!r} depends on {missing} which are not "
                    f"defined earlier — steps must be listed in topological order"
                )
            seen.add(step.name)

    def default_run_id(self) -> str:
        """Deterministic id: same pipeline + params + seed, same run."""
        return f"{self.name}-s{self.seed}-{params_digest(self.params)[:10]}"

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        store: ArtifactStore,
        run_id: str | None = None,
        resume: bool = False,
    ) -> PipelineResult:
        run_id = run_id or self.default_run_id()
        if store.has_run(run_id):
            if not resume:
                raise StoreError(
                    f"run {run_id!r} already exists; resume it or pick a new id"
                )
            run = store.open_run(run_id)
            self._check_compatible(run)
        else:
            run = store.create_run(
                self.name, run_id, params=self.params, seed=self.seed
            )
        result = PipelineResult(run_id=run_id, outputs={},
                                final_step=self.steps[-1].name)
        for step in self.steps:
            entry = run.step(step.name)
            if (
                entry is not None
                and entry.get("status") == "done"
                and entry.get("artifact")
                and store.verify_object(entry["artifact"])
            ):
                # Memoized: the checkpoint is present and hash-verified.
                result.outputs[step.name] = self._decode(store, entry["artifact"], step.kind)
                result.skipped.append(step.name)
                if entry.get("seconds") is not None:
                    result.step_seconds[step.name] = float(entry["seconds"])
                continue
            faults.reach(f"step:{step.name}:start")
            inputs = {dep: result.outputs[dep] for dep in step.deps}
            ctx = StepContext(
                run=run,
                step=step,
                seed=step_seed(self.seed, step.name),
                params=self.params,
                inputs=inputs,
                store=store,
            )
            start = time.perf_counter()
            value = step.fn(ctx)
            seconds = time.perf_counter() - start
            artifact = self._encode(store, value, step.kind, step.name)
            parents = [
                run.step(dep)["artifact"]
                for dep in step.deps
                if run.step(dep) and run.step(dep).get("artifact")
            ]
            run.set_step(step.name, status="done", artifact=artifact.digest,
                         kind=step.kind, parents=parents, seconds=seconds)
            run.record_artifact(step.name, artifact, parents=parents, step=step.name)
            faults.reach(f"step:{step.name}:pre-commit")
            run.commit()
            faults.reach(f"step:{step.name}:post-commit")
            # Hand dependents the decoded artifact, not the raw return
            # value: resumed and uninterrupted runs must see identical
            # inputs (e.g. JSON turns tuples into lists).
            result.outputs[step.name] = self._decode(store, artifact.digest, step.kind)
            result.executed.append(step.name)
            result.step_seconds[step.name] = seconds
        if run.manifest.get("status") != "complete":
            run.set_status("complete")
            run.commit()
        return result

    def _check_compatible(self, run: RunHandle) -> None:
        manifest = run.manifest
        if manifest.get("pipeline") != self.name:
            raise StoreError(
                f"run {run.run_id!r} belongs to pipeline "
                f"{manifest.get('pipeline')!r}, not {self.name!r}"
            )
        if params_digest(manifest.get("params")) != params_digest(self.params):
            raise StoreError(
                f"run {run.run_id!r} was started with different params; "
                f"refusing to mix checkpoints across configurations"
            )
        if int(manifest.get("seed", 0)) != self.seed:
            raise StoreError(
                f"run {run.run_id!r} used seed {manifest.get('seed')}, "
                f"not {self.seed}"
            )

    # ------------------------------------------------------------------
    # kind codecs
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(store: ArtifactStore, value, kind: str, step_name: str) -> Artifact:
        if kind in ("json", "report"):
            return store.put_json(value, kind=kind)
        if kind == "checkpoint":
            if not isinstance(value, dict) or not all(
                isinstance(v, (np.ndarray, np.generic)) for v in value.values()
            ):
                raise StoreError(
                    f"step {step_name!r} is kind='checkpoint' and must return a "
                    f"dict of numpy arrays (a state dict)"
                )
            return store.put_checkpoint(value)
        raise StoreError(
            f"step {step_name!r} has kind {kind!r}, which pipelines cannot "
            f"encode (supported: json, report, checkpoint)"
        )

    @staticmethod
    def _decode(store: ArtifactStore, digest: str, kind: str):
        if kind in ("json", "report"):
            return store.get_json(digest)
        if kind == "checkpoint":
            return store.get_checkpoint(digest)
        raise StoreError(f"cannot decode artifact kind {kind!r}")


# ----------------------------------------------------------------------
# builder registry: how `resume(run_id)` reconstructs a pipeline
# ----------------------------------------------------------------------
PIPELINE_BUILDERS: dict[str, Callable[[dict, int], Pipeline]] = {}


def register_pipeline(name: str):
    """Decorator registering ``builder(params, seed) -> Pipeline`` under ``name``."""

    def decorate(builder: Callable[[dict, int], Pipeline]):
        if name in PIPELINE_BUILDERS and PIPELINE_BUILDERS[name] is not builder:
            raise StoreError(f"duplicate pipeline builder {name!r}")
        PIPELINE_BUILDERS[name] = builder
        return builder

    return decorate


def build_pipeline(name: str, params: dict, seed: int) -> Pipeline:
    try:
        builder = PIPELINE_BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(PIPELINE_BUILDERS)) or "<none>"
        raise StoreError(
            f"no pipeline builder registered for {name!r} (known: {known})"
        ) from None
    return builder(params, seed)


def resume_run(store: ArtifactStore, run_id: str) -> PipelineResult:
    """Resume (or verify-and-finish) a run from its manifest alone.

    Completed steps replay from their verified checkpoints; the first
    missing, incomplete, or corrupt step re-executes, as does everything
    after it that was never reached.
    """
    run = store.open_run(run_id)
    manifest = run.manifest
    pipeline = build_pipeline(
        manifest["pipeline"], dict(manifest.get("params", {})),
        int(manifest.get("seed", 0)),
    )
    return pipeline.run(store, run_id=run_id, resume=True)
