"""Durable artifact/run store and resumable pipelines (PR 5 tentpole).

Three layers:

:mod:`repro.store.io`
    Atomic write-then-rename primitives, canonical JSON, retry policy.
:mod:`repro.store.store`
    Content-addressed blobs + versioned run manifests with lineage.
:mod:`repro.store.pipeline`
    Checkpointed step DAGs memoized in the store; ``resume`` replays
    completed steps so a killed run finishes byte-identical.
:mod:`repro.store.faults`
    Deterministic fault injection (crashes, transient IO errors, torn
    writes) used to *prove* the above under a kill-at-every-boundary
    sweep.
:mod:`repro.store.lock`
    O_EXCL manifest locks with stale-holder detection, making the store
    safe for concurrent multi-process writers (the serve cluster).
"""

from repro.store.faults import (
    CrashPoint,
    FaultInjector,
    FaultSpec,
    FiredFault,
    InjectedIoError,
    get_injector,
    inject,
    install_injector,
)
from repro.store.io import (
    RetryPolicy,
    atomic_write_bytes,
    atomic_write_json,
    canonical_json_bytes,
    jsonify,
)
from repro.store.lock import (
    DEFAULT_STALE_SECONDS,
    LockHeld,
    ManifestLock,
    is_stale,
    lock_path_for,
    read_lock,
)
from repro.store.pipeline import (
    PIPELINE_BUILDERS,
    Pipeline,
    PipelineResult,
    Step,
    StepContext,
    build_pipeline,
    params_digest,
    register_pipeline,
    resume_run,
    step_seed,
)
from repro.store.store import (
    ARTIFACT_KINDS,
    Artifact,
    ArtifactStore,
    RunHandle,
    content_digest,
)

__all__ = [
    "ARTIFACT_KINDS",
    "Artifact",
    "ArtifactStore",
    "CrashPoint",
    "FaultInjector",
    "FaultSpec",
    "DEFAULT_STALE_SECONDS",
    "FiredFault",
    "InjectedIoError",
    "LockHeld",
    "ManifestLock",
    "PIPELINE_BUILDERS",
    "Pipeline",
    "PipelineResult",
    "RetryPolicy",
    "RunHandle",
    "Step",
    "StepContext",
    "atomic_write_bytes",
    "atomic_write_json",
    "build_pipeline",
    "canonical_json_bytes",
    "content_digest",
    "get_injector",
    "inject",
    "install_injector",
    "is_stale",
    "jsonify",
    "lock_path_for",
    "params_digest",
    "read_lock",
    "register_pipeline",
    "resume_run",
    "step_seed",
]
