"""O_EXCL manifest locks: concurrent multi-process writers, no daemon.

The cluster puts several *processes* behind one
:class:`~repro.store.store.ArtifactStore` root, so a run manifest can
have concurrent writers (router promotion commits racing a drill's
respawned worker, parallel CLI invocations, CI jobs sharing a store).
The mutual exclusion primitive is the oldest one that works on every
filesystem: ``open(path + ".lock", O_CREAT | O_EXCL)`` — atomic on POSIX
and NFS alike, no server, no fcntl ranges to leak across ``fork``.

The lock body is a small JSON record (`pid`, `host`, `unix`, `owner`)
used for *stale* detection: a holder that died without releasing (a
``SIGKILL``-ed worker process, a crashed CLI) leaves a lock whose pid is
dead on this host, or whose age exceeds ``stale_seconds`` — either way
the next acquirer breaks it and proceeds. In-process crash drills
(:class:`~repro.store.faults.CrashPoint` is a ``BaseException``) unwind
the ``with`` block, so they release promptly and never depend on
staleness.

``ArtifactStore.gc`` refuses to sweep while any *live* lock exists —
a locked manifest is mid-rewrite, and sweeping against its half-updated
reference set could free blobs the committed manifest still needs.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path

from repro.utils.errors import StoreError

#: A manifest's lock file lives beside it: ``manifest.json.lock``.
LOCK_SUFFIX = ".lock"

#: A lock older than this is presumed abandoned even if we cannot prove
#: its holder dead (e.g. the holder ran on another host).
DEFAULT_STALE_SECONDS = 300.0


class LockHeld(StoreError):
    """The lock stayed held (and fresh) past the acquisition deadline."""


def lock_path_for(path: str | Path) -> Path:
    """Where the lock file for ``path`` lives."""
    path = Path(path)
    return path.with_name(path.name + LOCK_SUFFIX)


def read_lock(lock_path: str | Path) -> dict | None:
    """The lock body, or ``None`` if the lock vanished or is unreadable."""
    try:
        return json.loads(Path(lock_path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (OSError, ValueError):
        # Torn mid-write by a dying holder; age (mtime) still works.
        return {}


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except (OverflowError, ValueError):
        return False  # nonsense pid in a corrupt body
    return True


def is_stale(
    lock_path: str | Path, stale_seconds: float = DEFAULT_STALE_SECONDS
) -> bool:
    """Is this lock abandoned? (Dead holder on this host, or too old.)

    Returns ``False`` when the lock no longer exists — "not stale" and
    "not held" both mean an acquirer may proceed to the O_EXCL attempt.
    """
    lock_path = Path(lock_path)
    info = read_lock(lock_path)
    if info is None:
        return False
    pid = info.get("pid")
    host = info.get("host")
    if isinstance(pid, int) and host == socket.gethostname():
        if not _pid_alive(pid):
            return True
    stamp = info.get("unix")
    if not isinstance(stamp, (int, float)):
        try:
            stamp = lock_path.stat().st_mtime
        except OSError:
            return False  # vanished while we looked: treat as released
    return (time.time() - float(stamp)) > stale_seconds


class ManifestLock:
    """Advisory exclusive lock on one file, via an O_EXCL sibling.

    Usage::

        with ManifestLock(manifest_path, owner="run:attack-seed0"):
            atomic_write_json(manifest_path, manifest, sort_keys=True)

    Acquisition spins (bounded by ``timeout``) breaking stale locks as it
    finds them; contention from a *live* holder ends in :class:`LockHeld`
    rather than a silent lost update.
    """

    def __init__(
        self,
        path: str | Path,
        owner: str = "",
        timeout: float = 10.0,
        poll_interval: float = 0.05,
        stale_seconds: float = DEFAULT_STALE_SECONDS,
    ) -> None:
        self.path = Path(path)
        self.lock_path = lock_path_for(path)
        self.owner = owner
        self.timeout = float(timeout)
        self.poll_interval = float(poll_interval)
        self.stale_seconds = float(stale_seconds)
        self.broke_stale = 0
        self._held = False

    def acquire(self) -> "ManifestLock":
        if self._held:
            raise StoreError(f"lock on {self.path} is already held by this handle")
        self.lock_path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps({
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "unix": time.time(),
            "owner": self.owner,
        }, sort_keys=True).encode("utf-8")
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(
                    self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if is_stale(self.lock_path, self.stale_seconds):
                    # Break it; losing the unlink race to another breaker
                    # is fine — both proceed to a fresh O_EXCL attempt.
                    try:
                        self.lock_path.unlink()
                        self.broke_stale += 1
                    except FileNotFoundError:
                        pass
                    continue
                if time.monotonic() >= deadline:
                    holder = read_lock(self.lock_path) or {}
                    raise LockHeld(
                        f"{self.lock_path} held by "
                        f"pid={holder.get('pid')} owner={holder.get('owner')!r} "
                        f"for more than {self.timeout}s"
                    )
                time.sleep(self.poll_interval)
                continue
            try:
                os.write(fd, body)
            finally:
                os.close(fd)
            self._held = True
            return self

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        # Missing is fine: someone declared us stale and broke the lock.
        self.lock_path.unlink(missing_ok=True)

    @property
    def held(self) -> bool:
        return self._held

    def __enter__(self) -> "ManifestLock":
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        # Runs for BaseException too: an injected CrashPoint unwinding
        # through here still releases, so in-process crash drills never
        # leave locks that only staleness can clear.
        self.release()
