"""Atomic, fault-injectable file IO for artifacts and manifests.

Every durable byte this repository writes goes through
:func:`atomic_write_bytes`: the payload lands in a temp file in the
*same directory*, is flushed and fsynced, and is then ``os.replace``d
onto the final path — so a reader (or a resumed run) only ever observes
either the old content or the complete new content, never a prefix.
Transient ``OSError`` failures are retried with exponential backoff.

All fault-injection hooks from :mod:`repro.store.faults` thread through
here, which is what lets the crash-recovery tests kill a run at any IO
boundary and prove resume correctness byte-for-byte. Flow rule R012
flags artifact writes anywhere else in ``src/``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.store import faults
from repro.utils.errors import StoreError


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff schedule for transient IO failures.

    ``attempts`` counts total tries; sleeps between them are
    ``backoff * multiplier**k`` seconds for ``k = 0, 1, ...``.
    """

    attempts: int = 4
    backoff: float = 0.01
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise StoreError(f"retry attempts must be >= 1, got {self.attempts}")
        if self.backoff < 0.0 or self.multiplier < 1.0:
            raise StoreError(
                f"invalid backoff schedule: backoff={self.backoff}, "
                f"multiplier={self.multiplier}"
            )

    def delays(self) -> list[float]:
        """Sleep durations between consecutive attempts."""
        return [self.backoff * self.multiplier**k for k in range(self.attempts - 1)]


DEFAULT_RETRY = RetryPolicy()

_tmp_counter = 0  # safe: R015 temp names embed the pid; the counter only needs per-process uniqueness


def _temp_path(path: Path) -> Path:
    """A temp-file sibling of ``path`` (same directory, so rename is atomic)."""
    global _tmp_counter
    _tmp_counter += 1
    return path.parent / f".{path.name}.{os.getpid()}.{_tmp_counter}.tmp"


def _fsync_directory(directory: Path) -> None:
    """Persist the rename itself (directory entry) where the OS allows it."""
    if not hasattr(os, "O_DIRECTORY"):  # pragma: no cover - non-POSIX
        return
    fd = os.open(directory, os.O_RDONLY | os.O_DIRECTORY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_once(path: Path, data: bytes, fsync: bool) -> None:
    """One attempt: temp file, flush, fsync, atomic replace."""
    tmp = _temp_path(path)
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    if fsync:
        _fsync_directory(path.parent)


def atomic_write_bytes(
    path: str | Path,
    data: bytes,
    retry: RetryPolicy | None = None,
    fsync: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> Path:
    """Atomically write ``data`` to ``path`` (write-then-rename).

    Transient ``OSError`` failures are retried per ``retry`` (pass a
    recording ``sleep`` in tests to assert the backoff schedule). Raises
    :class:`StoreError` once the schedule is exhausted.
    """
    path = Path(path)
    retry = retry or DEFAULT_RETRY
    path.parent.mkdir(parents=True, exist_ok=True)
    injector = faults.get_injector()
    site = f"write:{path.name}"
    if injector is not None:
        injector.reach(f"{site}:begin")
        torn = injector.torn_payload(site, data)
        if torn is not None:
            # Simulated non-atomic filesystem: the truncated payload
            # reaches the *final* path, then the process dies. Readers
            # must detect this via content-hash verification.
            _write_once(path, torn, fsync)
            injector.torn_crash(site)
    delays = retry.delays()
    last_error: OSError | None = None
    for attempt in range(retry.attempts):
        try:
            if injector is not None:
                injector.io_attempt(site)
            _write_once(path, data, fsync)
            break
        except OSError as exc:
            last_error = exc
            if attempt < len(delays):
                sleep(delays[attempt])
    else:
        raise StoreError(
            f"could not write {path} after {retry.attempts} attempts: {last_error}"
        ) from last_error
    if injector is not None:
        injector.reach(f"{site}:done")
    return path


def jsonify(value):
    """Recursively convert numpy scalars/arrays so ``json.dumps`` accepts them."""
    if isinstance(value, dict):
        return {key: jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(item) for item in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return jsonify(value.tolist())
    return value


def canonical_json_bytes(
    payload, sort_keys: bool = True, indent: int | None = 2
) -> bytes:
    """Deterministic JSON encoding: same payload, same bytes, always.

    Content-addressed storage and the byte-identical resume guarantee
    both hinge on this canonicalization (key order pinned, numpy types
    coerced, trailing newline).
    """
    text = json.dumps(jsonify(payload), sort_keys=sort_keys, indent=indent,
                      ensure_ascii=False)
    return (text + "\n").encode("utf-8")


def atomic_write_json(
    path: str | Path,
    payload,
    sort_keys: bool = True,
    indent: int | None = 2,
    retry: RetryPolicy | None = None,
) -> Path:
    """Atomically write ``payload`` as JSON (the library-wide report writer)."""
    data = canonical_json_bytes(payload, sort_keys=sort_keys, indent=indent)
    return atomic_write_bytes(path, data, retry=retry)
