"""PACE: the black-box poisoning attack system (the paper's contribution)."""

from repro.attack.algorithms import (
    GeneratorTrainConfig,
    GeneratorTrainResult,
    train_generator_accelerated,
    train_generator_basic,
)
from repro.attack.baselines import (
    greedy_search,
    loss_based_selection,
    random_poison,
    train_generator_loss_based,
)
from repro.attack.budget import PenaltyBudget, poisoning_influence, select_most_effective
from repro.attack.defense import (
    ClassifierGate,
    PoisonClassifier,
    RobustnessReport,
    recommend_robust_model,
)
from repro.attack.detector import DetectorGate, GateObservation, VAEAnomalyDetector
from repro.attack.generator import GeneratedBatch, PoisonQueryGenerator, project_to_valid_join
from repro.attack.pace import PaceAttack, PaceConfig, PaceResult
from repro.attack.surrogate import (
    SpeculationResult,
    SurrogateConfig,
    output_agreement,
    parameter_similarity,
    performance_vector,
    speculate_model_type,
    train_candidates,
    train_surrogate,
)

__all__ = [
    "PaceAttack",
    "PaceConfig",
    "PaceResult",
    "PoisonQueryGenerator",
    "GeneratedBatch",
    "project_to_valid_join",
    "VAEAnomalyDetector",
    "GeneratorTrainConfig",
    "GeneratorTrainResult",
    "train_generator_accelerated",
    "train_generator_basic",
    "train_generator_loss_based",
    "random_poison",
    "loss_based_selection",
    "greedy_search",
    "SpeculationResult",
    "SurrogateConfig",
    "speculate_model_type",
    "train_candidates",
    "train_surrogate",
    "parameter_similarity",
    "output_agreement",
    "performance_vector",
    "PoisonClassifier",
    "ClassifierGate",
    "DetectorGate",
    "GateObservation",
    "RobustnessReport",
    "recommend_robust_model",
    "PenaltyBudget",
    "poisoning_influence",
    "select_most_effective",
]
