"""Surrogate CE model acquisition (Section 4 of the paper).

Two steps turn the black box into a near-white box:

1. **Type speculation** (§4.1): train one candidate model per known type,
   probe all of them plus the black box with property-grouped workloads
   (varying filtered-column count and predicate range size), build a
   performance vector ``[accuracy | latency]`` per model, and pick the
   candidate whose vector has the highest cosine similarity to the black
   box's (Eq. 5).
2. **Surrogate training** (§4.2): train a model of the speculated type on
   the attacker's own labeled queries using the combined loss of Eq. 7 —
   imitate the black box's outputs *and* fit the ground-truth labels — or,
   for the Fig. 10 ablation, the direct-imitation loss of Eq. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ce.base import CardinalityEstimator
from repro.ce.deployment import DeployedEstimator
from repro.ce.registry import MODEL_TYPES, create_model
from repro.ce.trainer import TrainConfig, train_model
from repro.metrics.qerror import q_errors
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.clock import Clock, get_clock
from repro.utils.errors import TrainingError
from repro.utils.rng import derive_rng
from repro.workload.encoding import QueryEncoder
from repro.workload.workload import Workload


# ----------------------------------------------------------------------
# type speculation
# ----------------------------------------------------------------------
@dataclass
class SpeculationResult:
    """Outcome of model-type speculation."""

    speculated_type: str
    similarities: dict[str, float]
    black_box_vector: np.ndarray
    candidate_vectors: dict[str, np.ndarray] = field(default_factory=dict)


def performance_vector(
    estimate_fn, probe_groups, timing_repeats: int = 3, clock: Clock | None = None
) -> np.ndarray:
    """``[mean log q-error, latency]`` per probe group, concatenated.

    ``estimate_fn(queries) -> estimates``; groups come from
    :meth:`WorkloadGenerator.probe_workloads`. Latency is the median of
    ``timing_repeats`` calls timed with ``clock`` (the process clock from
    :func:`repro.utils.clock.get_clock` by default) — wall-clock jitter
    otherwise leaks into the similarity comparison and destabilizes the
    speculated type. Tests install a fake clock to pin the latency section.
    """
    clock = clock if clock is not None else get_clock()
    accuracy_parts: list[float] = []
    latency_parts: list[float] = []
    for _name, workload in probe_groups:
        estimates = None
        timings: list[float] = []
        for _ in range(max(timing_repeats, 1)):
            start = clock()
            estimates = estimate_fn(workload.queries)
            timings.append(clock() - start)
        errors = q_errors(estimates, workload.cardinalities)
        accuracy_parts.append(float(np.log(errors).mean()))
        latency_parts.append(float(np.median(timings)) / max(len(workload), 1))
    return np.array(accuracy_parts + latency_parts, dtype=np.float64)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(np.dot(a, b) / denom)




def train_candidates(
    encoder: QueryEncoder,
    workload: Workload,
    model_types=MODEL_TYPES,
    hidden_dim: int = 32,
    train_config: TrainConfig | None = None,
    seed=0,
    ensemble: int = 1,
):
    """Train candidate models per type on the attacker's own workload.

    With ``ensemble == 1`` (the default) returns ``{type: model}``; with
    ``ensemble > 1`` returns ``{type: [model, ...]}`` — several
    independently seeded candidates per type, which
    :func:`speculate_model_type` averages into one per-type performance
    vector. A single candidate's q-error shape is a high-variance sample
    of its family's behaviour, so the ensemble makes the speculated type
    robust to candidate-seed luck.
    """
    rng = derive_rng(seed)
    candidates: dict[str, object] = {}
    for model_type in model_types:
        group: list[CardinalityEstimator] = []
        for _ in range(max(ensemble, 1)):
            model = create_model(
                model_type, encoder, hidden_dim=hidden_dim, seed=int(rng.integers(2**31))
            )
            train_model(model, workload, train_config or TrainConfig())
            group.append(model)
        candidates[model_type] = group[0] if ensemble == 1 else group
    return candidates


def speculate_model_type(
    black_box: DeployedEstimator,
    candidates: dict[str, CardinalityEstimator],
    probe_groups,
    latency_weight: float = 1.0,
    clock: Clock | None = None,
) -> SpeculationResult:
    """Pick the candidate type most similar to the black box (Eq. 5).

    Accuracy and latency sections of each performance vector are
    standardized across models before the cosine comparison so neither
    scale dominates; ``latency_weight`` scales the latency section.
    ``clock`` (defaulting to the process clock) times every probe batch.
    A candidate entry may be a list of same-type models (see
    :func:`train_candidates`); their performance vectors are averaged,
    which damps the seed-to-seed variance of any single candidate.
    """
    if not candidates:
        raise TrainingError("speculation needs at least one candidate model")
    bb_vector = performance_vector(black_box.explain_many, probe_groups, clock=clock)
    vectors = {}
    for name, entry in candidates.items():
        group = entry if isinstance(entry, (list, tuple)) else [entry]
        vectors[name] = np.mean(
            [performance_vector(m.estimate, probe_groups, clock=clock) for m in group],
            axis=0,
        )
    groups = len(probe_groups)
    all_vecs = np.stack([bb_vector] + list(vectors.values()))
    mean = all_vecs.mean(axis=0)
    std = all_vecs.std(axis=0) + 1e-12
    weights = np.concatenate([np.ones(groups), np.full(groups, latency_weight)])

    def standardize(v: np.ndarray) -> np.ndarray:
        return (v - mean) / std * weights

    bb_std = standardize(bb_vector)
    similarities = {
        name: cosine_similarity(bb_std, standardize(vec)) for name, vec in vectors.items()
    }
    best = max(similarities, key=similarities.get)
    return SpeculationResult(
        speculated_type=best,
        similarities=similarities,
        black_box_vector=bb_vector,
        candidate_vectors=vectors,
    )


# ----------------------------------------------------------------------
# surrogate training
# ----------------------------------------------------------------------
@dataclass
class SurrogateConfig:
    """Hyper-parameters for surrogate training.

    ``strategy`` is ``"combined"`` (Eq. 7, the PACE default) or
    ``"direct"`` (Eq. 6, imitation only — the Fig. 10 ablation).
    ``imitation_weight`` balances the two loss terms of Eq. 7.
    """

    strategy: str = "combined"
    imitation_weight: float = 1.0
    epochs: int = 60
    batch_size: int = 64
    lr: float = 1e-3
    hidden_dim: int = 32
    num_layers: int = 2
    seed: int = 0


def train_surrogate(
    model_type: str,
    encoder: QueryEncoder,
    workload: Workload,
    black_box: DeployedEstimator,
    config: SurrogateConfig | None = None,
) -> CardinalityEstimator:
    """Train a white-box stand-in for ``black_box`` (Eq. 6 / Eq. 7).

    ``workload`` is the attacker's own labeled query set; black-box outputs
    for it are collected through ``EXPLAIN``.
    """
    config = config or SurrogateConfig()
    if config.strategy not in ("combined", "direct"):
        raise TrainingError(f"unknown surrogate strategy {config.strategy!r}")
    if len(workload) == 0:
        raise TrainingError("surrogate training needs a non-empty workload")

    surrogate = create_model(
        model_type,
        encoder,
        hidden_dim=config.hidden_dim,
        num_layers=config.num_layers,
        seed=config.seed,
    )
    surrogate.calibrate_normalization(workload.cardinalities)

    x_all = workload.encode(encoder)
    bb_estimates = black_box.explain_many(workload.queries)
    y_imitate = surrogate.normalize_log(bb_estimates)
    y_truth = surrogate.normalize_log(workload.cardinalities)

    rng = derive_rng(config.seed)
    optimizer = Adam(surrogate.parameters(), lr=config.lr)
    n = len(workload)
    batch = min(config.batch_size, n)
    for _epoch in range(config.epochs):
        order = rng.permutation(n)
        for start in range(0, n, batch):
            idx = order[start : start + batch]
            x = Tensor(x_all[idx])
            prediction = surrogate(x)
            loss = mse_loss(prediction, Tensor(y_imitate[idx])) * config.imitation_weight
            if config.strategy == "combined":
                loss = loss + mse_loss(prediction, Tensor(y_truth[idx]))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    return surrogate


def parameter_similarity(a: CardinalityEstimator, b: CardinalityEstimator) -> float:
    """Cosine similarity of flattened parameters (same architecture only).

    Supports the §3.2 claim that the trained surrogate's parameters end up
    highly similar to the black box's.
    """
    fa, fb = a.flat_parameters(), b.flat_parameters()
    if fa.shape != fb.shape:
        raise TrainingError(
            "parameter similarity requires identical architectures "
            f"({fa.shape} vs {fb.shape})"
        )
    return cosine_similarity(fa, fb)


def output_agreement(
    a: CardinalityEstimator, b_estimates: np.ndarray, queries, log_space: bool = True
) -> float:
    """Mean |log(est_a) - log(est_b)| on shared queries (imitation quality)."""
    ea = np.maximum(a.estimate(queries), 1e-9)
    eb = np.maximum(np.asarray(b_estimates, dtype=np.float64), 1e-9)
    if log_space:
        return float(np.abs(np.log(ea) - np.log(eb)).mean())
    return float(np.abs(ea - eb).mean())
