"""Defenses built *from* PACE (the paper's Section 8 future-work items).

1. :class:`PoisonClassifier` — a supervised classifier trained on
   historical (normal) vs PACE-generated (poisoning) queries; a DBMS can
   screen its update stream with it.
2. :func:`recommend_robust_model` — attack every candidate CE model type
   and rank them by post-attack degradation, recommending the most robust
   one for deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ce.deployment import Gate
from repro.nn.layers import Sigmoid, mlp
from repro.nn.losses import bce_loss
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.utils.errors import TrainingError
from repro.utils.rng import derive_rng


class ClassifierGate(Gate):
    """A trained :class:`PoisonClassifier` as an update-stream gate."""

    name = "poison-classifier"

    def __init__(self, classifier: "PoisonClassifier", encoder, threshold: float = 0.5) -> None:
        self._classifier = classifier
        self._encoder = encoder
        self._threshold = threshold

    def screen(self, queries) -> np.ndarray:
        return self._classifier.predict(
            self._encoder.encode_many(queries), threshold=self._threshold
        )


class PoisonClassifier(Module):
    """Binary classifier: P(query is a poisoning query)."""

    def __init__(self, input_dim: int, hidden_dim: int = 32, seed=0) -> None:
        super().__init__()
        rng = derive_rng(seed)
        self.net = mlp(input_dim, [hidden_dim, hidden_dim], 1, rng=rng,
                       final_activation=Sigmoid())
        self.input_dim = input_dim

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x).reshape((x.shape[0],))

    def fit(
        self,
        normal_encodings: np.ndarray,
        poison_encodings: np.ndarray,
        epochs: int = 80,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed=0,
    ) -> list[float]:
        """Train on labeled encodings (0 = normal, 1 = poison)."""
        normal = np.atleast_2d(np.asarray(normal_encodings, dtype=np.float64))
        poison = np.atleast_2d(np.asarray(poison_encodings, dtype=np.float64))
        if normal.shape[0] == 0 or poison.shape[0] == 0:
            raise TrainingError("classifier training needs both classes")
        x_all = np.vstack([normal, poison])
        y_all = np.concatenate([np.zeros(normal.shape[0]), np.ones(poison.shape[0])])
        rng = derive_rng(seed)
        optimizer = Adam(self.parameters(), lr=lr)
        n = x_all.shape[0]
        batch = min(batch_size, n)
        losses = []
        for _epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss, steps = 0.0, 0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                loss = bce_loss(self.forward(Tensor(x_all[idx])), Tensor(y_all[idx]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                steps += 1
            losses.append(epoch_loss / max(steps, 1))
        return losses

    def predict_proba(self, encodings: np.ndarray) -> np.ndarray:
        with no_grad():
            out = self.forward(Tensor(np.atleast_2d(encodings)))
        return out.data

    def predict(self, encodings: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return self.predict_proba(encodings) > threshold

    def accuracy(self, normal_encodings: np.ndarray, poison_encodings: np.ndarray) -> float:
        """Balanced accuracy on a labeled evaluation set."""
        normal_ok = 1.0 - self.predict(normal_encodings).mean()
        poison_ok = self.predict(poison_encodings).mean()
        return float((normal_ok + poison_ok) / 2.0)

    def classifier_filter(self, encoder, threshold: float = 0.5):
        """An ``anomaly_filter`` callable for ``DeployedEstimator``."""

        def fn(queries):
            return self.predict(encoder.encode_many(queries), threshold=threshold)

        return fn

    def as_gate(self, encoder, threshold: float = 0.5) -> ClassifierGate:
        """This classifier as a first-class update-stream :class:`ClassifierGate`."""
        return ClassifierGate(self, encoder, threshold=threshold)


@dataclass
class RobustnessReport:
    """Post-attack degradation per CE model type, best (most robust) first."""

    degradation: dict[str, float]

    @property
    def recommended(self) -> str:
        return min(self.degradation, key=self.degradation.get)

    def ranking(self) -> list[tuple[str, float]]:
        return sorted(self.degradation.items(), key=lambda kv: kv[1])


def recommend_robust_model(degradation_by_type: dict[str, float]) -> RobustnessReport:
    """Wrap measured degradation factors into a recommendation.

    The degradation factors come from running the attack harness per model
    type (see ``benchmarks/bench_fig6to9_avg_qerror.py``); this helper only
    ranks them, so tests can cover the policy without re-running attacks.
    """
    if not degradation_by_type:
        raise TrainingError("need at least one model type's degradation factor")
    return RobustnessReport(dict(degradation_by_type))
