"""The PACE attack system end to end (Section 3's workflow).

:class:`PaceAttack` drives the three stages against a black-box
:class:`~repro.ce.deployment.DeployedEstimator`:

(a) surrogate acquisition — probe, speculate the model type, train a
    white-box surrogate from EXPLAIN outputs + COUNT(*) ground truth;
(b) poisoning-data generation — train the three-headed generator (with the
    optional VAE detector adversary) against the unrolled surrogate update;
(c) attacking — execute the generated queries so the DBMS poisons itself.

Everything the attack consumes flows through the black box's public
surface (``explain`` / ``count`` / ``execute``) plus the schema, matching
the paper's threat model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.attack.algorithms import (
    GeneratorTrainConfig,
    GeneratorTrainResult,
    train_generator_accelerated,
    train_generator_basic,
)
from repro.attack.detector import VAEAnomalyDetector
from repro.attack.generator import PoisonQueryGenerator
from repro.attack.surrogate import (
    SpeculationResult,
    SurrogateConfig,
    speculate_model_type,
    train_candidates,
    train_surrogate,
)
from repro.ce.base import CardinalityEstimator
from repro.ce.deployment import DeployedEstimator, ExecutionReport
from repro.ce.trainer import TrainConfig
from repro.db.query import Query
from repro.db.table import Database
from repro.utils.errors import TrainingError
from repro.utils.rng import derive_rng
from repro.workload.encoding import QueryEncoder
from repro.workload.generator import WorkloadGenerator
from repro.workload.workload import Workload


class _BlackBoxExecutor:
    """Adapter giving attack internals an Executor-like COUNT(*) surface.

    Routes every count through the black box's public SQL interface, so
    the attack code never touches the private relational engine directly.
    """

    def __init__(self, black_box: DeployedEstimator) -> None:
        self._black_box = black_box

    def count(self, query: Query) -> int:
        return self._black_box.count(query)

    def count_many(self, queries) -> np.ndarray:
        return np.array([self.count(q) for q in queries], dtype=np.float64)


@dataclass
class PaceConfig:
    """Top-level attack configuration (paper defaults scaled by the caller).

    ``algorithm`` selects the Fig. 5 variant: ``"accelerated"`` (default)
    or ``"basic"``. ``speculate=False`` skips stage (a)'s probing and uses
    ``forced_model_type`` (the Table 7 wrong-surrogate experiment).
    """

    poison_queries: int = 24
    attacker_queries: int = 120
    probe_queries_per_group: int = 8
    algorithm: str = "accelerated"
    speculate: bool = True
    forced_model_type: str | None = None
    use_detector: bool = True
    detector_threshold: float | None = None
    surrogate: SurrogateConfig = field(default_factory=SurrogateConfig)
    generator: GeneratorTrainConfig = field(default_factory=GeneratorTrainConfig)
    candidate_train: TrainConfig = field(default_factory=lambda: TrainConfig(epochs=30))
    speculation_ensemble: int = 3
    noise_dim: int = 16
    generator_hidden: int = 32
    max_tables: int = 4
    seed: int = 0


@dataclass
class PaceResult:
    """Everything the attack produced, plus Table 9/10 timings."""

    speculation: SpeculationResult | None
    surrogate: CardinalityEstimator
    generator: PoisonQueryGenerator
    detector: VAEAnomalyDetector | None
    training: GeneratorTrainResult
    poison_queries: list[Query]
    train_seconds: float
    generate_seconds: float
    attack_seconds: float = 0.0
    execution: ExecutionReport | None = None


class PaceAttack:
    """Orchestrates the full black-box attack."""

    def __init__(
        self,
        database: Database,
        black_box: DeployedEstimator,
        test_workload: Workload,
        config: PaceConfig | None = None,
        history_workload: Workload | None = None,
    ) -> None:
        """Args:
            database: schema + data; the attack itself only reads the
                schema, but the attacker-side workload generator labels its
                probe queries through the black box's COUNT(*) surface.
            black_box: the deployed estimator under attack.
            test_workload: the workload whose estimates the attacker wants
                to corrupt (the problem definition's given test set).
            history_workload: historical queries for the detector; defaults
                to attacker-generated workload-like queries.
        """
        self.database = database
        self.schema = database.schema
        self.black_box = black_box
        self.test_workload = test_workload
        self.config = config or PaceConfig()
        self.encoder = QueryEncoder(self.schema)
        self._executor = _BlackBoxExecutor(black_box)
        self._rng = derive_rng(self.config.seed)
        self._workload_gen = WorkloadGenerator(
            database,
            executor=_CountingExecutor(self._executor, database),
            seed=derive_rng(self.config.seed + 1),
        )
        self.history_workload = history_workload

    # ------------------------------------------------------------------
    # stage (a): surrogate acquisition
    # ------------------------------------------------------------------
    def acquire_surrogate(self) -> tuple[SpeculationResult | None, CardinalityEstimator]:
        config = self.config
        attacker_workload = self._workload_gen.generate(
            config.attacker_queries, max_tables=config.max_tables
        )
        speculation = None
        if config.speculate:
            candidates = train_candidates(
                self.encoder,
                attacker_workload,
                hidden_dim=config.surrogate.hidden_dim,
                train_config=config.candidate_train,
                seed=config.seed,
                ensemble=config.speculation_ensemble,
            )
            probe_groups = self._workload_gen.probe_workloads(
                queries_per_group=config.probe_queries_per_group
            )
            speculation = speculate_model_type(self.black_box, candidates, probe_groups)
            model_type = speculation.speculated_type
        else:
            if config.forced_model_type is None:
                raise TrainingError("speculate=False requires forced_model_type")
            model_type = config.forced_model_type
        surrogate = train_surrogate(
            model_type, self.encoder, attacker_workload, self.black_box, config.surrogate
        )
        self._attacker_workload = attacker_workload
        return speculation, surrogate

    # ------------------------------------------------------------------
    # stage (b): generator (+ detector) training
    # ------------------------------------------------------------------
    def build_detector(self) -> VAEAnomalyDetector | None:
        if not self.config.use_detector:
            return None
        history = self.history_workload or self._attacker_workload
        detector = VAEAnomalyDetector(self.encoder.dim, seed=self.config.seed)
        detector.fit(history.encode(self.encoder), epochs=40, seed=self.config.seed)
        if self.config.detector_threshold is not None:
            detector.set_threshold(self.config.detector_threshold)
        return detector

    def train_generator(
        self, surrogate: CardinalityEstimator, detector: VAEAnomalyDetector | None
    ) -> GeneratorTrainResult:
        config = self.config
        generator = PoisonQueryGenerator(
            self.encoder,
            noise_dim=config.noise_dim,
            hidden_dim=config.generator_hidden,
            seed=config.seed,
        )
        gen_config = config.generator
        gen_config.detector = detector
        trainer = {
            "accelerated": train_generator_accelerated,
            "basic": train_generator_basic,
        }.get(config.algorithm)
        if trainer is None:
            raise TrainingError(f"unknown algorithm {self.config.algorithm!r}")
        return trainer(generator, surrogate, self._executor, self.test_workload, gen_config)

    # ------------------------------------------------------------------
    # full pipeline
    # ------------------------------------------------------------------
    def prepare(self) -> PaceResult:
        """Run stages (a) and (b); craft the poisoning workload."""
        start = time.perf_counter()
        speculation, surrogate = self.acquire_surrogate()
        detector = self.build_detector()
        training = self.train_generator(surrogate, detector)
        train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        queries = training.generator.generate_usable_queries(
            self.config.poison_queries, self._rng, self._executor
        )
        generate_seconds = time.perf_counter() - start
        return PaceResult(
            speculation=speculation,
            surrogate=surrogate,
            generator=training.generator,
            detector=detector,
            training=training,
            poison_queries=queries,
            train_seconds=train_seconds,
            generate_seconds=generate_seconds,
        )

    def attack(self, result: PaceResult | None = None) -> PaceResult:
        """Stage (c): execute the poisoning queries against the DBMS."""
        result = result or self.prepare()
        start = time.perf_counter()
        result.execution = self.black_box.execute(result.poison_queries)
        result.attack_seconds = time.perf_counter() - start
        return result


class _CountingExecutor:
    """Executor facade backed by the black box's COUNT(*) surface.

    WorkloadGenerator expects an object with ``count``; this keeps the
    attacker's workload generation on the public interface while sharing
    the underlying database object for value sampling.
    """

    def __init__(self, bb_executor: _BlackBoxExecutor, database: Database) -> None:
        self._bb = bb_executor
        self.database = database

    def count(self, query: Query) -> int:
        return self._bb.count(query)

    def count_many(self, queries) -> np.ndarray:
        return self._bb.count_many(queries)
