"""Budget-constrained attacks (Section 8's second future-work direction).

The attacker has a budget ``B`` on how many poisoning queries it may
execute. Two mechanisms, composable:

* :func:`select_most_effective` — influence-style subset selection: score
  each candidate poisoning query by how much a one-step update on it alone
  raises the surrogate's test error, and keep the top ``B``.
* :class:`PenaltyBudget` — the penalty-function formulation the paper
  sketches: a differentiable penalty added to the generator objective that
  punishes queries whose predicates deviate from "cheap" wide ranges,
  steering the generator toward making *few, individually strong* queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attack.generator import PoisonQueryGenerator
from repro.ce.base import CardinalityEstimator
from repro.ce.trainer import unrolled_update
from repro.db.query import Query
from repro.nn.tensor import Tensor, no_grad
from repro.utils.errors import TrainingError
from repro.workload.workload import Workload


def poisoning_influence(
    surrogate: CardinalityEstimator,
    candidates: list[Query],
    cardinalities: np.ndarray,
    test_workload: Workload,
    update_lr: float = 2.0,
    update_steps: int = 3,
) -> np.ndarray:
    """Per-query influence: post-update test error if updated on it alone."""
    if len(candidates) == 0:
        raise TrainingError("influence scoring needs candidate queries")
    test_x = Tensor(test_workload.encode(surrogate.encoder))
    test_y = Tensor(surrogate.normalize_log(test_workload.cardinalities))
    encodings = surrogate.encoder.encode_many(candidates)
    labels = surrogate.normalize_log(np.maximum(cardinalities, 1.0))
    scores = np.zeros(len(candidates))
    for i in range(len(candidates)):
        x = Tensor(encodings[i : i + 1])
        y = Tensor(labels[i : i + 1])
        poisoned = unrolled_update(surrogate, x, y, steps=update_steps, lr=update_lr)
        with no_grad():
            prediction = poisoned(test_x)
            scores[i] = float(np.abs(prediction.data - test_y.data).mean())
    return scores


def select_most_effective(
    surrogate: CardinalityEstimator,
    candidates: list[Query],
    cardinalities: np.ndarray,
    test_workload: Workload,
    budget: int,
    update_lr: float = 2.0,
) -> list[Query]:
    """Keep the ``budget`` candidates with the highest poisoning influence."""
    if budget <= 0:
        raise TrainingError(f"budget must be positive, got {budget}")
    if budget >= len(candidates):
        return list(candidates)
    scores = poisoning_influence(
        surrogate, candidates, cardinalities, test_workload, update_lr=update_lr
    )
    keep = np.argsort(-scores)[:budget]
    return [candidates[i] for i in sorted(keep)]


@dataclass
class PenaltyBudget:
    """Differentiable budget penalty for the generator objective.

    ``strength`` scales the penalty; ``target_selectivity_width`` is the
    predicate width below which a query is considered "expensive" (narrow
    predicates require precise crafting; a budgeted attacker prefers fewer,
    sharper queries, so the penalty *rewards* narrowness up to the target
    and punishes diffuse, wasteful ranges).
    """

    strength: float = 0.1
    target_width: float = 0.3

    def penalty(self, generator: PoisonQueryGenerator, encodings: Tensor) -> Tensor:
        """Mean squared excess of predicate widths over the target."""
        num_tables = generator.encoder.num_tables
        bounds = encodings[:, num_tables:]
        batch, width = bounds.shape
        pairs = bounds.reshape((batch, width // 2, 2))
        spans = pairs[:, :, 1] - pairs[:, :, 0]
        excess = (spans - self.target_width).relu()
        return (excess * excess).mean() * self.strength
