"""The four baseline poisoning-query crafters (Section 7.1).

* ``Random`` — random workload-style queries.
* ``Lb-S`` (loss-based selection) — generate a pool, keep the 10% with the
  highest inference loss on the *unpoisoned* surrogate.
* ``Greedy`` — per query: random join pattern, 10 candidate range
  conditions per attribute, greedily pick the condition maximizing the
  unpoisoned surrogate's inference loss.
* ``Lb-G`` (loss-based generation) — PACE's generator architecture trained
  to maximize the unpoisoned surrogate's inference loss (no unrolled
  update — the ablation showing why the bivariate objective matters).
"""

from __future__ import annotations

import numpy as np

from repro.attack.algorithms import GeneratorTrainConfig, GeneratorTrainResult, _Session
from repro.attack.generator import PoisonQueryGenerator
from repro.ce.base import CardinalityEstimator
from repro.db.executor import Executor
from repro.db.query import Query
from repro.db.table import Database
from repro.nn.tensor import Tensor, grad
from repro.utils.errors import ExecutionBudgetError, TrainingError
from repro.utils.rng import derive_rng
from repro.workload.generator import WorkloadGenerator
from repro.workload.workload import Workload


def _inference_losses(model: CardinalityEstimator, queries, cards: np.ndarray) -> np.ndarray:
    """Per-query |log est - log true| on the unpoisoned model."""
    estimates = np.maximum(model.estimate(queries), 1e-9)
    truths = np.maximum(np.asarray(cards, dtype=np.float64), 1.0)
    return np.abs(np.log(estimates) - np.log(truths))


def random_poison(
    database: Database, executor: Executor, count: int, seed=0, max_tables: int = 4
) -> list[Query]:
    """``Random`` baseline: ordinary random workload queries."""
    generator = WorkloadGenerator(database, executor, seed=seed)
    return generator.generate(count, max_tables=max_tables).queries


def loss_based_selection(
    database: Database,
    executor: Executor,
    surrogate: CardinalityEstimator,
    count: int,
    seed=0,
    pool_factor: int = 10,
    max_tables: int = 4,
) -> list[Query]:
    """``Lb-S``: top-``count`` of a ``pool_factor * count`` random pool."""
    generator = WorkloadGenerator(database, executor, seed=seed)
    pool = generator.generate(count * pool_factor, max_tables=max_tables)
    losses = _inference_losses(surrogate, pool.queries, pool.cardinalities)
    top = np.argsort(-losses)[:count]
    return [pool.queries[i] for i in top]


def greedy_search(
    database: Database,
    executor: Executor,
    surrogate: CardinalityEstimator,
    count: int,
    seed=0,
    candidates_per_attribute: int = 10,
    max_tables: int = 4,
) -> list[Query]:
    """``Greedy``: per-attribute greedy condition selection.

    For each query: sample a join pattern, then walk its attributes in
    order; for each attribute try ``candidates_per_attribute`` random range
    conditions (plus "no condition") and keep whichever maximizes the
    surrogate's inference loss of the partially built query.
    """
    rng = derive_rng(seed)
    generator = WorkloadGenerator(database, executor, seed=rng)
    schema = database.schema
    queries: list[Query] = []
    attempts = 0
    while len(queries) < count and attempts < count * 20:
        attempts += 1
        join_set = generator.random_join_set(max_tables=max_tables)
        attributes = [tc for t in sorted(join_set) for tc in schema.attributes_of(t)]
        predicates: dict[tuple[str, str], tuple[float, float]] = {}
        for table, col in attributes:
            best_bounds = None
            best_loss = None
            options: list[tuple[float, float] | None] = [None]
            for _ in range(candidates_per_attribute):
                width = float(np.exp(rng.uniform(np.log(0.02), np.log(0.9))))
                center = float(rng.uniform(0.0, 1.0))
                low = float(np.clip(center - width / 2, 0.0, 1.0))
                high = float(np.clip(center + width / 2, 0.0, 1.0))
                if high > low:
                    options.append((low, high))
            for bounds in options:
                trial = dict(predicates)
                if bounds is not None:
                    trial[(table, col)] = bounds
                query = Query.build(schema, join_set, trial)
                try:
                    card = executor.count(query)
                except ExecutionBudgetError:
                    continue
                if card <= 0:
                    continue
                loss = float(_inference_losses(surrogate, [query], np.array([card]))[0])
                if best_loss is None or loss > best_loss:
                    best_loss = loss
                    best_bounds = bounds
            if best_bounds is not None:
                predicates[(table, col)] = best_bounds
        query = Query.build(schema, join_set, predicates)
        try:
            if executor.count(query) == 0:
                continue
        except ExecutionBudgetError:
            continue
        queries.append(query)
    if len(queries) < count:
        raise TrainingError(f"greedy search produced only {len(queries)}/{count} queries")
    return queries


def train_generator_loss_based(
    generator: PoisonQueryGenerator,
    surrogate: CardinalityEstimator,
    executor: Executor,
    test_workload: Workload,
    config: GeneratorTrainConfig | None = None,
) -> GeneratorTrainResult:
    """``Lb-G``: train the generator against the *unpoisoned* surrogate.

    Identical machinery to PACE minus the unrolled update: the objective is
    the surrogate's inference loss on the generated queries themselves, so
    it never accounts for how the model will move once updated.
    """
    config = config or GeneratorTrainConfig()
    session = _Session(generator, surrogate, executor, test_workload, config)
    import time

    start = time.perf_counter()
    snapshot_every = max(config.iterations // 6, 1)
    snapshots = []
    for iteration in range(config.iterations):
        batch = session.generator.generate(config.poison_batch, session.rng)
        session.join_step(batch)
        labels_norm, nonempty, oversized = session.label_batch(batch)
        if nonempty.any():
            rows = np.nonzero(nonempty)[0]
            prediction = surrogate(batch.encodings[rows])
            objective = (prediction - Tensor(labels_norm[rows])).abs().mean()
        else:
            objective = Tensor(np.zeros(()))
        loss = objective * -1.0
        empty_rows = np.nonzero(~nonempty & ~oversized)[0]
        if empty_rows.size:
            loss = loss + session.emptiness_penalty(batch, empty_rows)
        if not loss.requires_grad:
            session.result.objective_curve.append(-float(objective.item()))
            continue
        grads = grad(loss, session.bound_params)
        for p, g in zip(session.bound_params, grads):
            p.grad = g
        session.bound_optimizer.step()
        session.bound_optimizer.zero_grad()
        session.result.objective_curve.append(-float(objective.item()))
        if (iteration + 1) % snapshot_every == 0 or iteration == config.iterations - 1:
            snapshots.append(generator.state_dict())

    # Select the snapshot whose fresh queries have the highest inference
    # loss on the unpoisoned surrogate — Lb-G's own criterion. (PACE's
    # selection instead simulates the post-update error; this difference is
    # exactly what the Fig. 6-9 gap between Lb-G and PACE measures.)
    best_value, best_state = -np.inf, None
    probe_rng = derive_rng(config.seed + 4242)
    for state in snapshots:
        generator.load_state_dict(state)
        queries = generator.generate_queries(config.poison_batch, probe_rng)
        cards = np.zeros(len(queries))
        for i, q in enumerate(queries):
            try:
                cards[i] = executor.count(q)
            except ExecutionBudgetError:
                cards[i] = 0.0
        keep = cards > 0
        if not keep.any():
            continue
        kept = [q for q, k in zip(queries, keep) if k]
        value = float(_inference_losses(surrogate, kept, cards[keep]).mean())
        if value > best_value:
            best_value, best_state = value, state
    if best_state is not None:
        generator.load_state_dict(best_state)
    session.result.wall_seconds = time.perf_counter() - start
    return session.result
