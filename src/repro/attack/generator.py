"""The poisoning-query generator (Section 5.2 of the paper).

Three sub-generators map Gaussian noise to a query encoding:

* ``G_join`` — noise -> sigmoid table-membership scores; thresholded at
  0.5 into a binary join vector, resampled / projected until it is a valid
  (connected, non-empty) join set, and trained with a cross-entropy loss
  toward the accepted valid pattern (Eq. 8);
* ``G_low`` — (noise ++ join vector) -> predicate lower bounds in (0, 1);
* ``G_rng`` — (noise ++ join vector) -> range sizes; upper bounds are
  ``low + size * (1 - low)``, which keeps ``low < high <= 1`` while staying
  differentiable (the paper adds the raw size and clips; the rescaled form
  avoids a dead clip gradient at the boundary).

Attributes of tables outside the join set are masked to the open interval
``[0, 1]``, matching the query-encoding convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.query import Query
from repro.db.schema import DatabaseSchema
from repro.nn.layers import Sigmoid, mlp
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat, stack
from repro.utils.errors import QueryError
from repro.utils.rng import derive_rng
from repro.workload.encoding import QueryEncoder


def project_to_valid_join(schema: DatabaseSchema, scores: np.ndarray) -> np.ndarray:
    """Project join-membership scores onto a valid join pattern.

    Greedy: seed with the highest-scoring table, then repeatedly add the
    neighboring table with the highest score as long as that score clears
    the 0.5 threshold. Always returns a non-empty connected pattern.
    """
    scores = np.asarray(scores, dtype=np.float64)
    names = schema.table_names
    chosen = {names[int(np.argmax(scores))]}
    while True:
        frontier = sorted({n for t in chosen for n in schema.neighbors(t)} - chosen)
        if not frontier:
            break
        best = max(frontier, key=lambda t: scores[schema.table_index(t)])
        if scores[schema.table_index(best)] <= 0.5:
            break
        chosen.add(best)
    binary = np.zeros(len(names))
    for t in chosen:
        binary[schema.table_index(t)] = 1.0
    return binary


@dataclass
class GeneratedBatch:
    """One generator forward pass.

    Attributes:
        encodings: ``(batch, dim)`` differentiable query encodings.
        join_probs: ``(batch, T)`` raw ``G_join`` sigmoid outputs (graph
            tensor, consumed by the Eq. 8 loss).
        join_binary: ``(batch, T)`` accepted valid binary join patterns.
        join_targets: ``(batch, T)`` training targets for ``G_join`` — the
            accepted pattern each row was resolved to.
        resamples: total noise redraws spent fixing invalid join patterns.
    """

    encodings: Tensor
    join_probs: Tensor
    join_binary: np.ndarray
    join_targets: np.ndarray
    resamples: int


class PoisonQueryGenerator(Module):
    """The three-headed generator G = (G_join, G_low, G_rng)."""

    def __init__(
        self,
        encoder: QueryEncoder,
        noise_dim: int = 16,
        hidden_dim: int = 32,
        join_layers: int = 2,
        bound_layers: int = 2,
        low_bias: float = -4.5,
        range_bias: float = 4.5,
        seed=0,
    ) -> None:
        """Args:
            low_bias/range_bias: initial bias of the final ``G_low``/``G_rng``
                layers. The defaults start every predicate essentially
                unconstrained (``low ~ 0.01``, ``high ~ 0.99``, inside the
                decoder's snap band) so initial queries are satisfiable —
                the generator emits bounds for *every* attribute, and a
                cold start of mid-width conjunctions is almost always empty
                on skewed data, zeroing the poisoning gradient. Training
                then narrows predicates selectively where it pays off.
        """
        super().__init__()
        rng = derive_rng(seed)
        self.encoder = encoder
        self.schema = encoder.schema
        self.noise_dim = noise_dim
        num_tables = encoder.num_tables
        num_attrs = encoder.num_attributes
        self.g_join = mlp(
            noise_dim, [hidden_dim] * join_layers, num_tables, rng=rng,
            final_activation=Sigmoid(),
        )
        bound_in = noise_dim + num_tables
        self.g_low = mlp(
            bound_in, [hidden_dim] * bound_layers, num_attrs, rng=rng,
            final_activation=Sigmoid(),
        )
        self.g_rng = mlp(
            bound_in, [hidden_dim] * bound_layers, num_attrs, rng=rng,
            final_activation=Sigmoid(),
        )
        self._bias_final_layer(self.g_low, low_bias)
        self._bias_final_layer(self.g_rng, range_bias)

    @staticmethod
    def _bias_final_layer(net, bias_value: float) -> None:
        linear_layers = [m for m in net if hasattr(m, "bias")]
        if linear_layers:
            linear_layers[-1].bias.data[:] = bias_value

    # ------------------------------------------------------------------
    # join patterns
    # ------------------------------------------------------------------
    def sample_joins(
        self, batch_size: int, rng: np.random.Generator, max_resamples: int = 20
    ) -> tuple[Tensor, Tensor, np.ndarray, np.ndarray, int]:
        """Draw noise and resolve every row to a valid join pattern.

        Invalid rows get fresh noise up to ``max_resamples`` times (the
        paper's regeneration step); stubborn rows are projected onto the
        nearest valid pattern. Returns
        ``(noise, join_probs, join_binary, join_targets, resamples)``.
        """
        noise_data = rng.standard_normal((batch_size, self.noise_dim))
        resamples = 0
        names = self.schema.table_names
        if len(names) == 1:
            noise = Tensor(noise_data)
            probs = self.g_join(noise)
            ones = np.ones((batch_size, 1))
            return noise, probs, ones.copy(), ones.copy(), 0
        for _attempt in range(max_resamples):
            probs_np = self._join_probs_np(noise_data)
            binary = (probs_np > 0.5).astype(np.float64)
            invalid = [
                i
                for i in range(batch_size)
                if not self.schema.is_valid_join_set(
                    {names[j] for j in np.nonzero(binary[i])[0]}
                )
            ]
            if not invalid:
                break
            resamples += len(invalid)
            noise_data[invalid] = rng.standard_normal((len(invalid), self.noise_dim))
        noise = Tensor(noise_data)
        probs = self.g_join(noise)
        binary = (probs.data > 0.5).astype(np.float64)
        targets = binary.copy()
        for i in range(batch_size):
            tables = {names[j] for j in np.nonzero(binary[i])[0]}
            if not self.schema.is_valid_join_set(tables):
                targets[i] = project_to_valid_join(self.schema, probs.data[i])
                binary[i] = targets[i]
        return noise, probs, binary, targets, resamples

    def _join_probs_np(self, noise_data: np.ndarray) -> np.ndarray:
        from repro.nn.tensor import no_grad

        with no_grad():
            return self.g_join(Tensor(noise_data)).data

    # ------------------------------------------------------------------
    # full generation
    # ------------------------------------------------------------------
    def generate(self, batch_size: int, rng: np.random.Generator) -> GeneratedBatch:
        """Generate a differentiable batch of poisoning-query encodings."""
        if batch_size <= 0:
            raise QueryError(f"batch_size must be positive, got {batch_size}")
        noise, probs, binary, targets, resamples = self.sample_joins(batch_size, rng)
        encodings = self.assemble(noise, binary)
        return GeneratedBatch(
            encodings=encodings,
            join_probs=probs,
            join_binary=binary,
            join_targets=targets,
            resamples=resamples,
        )

    def assemble(self, noise: Tensor, join_binary: np.ndarray) -> Tensor:
        """Differentiable encoding assembly for fixed join patterns."""
        batch_size = noise.shape[0]
        join_const = Tensor(join_binary)
        bound_input = concat([noise, join_const], axis=1)
        low = self.g_low(bound_input)
        size = self.g_rng(bound_input)
        high = low + size * (1.0 - low)
        attr_mask = Tensor(self.encoder.expand_attribute_mask(join_binary))
        low_masked = low * attr_mask
        high_masked = high * attr_mask + (1.0 - attr_mask)
        bounds = stack([low_masked, high_masked], axis=2).reshape(
            (batch_size, 2 * self.encoder.num_attributes)
        )
        return concat([join_const, bounds], axis=1)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def to_queries(self, encodings: Tensor | np.ndarray) -> list[Query]:
        """Decode generated encodings into executable queries."""
        data = encodings.data if isinstance(encodings, Tensor) else np.asarray(encodings)
        return self.encoder.decode_many(data, repair=True)

    def generate_queries(self, count: int, rng: np.random.Generator) -> list[Query]:
        """Convenience: generate ``count`` ready-to-run poisoning queries."""
        batch = self.generate(count, rng)
        return self.to_queries(batch.encodings)

    def generate_usable_queries(
        self,
        count: int,
        rng: np.random.Generator,
        executor,
        max_attempt_factor: int = 8,
    ) -> list[Query]:
        """Generate ``count`` queries the DBMS will actually train on.

        The attacker holds COUNT(*) privileges, so before submitting the
        poisoning workload it screens candidates: queries that are empty
        (dropped from the update) or that blow the execution budget
        (statement timeout — conspicuous and useless) are regenerated.
        Falls back to unscreened queries if the generator cannot produce
        enough usable ones within the attempt budget.
        """
        from repro.utils.errors import ExecutionBudgetError

        usable: list[Query] = []
        spares: list[Query] = []
        attempts = 0
        while len(usable) < count and attempts < count * max_attempt_factor:
            remaining = count - len(usable)
            batch_queries = self.generate_queries(remaining, rng)
            attempts += remaining
            for query in batch_queries:
                try:
                    card = executor.count(query)
                except ExecutionBudgetError:
                    spares.append(query)
                    continue
                if card > 0:
                    usable.append(query)
                else:
                    spares.append(query)
        if len(usable) < count:
            usable.extend(spares[: count - len(usable)])
        return usable[:count]
