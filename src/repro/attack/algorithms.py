"""Generator training: the bivariate optimization of Eq. 10 (Section 5.3).

The objective couples two variables — the generator parameters ``phi`` and
the surrogate parameters ``theta_P``, where ``theta_P`` is itself the
result of ``K`` gradient-descent steps on the generated queries (Eq. 9).
Both algorithms below optimize it by differentiating *through* the update
(second-order gradients, provided by ``repro.nn``):

* :func:`train_generator_basic` — Fig. 5(a): alternate long phases; the
  generator trains for ``m`` steps against the surrogate committed at the
  previous phase (stale by the time it converges), then the surrogate is
  re-poisoned, ``q`` times. Complexity O(q * (m + n)) surrogate/generator
  updates.
* :func:`train_generator_accelerated` — Fig. 5(b) / Algorithm 1: interleave
  one-step surrogate updates with one-step generator updates so the two
  variables "interact in time". The virtual surrogate walks the K-step
  poisoned trajectory and is reset to the clean parameters every ``K``
  steps, mirroring the single K-step update the real DBMS will perform.

Both also run the detector confrontation (Section 6.2, Algorithm 1 lines
13-15) when a detector is supplied: flagged queries' reconstruction loss is
backpropagated into the generator.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.attack.detector import VAEAnomalyDetector
from repro.attack.generator import GeneratedBatch, PoisonQueryGenerator
from repro.ce.base import CardinalityEstimator
from repro.ce.trainer import training_loss, unrolled_update
from repro.db.executor import Executor
from repro.nn.compile import CompiledInput, compiled_call, compiled_forward
from repro.nn.losses import bce_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, grad, sanitize_scope
from repro.utils.errors import ExecutionBudgetError, TrainingError
from repro.utils.rng import derive_rng
from repro.workload.workload import Workload


#: Predicate-span target used to push empty queries back toward
#: satisfiable ranges, and the weight of that hinge penalty in the loss.
_EMPTY_TARGET_WIDTH = 0.6
_EMPTY_PENALTY_WEIGHT = 10.0


def _shrink_join_pattern(schema, pattern: np.ndarray, scores: np.ndarray) -> np.ndarray:
    """Remove the weakest non-articulation table from a join pattern.

    Used to retarget ``G_join`` when a pattern's join blows the execution
    budget; the result stays a valid (connected, non-empty) pattern.
    """
    import networkx as nx

    names = schema.table_names
    tables = {names[i] for i in np.nonzero(pattern > 0.5)[0]}
    if len(tables) <= 2:
        return pattern
    graph = schema.join_graph().subgraph(tables)
    articulation = set(nx.articulation_points(graph))
    # Iterate in sorted order so score ties break the same way regardless
    # of set hash order.
    removable = sorted(
        (t for t in sorted(tables) if t not in articulation),
        key=lambda t: scores[schema.table_index(t)],
    )
    if not removable:
        return pattern
    shrunk = pattern.copy()
    shrunk[schema.table_index(removable[0])] = 0.0
    return shrunk


@dataclass
class GeneratorTrainConfig:
    """Hyper-parameters shared by both training algorithms.

    Attributes:
        poison_batch: queries generated per step (also the attack size).
        update_steps: the DBMS's incremental-update iterations ``K``.
        update_lr: learning rate of the incremental update (Eq. 9's eta).
        generator_lr: Adam rate for ``G_low``/``G_rng``.
        join_lr: Adam rate for ``G_join`` (Eq. 8 loss).
        iterations: generator updates for the accelerated algorithm (``n``).
        outer_loops/inner_steps: the basic algorithm's ``q`` and ``m``.
        detector: optional VAE adversary (Section 6).
        detector_weight: weight of the reconstruction loss term.
        escape_threshold/escape_boost: when the generator gradient norm
            falls below the threshold, boost the step to escape flat
            regions / local optima (Section 5.3's convergence remark).
    """

    poison_batch: int = 24
    update_steps: int = 5
    update_lr: float = 2.0
    generator_lr: float = 2e-2
    join_lr: float = 1e-2
    iterations: int = 40
    outer_loops: int = 8
    inner_steps: int = 8
    detector: VAEAnomalyDetector | None = None
    detector_weight: float = 1.0
    escape_threshold: float = 1e-5
    escape_boost: float = 10.0
    seed: int = 0


@dataclass
class GeneratorTrainResult:
    """Training artifacts and diagnostics."""

    generator: PoisonQueryGenerator
    objective_curve: list[float] = field(default_factory=list)
    wall_seconds: float = 0.0
    flagged_counts: list[int] = field(default_factory=list)
    label_executions: int = 0


class _Session:
    """Shared state for one generator-training run."""

    def __init__(
        self,
        generator: PoisonQueryGenerator,
        surrogate: CardinalityEstimator,
        executor: Executor,
        test_workload: Workload,
        config: GeneratorTrainConfig,
    ) -> None:
        if len(test_workload) == 0:
            raise TrainingError("generator training needs a non-empty test workload")
        self.generator = generator
        self.surrogate = surrogate
        self.executor = executor
        self.config = config
        self.rng = derive_rng(config.seed)
        self.test_x = Tensor(test_workload.encode(surrogate.encoder))
        self.test_y = Tensor(surrogate.normalize_log(test_workload.cardinalities))
        bound_params = list(generator.g_low.parameters()) + list(generator.g_rng.parameters())
        self.bound_optimizer = Adam(bound_params, lr=config.generator_lr)
        self.bound_params = bound_params
        self.join_params = list(generator.g_join.parameters())
        self.join_optimizer = Adam(self.join_params, lr=config.join_lr)
        self.result = GeneratorTrainResult(generator=generator)
        # Clean surrogate parameters (the theta_0 of Eq. 9).
        self.clean_state = surrogate.state_dict()

    # ------------------------------------------------------------------
    # pieces
    # ------------------------------------------------------------------
    def fresh_view(self, state: dict[str, np.ndarray] | None = None):
        """A functional surrogate clone with fresh leaf parameters."""
        state = state or self.clean_state
        mapping = {name: Tensor(value.copy(), requires_grad=True) for name, value in state.items()}
        return self.surrogate.clone_with_parameters(mapping), mapping

    def label_batch(
        self, batch: GeneratedBatch
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Labels via COUNT(*) on the decoded queries.

        Returns ``(labels_norm, nonempty_mask, oversized_mask)``.

        Empty queries matter: the DBMS eliminates zero-cardinality queries
        from its update, so the training loop must exclude them too —
        otherwise the generator converges to empty queries that poison the
        surrogate in simulation but do nothing to the real model. Oversized
        queries (COUNT(*) killed by the statement-timeout budget) are also
        unusable, but must *not* receive the emptiness penalty that widens
        predicates — they are already too wide.
        """
        queries = self.generator.to_queries(batch.encodings)
        cards = np.zeros(len(queries))
        oversized = np.zeros(len(queries), dtype=bool)
        for i, query in enumerate(queries):
            try:
                cards[i] = self.executor.count(query)
            except ExecutionBudgetError:
                oversized[i] = True
        self.result.label_executions += len(queries)
        nonempty = cards > 0
        labels = self.surrogate.normalize_log(np.maximum(cards, 1.0))
        return labels, nonempty, oversized

    def emptiness_penalty(self, batch: GeneratedBatch, empty_rows: np.ndarray) -> Tensor:
        """Pressure empty queries back toward fully open predicates.

        Pushes lows toward 0 and highs toward 1 on the empty rows. Unlike a
        width target, this has a guaranteed satisfiable fixed point: with
        all predicates open, a connected FK join always returns rows, so an
        empty query can always escape emptiness along this gradient.
        Masked attributes already encode as exactly [0, 1] and contribute
        nothing.
        """
        rows = batch.encodings[empty_rows]
        num_tables = self.generator.encoder.num_tables
        bounds = rows[:, num_tables:]
        batch_size, width = bounds.shape
        pairs = bounds.reshape((batch_size, width // 2, 2))
        lows = pairs[:, :, 0]
        highs = pairs[:, :, 1]
        return (lows * lows + (1.0 - highs) * (1.0 - highs)).mean()

    def join_step(self, batch: GeneratedBatch, oversized: np.ndarray | None = None) -> None:
        """Train G_join toward the accepted valid patterns (Eq. 8).

        When ``oversized`` marks rows whose COUNT(*) hit the execution
        budget, their targets are shrunk by one removable table (a
        non-articulation vertex with the lowest membership score) so the
        join generator is steered away from un-executable mega-joins.
        """
        if self.generator.encoder.num_tables == 1:
            return
        targets = batch.join_targets
        if oversized is not None and oversized.any():
            targets = targets.copy()
            for row in np.nonzero(oversized)[0]:
                targets[row] = _shrink_join_pattern(
                    self.generator.schema, targets[row], batch.join_probs.data[row]
                )
        loss = bce_loss(batch.join_probs, Tensor(targets))
        self.join_optimizer.zero_grad()
        loss.backward()
        self.join_optimizer.step()

    def _compiled_poisoning_objective(self, view, encodings: Tensor,
                                      labels_norm: np.ndarray, steps: int):
        """Eq. 10 through the JIT plan cache; ``None`` -> interpreted path.

        The returned objective is a super node whose only graph parent is
        ``encodings``, so the generator's interpreted graph picks up exactly
        where the compiled region ends.
        """
        named = list(view.named_parameters())
        names = [name for name, _ in named]
        params = [param for _, param in named]
        lr = self.config.update_lr

        def build(enc, lab, tx, ty, *param_tensors):
            inner = view.clone_with_parameters(dict(zip(names, param_tensors)))
            poisoned = unrolled_update(inner, enc, lab, steps=steps, lr=lr)
            return (poisoned(tx) - ty).abs().mean()

        outputs = compiled_call(
            ("attack.poisoning_objective", type(self.surrogate).__name__),
            build,
            [
                CompiledInput(encodings, diff=True, want_grad=True),
                CompiledInput(Tensor(labels_norm)),
                CompiledInput(self.test_x),
                CompiledInput(self.test_y),
                *[CompiledInput(p, diff=True) for p in params],
            ],
            static=(steps, repr(float(lr))),
        )
        return None if outputs is None else outputs[0]

    def poisoning_objective(self, view, encodings: Tensor, labels_norm: np.ndarray,
                            steps: int) -> Tensor:
        """Eq. 10's inner value: post-update test error (to be maximized)."""
        compiled = self._compiled_poisoning_objective(view, encodings, labels_norm, steps)
        if compiled is not None:
            return compiled
        poisoned = unrolled_update(
            view, encodings, Tensor(labels_norm),
            steps=steps, lr=self.config.update_lr,
        )
        prediction = poisoned(self.test_x)
        return (prediction - self.test_y).abs().mean()

    def generator_step(self, view, steps: int) -> float:
        """One generator update; returns the objective value."""
        config = self.config
        batch = self.generator.generate(config.poison_batch, self.rng)
        labels_norm, nonempty, oversized = self.label_batch(batch)
        self.join_step(batch, oversized=oversized)
        if nonempty.any():
            rows = np.nonzero(nonempty)[0]
            with sanitize_scope("attack.generator_step"):
                objective = self.poisoning_objective(
                    view, batch.encodings[rows], labels_norm[rows], steps
                )
        else:
            objective = Tensor(np.zeros(()))
        loss = objective * -1.0
        empty_rows = np.nonzero(~nonempty & ~oversized)[0]
        if empty_rows.size:
            loss = loss + self.emptiness_penalty(batch, empty_rows) * _EMPTY_PENALTY_WEIGHT

        flagged = 0
        if config.detector is not None:
            errors = config.detector.reconstruction_errors(batch.encodings.data)
            abnormal = np.nonzero(errors > config.detector.threshold)[0]
            flagged = int(abnormal.size)
            if flagged:
                abnormal_rows = batch.encodings[abnormal]
                recon = config.detector.reconstruction_loss(abnormal_rows)
                loss = loss + recon * config.detector_weight
        self.result.flagged_counts.append(flagged)

        if not loss.requires_grad:
            # Entire batch was unusable (e.g. every query hit the execution
            # budget): nothing to learn from this step.
            self.result.objective_curve.append(-float(objective.item()))
            return float(objective.item())

        grads = grad(loss, self.bound_params)
        norm = float(np.sqrt(sum(float((g.data**2).sum()) for g in grads)))
        boost = config.escape_boost if norm < config.escape_threshold else 1.0
        for p, g in zip(self.bound_params, grads):
            p.grad = Tensor(g.data * boost)
        self.bound_optimizer.step()
        self.bound_optimizer.zero_grad()

        self.result.objective_curve.append(-float(objective.item()))
        return float(objective.item())

    def simulate_attack_value(self, count: int, seed: int = 1234) -> float:
        """The attacker's own dress rehearsal of the final attack.

        Generates ``count`` queries with the *current* generator, labels
        them, applies the K-step update to a fresh clean surrogate
        (detached, empties dropped — exactly what the DBMS will do), and
        returns the resulting test error. Everything here is white-box on
        the surrogate, so a real attacker can compute it; it is the
        criterion used to select among generator snapshots.
        """
        rng = derive_rng(seed)
        batch = self.generator.generate(count, rng)
        labels_norm, nonempty, _oversized = self.label_batch(batch)
        if not nonempty.any():
            return 0.0
        rows = np.nonzero(nonempty)[0]
        x = batch.encodings[rows].detach()
        y = Tensor(labels_norm[rows])
        final = self._detached_steps(x, y, self.clean_state, self.config.update_steps)
        view, _ = self.fresh_view(final)
        from repro.nn.tensor import no_grad

        prediction = compiled_forward(view, self.test_x)
        if prediction is None:
            with no_grad():
                prediction = view(self.test_x)
        return float(np.abs(prediction.data - self.test_y.data).mean())

    def _detached_steps(
        self, x: Tensor, y: Tensor, state: dict[str, np.ndarray], steps: int
    ) -> dict[str, np.ndarray]:
        """Eq. 9's K GD steps from ``state``, detached (no taped unroll).

        Numerically identical to :func:`unrolled_update` followed by
        ``state_dict`` — ``create_graph`` only controls whether the backward
        pass is taped, never the gradient values — but never materializes
        the K-step graph, which is the attack loop's dominant cost.
        """
        compiled = self._compiled_detached_steps(x, y, state, steps)
        if compiled is not None:
            return compiled
        current = dict(state)
        for _ in range(steps):
            view, mapping = self.fresh_view(current)
            loss = training_loss(view, x, y)
            params = [mapping[name] for name in mapping]
            grads = grad(loss, params)
            current = {
                name: mapping[name].data - self.config.update_lr * g.data
                for name, g in zip(mapping, grads)
            }
        return current

    def _compiled_detached_steps(
        self, x: Tensor, y: Tensor, state: dict[str, np.ndarray], steps: int
    ) -> dict[str, np.ndarray] | None:
        """:meth:`_detached_steps` as one compiled plan; ``None`` -> interpreted.

        The traced update ``p - lr * g`` evaluates the same NumPy expression
        as the interpreted ``mapping[name].data - lr * g.data`` (IEEE
        multiplication and subtraction, same operand order), so the final
        state is bit-identical.
        """
        names = list(state)
        lr = self.config.update_lr

        def build(xi, yi, *values):
            current = list(values)
            for _ in range(steps):
                view = self.surrogate.clone_with_parameters(dict(zip(names, current)))
                loss = training_loss(view, xi, yi)
                grads = grad(loss, current)
                current = [p - lr * g for p, g in zip(current, grads)]
            return tuple(current)

        outputs = compiled_call(
            ("attack.detached_steps", type(self.surrogate).__name__),
            build,
            [
                CompiledInput(x),
                CompiledInput(y),
                *[CompiledInput(Tensor(state[name]), diff=True) for name in names],
            ],
            static=(steps, repr(float(lr))),
            # Compiled detached steps save well under a millisecond per
            # call against a trace costing tens of milliseconds; only
            # long-running sessions that reuse one shape across dozens of
            # snapshots come out ahead.
            min_uses=32,
        )
        if outputs is None:
            return None
        return {name: out.data for name, out in zip(names, outputs)}

    def commit_update(self, state: dict[str, np.ndarray], steps: int) -> dict[str, np.ndarray]:
        """Advance surrogate parameters ``steps`` detached GD steps (Eq. 9).

        Mirrors the DBMS: zero-cardinality queries are excluded; if the
        whole batch is empty the parameters stay put.
        """
        batch = self.generator.generate(self.config.poison_batch, self.rng)
        labels_norm, nonempty, _oversized = self.label_batch(batch)
        if not nonempty.any():
            return dict(state)
        rows = np.nonzero(nonempty)[0]
        x = batch.encodings[rows].detach()
        y = Tensor(labels_norm[rows])
        with sanitize_scope("attack.commit_update"):
            return self._detached_steps(x, y, state, steps)


def train_generator_accelerated(
    generator: PoisonQueryGenerator,
    surrogate: CardinalityEstimator,
    executor: Executor,
    test_workload: Workload,
    config: GeneratorTrainConfig | None = None,
) -> GeneratorTrainResult:
    """Fig. 5(b) / Algorithm 1: generator and surrogate interact every step.

    Each iteration performs exactly one generator update against the fully
    unrolled K-step surrogate update *from the clean parameters* — the
    scenario the real attack will face (Eq. 10 with Eq. 9's K-step update).
    Because the surrogate trajectory is re-derived from the current
    generator every iteration, the two variables stay synchronized; no
    update is spent against a stale counterpart. Total work: ``iterations``
    generator updates, each with one K-step unroll.

    Because the per-step objective holds labels fixed while the true labels
    move with the queries, the training trajectory passes through several
    qualitatively different attack modes (saturating wide queries, then
    capacity-conflict slivers, then — if pushed too far — collapse into
    unsatisfiable queries). The algorithm therefore snapshots the generator
    periodically and finally keeps the snapshot whose *simulated full
    attack* (K detached update steps on a clean surrogate, empties dropped,
    labels recomputed — everything the attacker can compute white-box) does
    the most damage.
    """
    config = config or GeneratorTrainConfig()
    session = _Session(generator, surrogate, executor, test_workload, config)
    start = time.perf_counter()
    snapshot_every = max(config.iterations // 6, 1)
    snapshots: list[dict[str, np.ndarray]] = []
    for iteration in range(config.iterations):
        view, _ = session.fresh_view()
        session.generator_step(view, steps=config.update_steps)
        if (iteration + 1) % snapshot_every == 0 or iteration == config.iterations - 1:
            snapshots.append(generator.state_dict())
    best_value, best_state = -np.inf, None
    for state in snapshots:
        generator.load_state_dict(state)
        # Average two rehearsal batches to de-noise the criterion, and
        # prefer later snapshots on (near-)ties: training sharpens queries
        # monotonically once it finds an attack mode.
        value = 0.5 * (
            session.simulate_attack_value(config.poison_batch, seed=config.seed + 9999)
            + session.simulate_attack_value(config.poison_batch, seed=config.seed + 5555)
        )
        if value >= best_value * 0.98:
            best_value, best_state = max(value, best_value), state
    if best_state is not None:
        generator.load_state_dict(best_state)
    session.result.wall_seconds = time.perf_counter() - start
    return session.result


def rehearsal_value(
    generator: PoisonQueryGenerator,
    surrogate: CardinalityEstimator,
    executor: Executor,
    test_workload: Workload,
    config: GeneratorTrainConfig,
    seed: int = 777,
) -> float:
    """Attacker-side value of a trained generator (see
    :meth:`_Session.simulate_attack_value`); used to compare restarts."""
    session = _Session(generator, surrogate, executor, test_workload, config)
    return session.simulate_attack_value(config.poison_batch, seed=seed)


def train_generator_basic(
    generator: PoisonQueryGenerator,
    surrogate: CardinalityEstimator,
    executor: Executor,
    test_workload: Workload,
    config: GeneratorTrainConfig | None = None,
) -> GeneratorTrainResult:
    """Fig. 5(a): alternate long phases (the ablation baseline).

    Each outer loop (``q`` = ``outer_loops``) first commits a full K-step
    poisoning of the surrogate with the *current* generator, starting from
    the clean parameters (the paper's step 3), then trains the generator
    for ``m`` = ``inner_steps`` steps treating that committed, now
    increasingly stale state as the unroll's starting point (the paper's
    step 2, "treat theta_P as constants"). The two variables synchronize
    only once per outer loop, so most generator updates chase a surrogate
    the current generator would no longer produce — the wasted work and
    misalignment the accelerated algorithm removes (Lemma 2).
    """
    config = config or GeneratorTrainConfig()
    session = _Session(generator, surrogate, executor, test_workload, config)
    start = time.perf_counter()
    for _outer in range(config.outer_loops):
        stale = session.commit_update(dict(session.clean_state), steps=config.update_steps)
        for _inner in range(config.inner_steps):
            view, _ = session.fresh_view(stale)
            session.generator_step(view, steps=config.update_steps)
    session.result.wall_seconds = time.perf_counter() - start
    return session.result
