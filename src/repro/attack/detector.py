"""VAE-based anomaly detector (Section 6 of the paper).

Trained unsupervised on *historical* query encodings with an MSE
reconstruction loss (Eq. 11-12); a query is abnormal when its
reconstruction error exceeds a threshold ``epsilon`` (the paper sweeps 5%
to 10% in Fig. 13). The detector serves two roles:

* defense: the DBMS can reject abnormal queries from the update stream
  (plug :meth:`is_abnormal` into ``DeployedEstimator.anomaly_filter``);
* adversary-in-the-loop: during generator training, the reconstruction
  loss of generated-and-flagged queries is backpropagated into the
  generator so poisoning queries stay distributionally close to history.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ce.deployment import Gate
from repro.nn.layers import Linear, ReLU, Sequential, Sigmoid, mlp
from repro.nn.losses import kl_standard_normal
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.utils.clock import get_clock
from repro.utils.errors import TrainingError
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class GateObservation:
    """One screening decision, stamped on the ambient injectable clock.

    ``at`` comes from :func:`repro.utils.clock.get_clock` — never from
    implicit wall time — so serve-sim runs replayed under a
    :class:`~repro.utils.clock.FakeClock` log bit-identical observation
    trails.
    """

    at: float
    total: int
    flagged: int


class DetectorGate(Gate):
    """The VAE detector as a first-class :class:`~repro.ce.deployment.Gate`.

    Screens update-stream queries through
    :meth:`VAEAnomalyDetector.is_abnormal` and records a clock-stamped
    :class:`GateObservation` per batch.
    """

    name = "vae-detector"

    def __init__(self, detector: "VAEAnomalyDetector", encoder) -> None:
        self._detector = detector
        self._encoder = encoder
        self.observations: list[GateObservation] = []

    def screen(self, queries) -> np.ndarray:
        mask = self._detector.is_abnormal(self._encoder.encode_many(queries))
        self.observations.append(
            GateObservation(at=get_clock()(), total=int(mask.size), flagged=int(mask.sum()))
        )
        return mask


class VAEAnomalyDetector(Module):
    """A small VAE over query encodings.

    Reconstruction at detection time is deterministic (decode the posterior
    mean), so thresholds are stable; sampling is only used while training.
    """

    def __init__(
        self,
        input_dim: int,
        latent_dim: int = 8,
        hidden_dim: int = 32,
        seed=0,
    ) -> None:
        super().__init__()
        rng = derive_rng(seed)
        self._sample_rng = derive_rng(int(rng.integers(2**31)))
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        self.encoder_net = Sequential(
            Linear(input_dim, hidden_dim, rng=rng), ReLU(),
            Linear(hidden_dim, hidden_dim, rng=rng), ReLU(),
        )
        self.mu_head = Linear(hidden_dim, latent_dim, rng=rng)
        self.logvar_head = Linear(hidden_dim, latent_dim, rng=rng)
        self.decoder_net = mlp(
            latent_dim, [hidden_dim, hidden_dim], input_dim, rng=rng,
            final_activation=Sigmoid(),
        )
        #: Abnormality threshold on per-query reconstruction MSE; set by
        #: :meth:`fit` / :meth:`set_threshold`.
        self.threshold = 0.05

    # ------------------------------------------------------------------
    # VAE plumbing
    # ------------------------------------------------------------------
    def encode(self, x: Tensor) -> tuple[Tensor, Tensor]:
        hidden = self.encoder_net(x)
        return self.mu_head(hidden), self.logvar_head(hidden)

    def reconstruct(self, x: Tensor, sample: bool = False) -> Tensor:
        """Decode ``x``; stochastic only when ``sample`` (training)."""
        mu, logvar = self.encode(x)
        if sample:
            noise = Tensor(self._sample_rng.standard_normal(mu.shape))
            z = mu + (logvar * 0.5).exp() * noise
        else:
            z = mu
        return self.decoder_net(z)

    def forward(self, x: Tensor) -> Tensor:
        return self.reconstruct(x, sample=self.training)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(
        self,
        encodings: np.ndarray,
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 1e-3,
        kl_weight: float = 1e-3,
        threshold_quantile: float = 0.95,
        seed=0,
    ) -> list[float]:
        """Train on historical encodings; calibrate the threshold.

        The threshold defaults to the ``threshold_quantile`` of the
        training reconstruction errors — i.e. ~5% of genuine historical
        queries would be flagged, mirroring the paper's 5% default epsilon.
        Returns per-epoch losses.
        """
        x_all = np.atleast_2d(np.asarray(encodings, dtype=np.float64))
        if x_all.shape[0] < 2:
            raise TrainingError("VAE training needs at least 2 historical queries")
        if x_all.shape[1] != self.input_dim:
            raise TrainingError(
                f"encoding width {x_all.shape[1]} != detector input {self.input_dim}"
            )
        rng = derive_rng(seed)
        optimizer = Adam(self.parameters(), lr=lr)
        n = x_all.shape[0]
        batch = min(batch_size, n)
        losses: list[float] = []
        self.train()
        for _epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss, steps = 0.0, 0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                x = Tensor(x_all[idx])
                mu, logvar = self.encode(x)
                noise = Tensor(self._sample_rng.standard_normal(mu.shape))
                z = mu + (logvar * 0.5).exp() * noise
                recon = self.decoder_net(z)
                diff = recon - x
                loss = (diff * diff).mean() + kl_standard_normal(mu, logvar) * kl_weight
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                steps += 1
            losses.append(epoch_loss / max(steps, 1))
        self.eval()
        train_errors = self.reconstruction_errors(x_all)
        self.threshold = float(np.quantile(train_errors, threshold_quantile))
        return losses

    def set_threshold(self, threshold: float) -> None:
        """Override the abnormality threshold (the Fig. 13 sweep knob)."""
        if threshold <= 0:
            raise TrainingError(f"threshold must be positive, got {threshold}")
        self.threshold = float(threshold)

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def reconstruction_errors(self, encodings: np.ndarray) -> np.ndarray:
        """Deterministic per-query reconstruction MSE (no gradients)."""
        x_all = np.atleast_2d(np.asarray(encodings, dtype=np.float64))
        with no_grad():
            recon = self.reconstruct(Tensor(x_all), sample=False)
        return ((recon.data - x_all) ** 2).mean(axis=1)

    def is_abnormal(self, encodings: np.ndarray) -> np.ndarray:
        """Boolean abnormality flags against the calibrated threshold."""
        return self.reconstruction_errors(encodings) > self.threshold

    def reconstruction_loss(self, x: Tensor) -> Tensor:
        """Differentiable per-batch reconstruction MSE.

        Gradients flow into *both* the detector and whatever produced
        ``x`` — the generator uses the latter to make its queries look
        normal (Section 6.2).
        """
        recon = self.reconstruct(x, sample=False)
        diff = recon - x
        return (diff * diff).mean()

    def abnormal_filter(self, encoder):
        """An ``anomaly_filter`` callable for ``DeployedEstimator``."""

        def fn(queries):
            return self.is_abnormal(encoder.encode_many(queries))

        return fn

    def as_gate(self, encoder) -> DetectorGate:
        """This detector as a first-class update-stream :class:`DetectorGate`."""
        return DetectorGate(self, encoder)
