"""Distribution divergence between poisoning and historical workloads.

The paper's "Divergence" metric is the Jensen-Shannon divergence between
the encodings of the poisoning queries and the historical queries
(Section 2.2). Encodings are continuous vectors, so we histogram each
dimension on a shared grid and average the per-dimension JS divergences.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import jensenshannon

from repro.utils.errors import ReproError


def js_divergence_1d(a: np.ndarray, b: np.ndarray, bins: int = 20) -> float:
    """JS divergence between two scalar samples on a shared histogram grid."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.size == 0 or b.size == 0:
        raise ReproError("JS divergence needs non-empty samples")
    lo = min(a.min(), b.min())
    hi = max(a.max(), b.max())
    if hi <= lo:
        return 0.0
    edges = np.linspace(lo, hi, bins + 1)
    pa, _ = np.histogram(a, bins=edges)
    pb, _ = np.histogram(b, bins=edges)
    # Laplace smoothing keeps the divergence finite on disjoint supports.
    pa = pa.astype(np.float64) + 1e-9
    pb = pb.astype(np.float64) + 1e-9
    distance = jensenshannon(pa / pa.sum(), pb / pb.sum(), base=2.0)
    return float(distance**2)  # scipy returns the JS *distance* (sqrt)


def workload_divergence(
    poison_encodings: np.ndarray, history_encodings: np.ndarray, bins: int = 20
) -> float:
    """Mean per-dimension JS divergence between two encoding matrices."""
    poison = np.atleast_2d(np.asarray(poison_encodings, dtype=np.float64))
    history = np.atleast_2d(np.asarray(history_encodings, dtype=np.float64))
    if poison.shape[1] != history.shape[1]:
        raise ReproError(
            f"encoding widths differ: {poison.shape[1]} vs {history.shape[1]}"
        )
    divergences = [
        js_divergence_1d(poison[:, d], history[:, d], bins=bins)
        for d in range(poison.shape[1])
    ]
    return float(np.mean(divergences))
