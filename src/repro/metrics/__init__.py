"""Evaluation metrics: Q-error summaries, JS divergence, table rendering."""

from repro.metrics.divergence import js_divergence_1d, workload_divergence
from repro.metrics.qerror import (
    PAPER_PERCENTILES,
    QErrorSummary,
    degradation_factor,
    q_errors,
)
from repro.metrics.report import format_value, print_table, render_table

__all__ = [
    "q_errors",
    "QErrorSummary",
    "degradation_factor",
    "PAPER_PERCENTILES",
    "js_divergence_1d",
    "workload_divergence",
    "render_table",
    "print_table",
    "format_value",
]
