"""Q-error statistics (mean / percentile summaries used by every table)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import ReproError

#: The percentile columns of the paper's Tables 3-4.
PAPER_PERCENTILES: tuple[float, ...] = (50.0, 90.0, 95.0, 99.0)


def q_errors(estimates: np.ndarray, truths: np.ndarray) -> np.ndarray:
    """Elementwise Q-error ``max(est/true, true/est)`` with floors at 1."""
    estimates = np.maximum(np.asarray(estimates, dtype=np.float64), 1e-9)
    truths = np.maximum(np.asarray(truths, dtype=np.float64), 1.0)
    if estimates.shape != truths.shape:
        raise ReproError(
            f"estimate/truth shape mismatch: {estimates.shape} vs {truths.shape}"
        )
    ratio = estimates / truths
    return np.maximum(ratio, 1.0 / ratio)


@dataclass(frozen=True)
class QErrorSummary:
    """Mean and percentile summary of a Q-error sample."""

    mean: float
    median: float
    p90: float
    p95: float
    p99: float
    max: float
    count: int

    @staticmethod
    def from_errors(errors: np.ndarray) -> "QErrorSummary":
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size == 0:
            raise ReproError("cannot summarize an empty q-error sample")
        p50, p90, p95, p99 = np.percentile(errors, PAPER_PERCENTILES)
        return QErrorSummary(
            mean=float(errors.mean()),
            median=float(p50),
            p90=float(p90),
            p95=float(p95),
            p99=float(p99),
            max=float(errors.max()),
            count=int(errors.size),
        )

    def as_row(self) -> dict[str, float]:
        """The paper's table columns (90th/95th/99th/max)."""
        return {"90th": self.p90, "95th": self.p95, "99th": self.p99, "max": self.max}

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.3g} p90={self.p90:.3g} p95={self.p95:.3g} "
            f"p99={self.p99:.3g} max={self.max:.3g} (n={self.count})"
        )


def degradation_factor(before: np.ndarray, after: np.ndarray) -> float:
    """How many times worse the mean Q-error became (the paper's "178x")."""
    before = np.asarray(before, dtype=np.float64)
    after = np.asarray(after, dtype=np.float64)
    if before.size == 0 or after.size == 0:
        raise ReproError("degradation factor needs non-empty samples")
    return float(after.mean() / max(before.mean(), 1e-12))
