"""Plain-text table rendering for the benchmark harnesses.

Every bench prints the same rows the paper's tables report; this module
keeps the formatting in one place so outputs are uniform and diffable.
"""

from __future__ import annotations

from typing import Sequence

from repro.utils.log import get_logger

_log = get_logger(__name__)


def format_value(value) -> str:
    """Compact numeric formatting matching the paper's tables."""
    if isinstance(value, str):
        return value
    if value is None:
        return "-"
    number = float(value)
    if number == 0:
        return "0"
    if abs(number) >= 10000:
        return f"{number:.3g}"
    if abs(number) >= 100:
        return f"{number:.1f}"
    if abs(number) >= 1:
        return f"{number:.3f}"
    return f"{number:.4f}"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers, rows, title=None) -> None:
    """Emit a rendered table through the logging layer (stdout by default)."""
    _log.info("%s\n", render_table(headers, rows, title=title))
