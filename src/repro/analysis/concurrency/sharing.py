"""Which classes can have instances *shared* across execution contexts?

R015 flags unguarded writes to shared mutable state. For instance
attributes that is only a race if the instance itself can be reached
from more than one context, so the rule needs a conservative closure of
"shareable" classes:

* classes instantiated at module level (singletons like ``PERF``);
* classes returned (directly, via locals, via helper calls, possibly
  inside tuples) from an ``lru_cache``/``cache``-decorated function —
  the memo keeps one instance alive across every caller;
* classes with a spawn/background-seeded entry point (``RetrainLoop``);
* transitively: classes passed into a shared class's constructor, and
  classes assigned onto attributes of shared instances (including via a
  parameter annotated with a shared class type).

Everything else — an ``Optimizer`` built inside ``train_model`` and
dropped on return — stays private, and its caches are not findings.

The closure also records, per class, the *mutable cache attributes*:
attributes initialized in ``__init__``/``__post_init__`` to a fresh
``dict``/``list``/``set``/``OrderedDict``/... (or declared as a
dataclass ``field(default_factory=...)``), with the init line — which is
where a ``# safe:`` annotation covering all writes to the attribute may
sit.
"""

from __future__ import annotations

import ast
import dataclasses
import weakref

from repro.analysis.concurrency.contexts import CONTEXT_MAIN, infer_contexts
from repro.analysis.flow.dataflow import collect_definitions
from repro.analysis.flow.program import ClassInfo, FunctionInfo, ModuleInfo, Program
from repro.analysis.walker import canonical_call_name

_MUTABLE_CTORS = frozenset({
    "dict", "list", "set",
    "collections.OrderedDict", "collections.defaultdict", "collections.deque",
    "collections.Counter", "OrderedDict", "defaultdict", "deque", "Counter",
})

_LRU_DECORATORS = frozenset({
    "functools.lru_cache", "functools.cache", "lru_cache", "cache",
})

_MAX_PASSES = 10


def is_mutable_initializer(module: ModuleInfo, expr: ast.expr | None) -> str | None:
    """Kind string if ``expr`` builds a fresh mutable container."""
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(expr, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, ast.Call):
        canonical = canonical_call_name(expr, module.aliases)
        if canonical in _MUTABLE_CTORS:
            return canonical.rsplit(".", 1)[-1]
    return None


def has_lru_decorator(module: ModuleInfo, fn: FunctionInfo) -> bool:
    for decorator in fn.node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = ast.unparse(target)
        head, _, rest = name.partition(".")
        canonical = f"{module.aliases.get(head, head)}.{rest}" if rest else \
            module.aliases.get(head, head)
        if canonical in _LRU_DECORATORS or name in _LRU_DECORATORS:
            return True
    return False


@dataclasses.dataclass
class AttrInit:
    """One mutable cache attribute of a class."""

    attr: str
    line: int
    kind: str  # dict / list / set / OrderedDict / field(default_factory=...)


class SharingModel:
    """Shared-class closure plus mutable-attribute inventory."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.shared: dict[str, str] = {}  # class qualname -> reason
        self.mutable_attrs: dict[str, dict[str, AttrInit]] = {}
        self._class_index: dict[str, ClassInfo] = {}
        self._returns: dict[str, set[str]] = {}  # fn qualname -> class qualnames
        for module in program.modules.values():
            for cls in module.classes.values():
                self._class_index[cls.qualname] = cls
        self._collect_mutable_attrs()
        self._solve_returned_classes()
        self._seed()
        self._close()

    # ------------------------------------------------------------------
    def is_shared(self, class_qualname: str) -> bool:
        return class_qualname in self.shared

    def reason(self, class_qualname: str) -> str:
        return self.shared.get(class_qualname, "")

    def attr_init(self, class_qualname: str, attr: str) -> AttrInit | None:
        return self.mutable_attrs.get(class_qualname, {}).get(attr)

    def shared_bare_names(self) -> set[str]:
        return {q.rsplit(".", 1)[-1] for q in self.shared}

    # ------------------------------------------------------------------
    def _collect_mutable_attrs(self) -> None:
        for module in self.program.modules.values():
            for cls in module.classes.values():
                attrs: dict[str, AttrInit] = {}
                # dataclass fields with a mutable default factory
                for node in cls.node.body:
                    if (
                        isinstance(node, ast.AnnAssign)
                        and isinstance(node.target, ast.Name)
                        and isinstance(node.value, ast.Call)
                    ):
                        callee = node.value.func
                        if isinstance(callee, ast.Name) and callee.id == "field":
                            for kw in node.value.keywords:
                                if kw.arg == "default_factory":
                                    attrs[node.target.id] = AttrInit(
                                        node.target.id, node.lineno,
                                        "field(default_factory=...)",
                                    )
                for method_name in ("__init__", "__post_init__"):
                    method = cls.methods.get(method_name)
                    if method is None:
                        continue
                    for sub in ast.walk(method.node):
                        value: ast.expr | None
                        if isinstance(sub, ast.Assign):
                            targets, value = sub.targets, sub.value
                        elif isinstance(sub, ast.AnnAssign):
                            targets, value = [sub.target], sub.value
                        else:
                            continue
                        kind = is_mutable_initializer(module, value)
                        if kind is None:
                            continue
                        for target in targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                attrs.setdefault(
                                    target.attr,
                                    AttrInit(target.attr, sub.lineno, kind),
                                )
                if attrs:
                    self.mutable_attrs[cls.qualname] = attrs

    # ------------------------------------------------------------------
    def _resolve_class(self, module: ModuleInfo, call: ast.Call) -> str | None:
        canonical = canonical_call_name(call, module.aliases)
        if canonical is None:
            return None
        for qualname in (canonical, f"{module.name}.{canonical}"):
            if qualname in self._class_index:
                return qualname
        return None

    def _classes_of_expr(
        self,
        module: ModuleInfo,
        scope: FunctionInfo | None,
        expr: ast.expr | None,
        depth: int = 0,
    ) -> set[str]:
        """Class qualnames an expression's value may be an instance of."""
        if expr is None or depth > 6:
            return set()
        if isinstance(expr, ast.Call):
            cls = self._resolve_class(module, expr)
            if cls is not None:
                return {cls}
            owner = scope.owner if scope is not None else None
            target = self.program.resolve_call(module, expr, cls=owner)
            if target is not None:
                return set(self._returns.get(target.qualname, ()))
            return set()
        if isinstance(expr, (ast.Tuple, ast.List)):
            out: set[str] = set()
            for element in expr.elts:
                out |= self._classes_of_expr(module, scope, element, depth + 1)
            return out
        if isinstance(expr, ast.Name) and scope is not None:
            out = set()
            for definition in collect_definitions(scope.node).get(expr.id, ()):
                if definition.value is not None:
                    out |= self._classes_of_expr(
                        module, scope, definition.value, depth + 1
                    )
                    continue
                # Tuple unpacking (`a, b = helper()`) binds the name to
                # None; recover the classes from the unpacked call.
                for node in ast.walk(scope.node):
                    if (
                        isinstance(node, ast.Assign)
                        and node.lineno == definition.line
                        and isinstance(node.value, ast.Call)
                        and any(
                            isinstance(t, (ast.Tuple, ast.List))
                            and any(
                                isinstance(e, ast.Name) and e.id == expr.id
                                for e in t.elts
                            )
                            for t in node.targets
                        )
                    ):
                        out |= self._classes_of_expr(
                            module, scope, node.value, depth + 1
                        )
            return out
        return set()

    def _solve_returned_classes(self) -> None:
        functions = self.program.functions
        for qualname in functions:
            self._returns[qualname] = set()
        for _ in range(8):
            changed = False
            for qualname, fn in functions.items():
                module = self.program.modules.get(fn.module)
                if module is None:
                    continue
                found: set[str] = set()
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Return) and node.value is not None:
                        found |= self._classes_of_expr(module, fn, node.value)
                if not found <= self._returns[qualname]:
                    self._returns[qualname] |= found
                    changed = True
            if not changed:
                break

    # ------------------------------------------------------------------
    def _seed(self) -> None:
        for module in self.program.modules.values():
            for node in module.tree.body:
                value: ast.expr | None = None
                label = ""
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    value = node.value
                    if node.targets and isinstance(node.targets[0], ast.Name):
                        label = node.targets[0].id
                elif isinstance(node, ast.AnnAssign) and isinstance(node.value, ast.Call):
                    value = node.value
                    if isinstance(node.target, ast.Name):
                        label = node.target.id
                if value is None:
                    continue
                cls = self._resolve_class(module, value)
                if cls is not None:
                    self.shared.setdefault(
                        cls, f"module-level singleton {label!r} in {module.name}"
                    )
            for fn in self.program.all_functions(module):
                if has_lru_decorator(module, fn):
                    for cls in self._returns.get(fn.qualname, ()):
                        self.shared.setdefault(
                            cls, f"memoized by lru_cache'd {fn.name!r}"
                        )
        contexts = infer_contexts(self.program)
        for seed in contexts.seeds:
            if seed.context == CONTEXT_MAIN:
                continue
            fn = self.program.functions.get(seed.qualname)
            if fn is not None and fn.owner is not None:
                qualname = f"{fn.module}.{fn.owner}"
                if qualname in self._class_index:
                    self.shared.setdefault(qualname, f"{seed.context} entry point")

    def _close(self) -> None:
        for _ in range(_MAX_PASSES):
            changed = False
            bare = self.shared_bare_names()
            for module in self.program.modules.values():
                for fn in self.program.all_functions(module):
                    changed |= self._expand_in_function(module, fn, bare)
                changed |= self._expand_module_level(module)
            if not changed:
                break

    def _expand_module_level(self, module: ModuleInfo) -> bool:
        changed = False
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for call in ast.walk(node):
                if isinstance(call, ast.Call):
                    changed |= self._expand_ctor_args(module, None, call)
        return changed

    def _expand_in_function(
        self, module: ModuleInfo, fn: FunctionInfo, shared_bare: set[str]
    ) -> bool:
        changed = False
        annotations = fn.param_annotations()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                changed |= self._expand_ctor_args(module, fn, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    root = target.value
                    if not isinstance(root, ast.Name):
                        continue
                    shared_root = False
                    if root.id == "self" and fn.owner is not None:
                        shared_root = self.is_shared(f"{module.name}.{fn.owner}")
                    else:
                        annotation = annotations.get(root.id, "")
                        shared_root = annotation != "" and any(
                            name in annotation for name in shared_bare
                        )
                    if not shared_root:
                        continue
                    for cls in self._classes_of_expr(module, fn, node.value):
                        if cls not in self.shared:
                            self.shared[cls] = (
                                f"stored on shared instance attribute "
                                f"{root.id}.{target.attr} in {fn.qualname}"
                            )
                            changed = True
        return changed

    def _expand_ctor_args(
        self, module: ModuleInfo, scope: FunctionInfo | None, call: ast.Call
    ) -> bool:
        cls = self._resolve_class(module, call)
        if cls is None or cls not in self.shared:
            return False
        changed = False
        exprs = list(call.args) + [kw.value for kw in call.keywords]
        for expr in exprs:
            for arg_cls in self._classes_of_expr(module, scope, expr):
                if arg_cls not in self.shared:
                    self.shared[arg_cls] = (
                        f"passed into shared {cls.rsplit('.', 1)[-1]} constructor"
                    )
                    changed = True
        return changed


_CACHE: "weakref.WeakKeyDictionary[Program, SharingModel]" = weakref.WeakKeyDictionary()


def sharing_model(program: Program) -> SharingModel:
    """The (memoized) shared-class closure for a program."""
    cached = _CACHE.get(program)
    if cached is None:
        cached = SharingModel(program)
        _CACHE[program] = cached
    return cached
