"""Execution-context inference: which contexts can reach each function?

Every function in the program is labeled with the set of *execution
contexts* it is reachable from:

* ``main`` — the driver process: public API entry points, module-level
  calls, and everything tests invoke;
* ``grid-worker`` — a spawned/forked worker process: functions handed to
  ``multiprocessing`` fan-out calls (``pool.map`` and friends), pool
  ``initializer=`` hooks, and ``Process(target=...)`` targets;
* ``retrain-loop`` — a background thread: ``Thread(target=...)`` targets
  and the retrain-loop entry points (``poll``/``flush``/``run``/``step``
  on classes named like ``RetrainLoop``), which ROADMAP item 1 moves off
  the serve thread.

Seeds propagate over the project call graph. The graph uses the precise
resolver from :class:`~repro.analysis.flow.program.Program` where it can,
and falls back to a *name-based over-approximation* for attribute calls
it cannot resolve (``scenario.run()`` links to every method named
``run``): for a safety analysis, an extra edge costs a reviewable false
positive, a missing edge costs a silent race. ``with`` statements whose
context manager is a resolved project call additionally link to the
``__enter__``/``__exit__`` methods defined in the callee's module, so
``with PERF.span(...)`` reaches ``_Span.__exit__``.

The pass also records every *process-boundary call site* it saw
(:class:`BoundaryCall`), which R013 consumes to type-check the payloads
crossing the pickle boundary.
"""

from __future__ import annotations

import ast
import dataclasses
import re
import weakref
from typing import Iterator

from repro.analysis.flow.program import ClassInfo, FunctionInfo, ModuleInfo, Program
from repro.analysis.walker import canonical_call_name, dotted_name

CONTEXT_MAIN = "main"
CONTEXT_WORKER = "grid-worker"
CONTEXT_BACKGROUND = "retrain-loop"

ALL_CONTEXTS = (CONTEXT_MAIN, CONTEXT_WORKER, CONTEXT_BACKGROUND)

#: Pool/executor methods whose first argument runs in another worker.
_FANOUT_METHODS = frozenset({
    "map", "imap", "imap_unordered", "starmap",
    "map_async", "starmap_async", "apply", "apply_async", "submit",
})

#: Fan-out methods where payload args start at position 1 (after the fn).
_STARRED_PAYLOAD = frozenset({"submit", "apply", "apply_async"})

_PROCESS_CTORS = frozenset({"multiprocessing.Process", "multiprocessing.process.Process"})
_THREAD_CTORS = frozenset({"threading.Thread", "threading.Timer"})

_BACKGROUND_CLASS_RE = re.compile(r"(RetrainLoop|BackgroundLoop|Daemon)")
_BACKGROUND_ENTRYPOINTS = frozenset({"poll", "flush", "run", "step", "tick"})


@dataclasses.dataclass(frozen=True)
class ContextSeed:
    """A function directly entered by some context, with why."""

    qualname: str
    context: str
    detail: str


@dataclasses.dataclass
class BoundaryCall:
    """One call site that hands work (and data) to another context."""

    module: ModuleInfo
    call: ast.Call
    kind: str  # pool-fanout | pool-init | process-target | thread-target
    context: str  # context the callee runs in
    crosses_process: bool  # payloads are pickled (False for threads)
    scope: FunctionInfo | None
    targets: list[FunctionInfo]
    #: expressions crossing the boundary, labeled for diagnostics
    payloads: list[tuple[str, ast.expr]]


class ContextMap:
    """Result of :func:`infer_contexts` for one :class:`Program`."""

    def __init__(self) -> None:
        self.contexts: dict[str, set[str]] = {}
        self.seeds: list[ContextSeed] = []
        self.boundary_calls: list[BoundaryCall] = []
        self.edges: dict[str, set[str]] = {}
        # (qualname, context) -> seed it was reached from
        self._origin: dict[tuple[str, str], ContextSeed] = {}

    def of(self, qualname: str) -> frozenset[str]:
        return frozenset(self.contexts.get(qualname, ()))

    def is_multi_context(self, qualname: str) -> bool:
        return len(self.contexts.get(qualname, ())) >= 2

    def reaches(self, qualname: str, context: str) -> bool:
        return context in self.contexts.get(qualname, ())

    def describe(self, qualname: str) -> str:
        """Human-readable context list with seed provenance."""
        parts = []
        for context in ALL_CONTEXTS:
            if context not in self.contexts.get(qualname, ()):
                continue
            origin = self._origin.get((qualname, context))
            if origin is None:
                parts.append(context)
            elif origin.qualname == qualname:
                parts.append(f"{context} ({origin.detail})")
            else:
                short = origin.qualname.rsplit(".", 1)[-1]
                parts.append(f"{context} (via {short}: {origin.detail})")
        return ", ".join(parts)


_CACHE: "weakref.WeakKeyDictionary[Program, ContextMap]" = weakref.WeakKeyDictionary()


def infer_contexts(program: Program) -> ContextMap:
    """Label every function with the execution contexts reaching it."""
    cached = _CACHE.get(program)
    if cached is not None:
        return cached
    cmap = ContextMap()
    methods = _methods_by_name(program)
    _collect_boundaries(program, cmap, methods)
    _collect_seeds(program, cmap)
    _build_edges(program, cmap, methods)
    _propagate(cmap)
    _CACHE[program] = cmap
    return cmap


# ----------------------------------------------------------------------
# boundary-call discovery
# ----------------------------------------------------------------------
def _methods_by_name(program: Program) -> dict[str, list[FunctionInfo]]:
    index: dict[str, list[FunctionInfo]] = {}
    for info in program.functions.values():
        if info.owner is not None:
            index.setdefault(info.name, []).append(info)
    return index


def _properties_by_name(program: Program) -> dict[str, list[FunctionInfo]]:
    """Methods behind ``@property``/``@cached_property`` — reached by
    attribute *loads*, which the call-edge walk would otherwise miss."""
    index: dict[str, list[FunctionInfo]] = {}
    for info in program.functions.values():
        if info.owner is None:
            continue
        for decorator in info.node.decorator_list:
            name = decorator.attr if isinstance(decorator, ast.Attribute) else (
                decorator.id if isinstance(decorator, ast.Name) else None
            )
            if name in {"property", "cached_property"}:
                index.setdefault(info.name, []).append(info)
                break
    return index


def resolve_func_refs(
    program: Program,
    module: ModuleInfo,
    expr: ast.expr,
    owner: str | None,
    methods: dict[str, list[FunctionInfo]] | None = None,
) -> list[FunctionInfo]:
    """Project functions an expression like ``f`` / ``self._work`` may name.

    Name-based fallback for unresolvable attributes returns *every* method
    with that name — an over-approximation, by design.
    """
    if isinstance(expr, ast.Name):
        local = module.functions.get(expr.id)
        if local is not None:
            return [local]
        alias = module.aliases.get(expr.id)
        if alias is not None:
            found = program.functions.get(alias)
            if found is not None:
                return [found]
        return []
    if isinstance(expr, ast.Attribute):
        dotted = dotted_name(expr)
        if dotted is not None:
            if dotted.startswith("self.") and owner is not None:
                method = dotted[len("self."):]
                if "." not in method:
                    found = program.functions.get(f"{module.name}.{owner}.{method}")
                    if found is not None:
                        return [found]
            head, _, rest = dotted.partition(".")
            canonical = f"{module.aliases.get(head, head)}.{rest}" if rest else head
            for qualname in (canonical, f"{module.name}.{dotted}"):
                found = program.functions.get(qualname)
                if found is not None:
                    return [found]
        if methods is not None and not expr.attr.startswith("__"):
            return list(methods.get(expr.attr, ()))
    return []


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _elements(expr: ast.expr | None) -> list[ast.expr]:
    if isinstance(expr, (ast.Tuple, ast.List)):
        return list(expr.elts)
    return [expr] if expr is not None else []


def _classify_boundary(
    module: ModuleInfo, call: ast.Call
) -> tuple[str, str, bool] | None:
    """``(kind, context, crosses_process)`` if this call spawns work."""
    canonical = canonical_call_name(call, module.aliases)
    attr = call.func.attr if isinstance(call.func, ast.Attribute) else None
    if attr in _FANOUT_METHODS:
        return ("pool-fanout", CONTEXT_WORKER, True)
    if attr == "Pool" or (canonical is not None and canonical.split(".")[-1] == "Pool"):
        if _keyword(call, "initializer") is not None:
            return ("pool-init", CONTEXT_WORKER, True)
        return None
    if attr == "Process" or canonical in _PROCESS_CTORS:
        return ("process-target", CONTEXT_WORKER, True)
    if attr in {"Thread", "Timer"} or canonical in _THREAD_CTORS:
        return ("thread-target", CONTEXT_BACKGROUND, False)
    return None


def _collect_boundaries(
    program: Program, cmap: ContextMap, methods: dict[str, list[FunctionInfo]]
) -> None:
    for name in sorted(program.modules):
        module = program.modules[name]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            classified = _classify_boundary(module, node)
            if classified is None:
                continue
            kind, context, crosses = classified
            scope = program.enclosing_function(module, node.lineno)
            owner = scope.owner if scope is not None else None
            fn_expr, payloads = _boundary_payloads(kind, node)
            if kind == "pool-fanout" and fn_expr is None:
                continue  # pool.map() with no args: not a spawn site
            targets: list[FunctionInfo] = []
            if fn_expr is not None:
                targets = resolve_func_refs(program, module, fn_expr, owner, methods)
                if kind == "pool-fanout" and not targets and not isinstance(
                    fn_expr, (ast.Lambda, ast.Name, ast.Attribute)
                ):
                    continue  # e.g. dict.get(...) results: not provably a fan-out
            boundary = BoundaryCall(
                module=module,
                call=node,
                kind=kind,
                context=context,
                crosses_process=crosses,
                scope=scope,
                targets=targets,
                payloads=payloads,
            )
            cmap.boundary_calls.append(boundary)
            where = f"{module.display_path}:{node.lineno}"
            for target in targets:
                cmap.seeds.append(
                    ContextSeed(target.qualname, context, f"{kind} target at {where}")
                )


def _boundary_payloads(
    kind: str, call: ast.Call
) -> tuple[ast.expr | None, list[tuple[str, ast.expr]]]:
    """The function expression and the data expressions crossing over."""
    payloads: list[tuple[str, ast.expr]] = []
    if kind == "pool-fanout":
        if not call.args:
            return None, payloads
        fn_expr = call.args[0]
        payloads.append(("function argument", fn_expr))
        attr = call.func.attr if isinstance(call.func, ast.Attribute) else ""
        if attr in _STARRED_PAYLOAD:
            rest = call.args[1:]
        else:
            rest = call.args[1:2]  # map-style: the iterable of jobs
        for expr in rest:
            payloads.append(("payload argument", expr))
        for label, expr in (("args", _keyword(call, "args")),
                            ("kwds", _keyword(call, "kwds"))):
            for element in _elements(expr):
                payloads.append((f"{label} element", element))
        return fn_expr, payloads
    if kind == "pool-init":
        fn_expr = _keyword(call, "initializer")
        if fn_expr is not None:
            payloads.append(("initializer", fn_expr))
        for element in _elements(_keyword(call, "initargs")):
            payloads.append(("initargs element", element))
        return fn_expr, payloads
    # process-target / thread-target
    fn_expr = _keyword(call, "target")
    if fn_expr is not None:
        payloads.append(("target", fn_expr))
    for element in _elements(_keyword(call, "args")):
        payloads.append(("args element", element))
    kwargs = _keyword(call, "kwargs")
    if isinstance(kwargs, ast.Dict):
        for value in kwargs.values:
            payloads.append(("kwargs value", value))
    return fn_expr, payloads


# ----------------------------------------------------------------------
# seeds and call-graph edges
# ----------------------------------------------------------------------
def _collect_seeds(program: Program, cmap: ContextMap) -> None:
    spawn_seeded = {s.qualname for s in cmap.seeds if s.context != CONTEXT_MAIN}
    for name in sorted(program.modules):
        module = program.modules[name]
        # Background entry points: the retrain loop runs off-thread.
        for cls in module.classes.values():
            if not _BACKGROUND_CLASS_RE.search(cls.name):
                continue
            for method in cls.methods.values():
                if method.name in _BACKGROUND_ENTRYPOINTS:
                    cmap.seeds.append(ContextSeed(
                        method.qualname,
                        CONTEXT_BACKGROUND,
                        f"background entry point {cls.name}.{method.name}",
                    ))
        # Main: public API of target modules, everything tests define,
        # and module-level (import-time) calls.
        for fn in program.all_functions(module):
            if fn.qualname in spawn_seeded:
                continue
            if not module.is_target:
                cmap.seeds.append(
                    ContextSeed(fn.qualname, CONTEXT_MAIN, "reference/test code")
                )
            elif fn.is_public:
                cmap.seeds.append(
                    ContextSeed(fn.qualname, CONTEXT_MAIN, "public entry point")
                )
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for call in ast.walk(node):
                if isinstance(call, ast.Call):
                    target = program.resolve_call(module, call)
                    if target is not None:
                        cmap.seeds.append(ContextSeed(
                            target.qualname,
                            CONTEXT_MAIN,
                            f"called at import time ({module.display_path}:{call.lineno})",
                        ))


def _class_init_targets(
    program: Program, module: ModuleInfo, call: ast.Call
) -> list[FunctionInfo]:
    """Edges for ``SomeClass(...)``: the constructor runs ``__init__``."""
    canonical = canonical_call_name(call, module.aliases)
    if canonical is None:
        return []
    out = []
    for qualname in (canonical, f"{module.name}.{canonical}"):
        mod_name, _, cls_name = qualname.rpartition(".")
        owner_module = program.modules.get(mod_name)
        if owner_module is None:
            continue
        cls = owner_module.classes.get(cls_name)
        if cls is None:
            continue
        for dunder in ("__init__", "__post_init__"):
            if dunder in cls.methods:
                out.append(cls.methods[dunder])
        break
    return out


def _singleton_method(
    program: Program, module: ModuleInfo, receiver_id: str, attr: str
) -> FunctionInfo | None:
    """``PERF.record(...)`` where ``PERF`` was imported from a project
    module and is bound at module level to ``SomeClass(...)``: resolve
    to that class's method instead of the name-based over-approximation.
    """
    alias = module.aliases.get(receiver_id)
    if not alias or "." not in alias:
        return None
    mod_name, _, bound = alias.rpartition(".")
    other = program.modules.get(mod_name)
    if other is None:
        return None
    for stmt in other.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        else:
            continue
        if not (isinstance(target, ast.Name) and target.id == bound):
            continue
        if isinstance(value, ast.Call) and isinstance(
            value.func, (ast.Name, ast.Attribute)
        ):
            ctor = (
                value.func.id
                if isinstance(value.func, ast.Name)
                else value.func.attr
            )
            cls = _resolve_class_name(program, other, ctor)
            if cls is not None:
                return cls.methods.get(attr)
    return None


def _resolve_class_name(
    program: Program, module: ModuleInfo, name: str
) -> ClassInfo | None:
    """A bare class name, in this module or through an import alias."""
    cls = module.classes.get(name)
    if cls is not None:
        return cls
    alias = module.aliases.get(name)
    if alias and "." in alias:
        mod_name, _, bound = alias.rpartition(".")
        other = program.modules.get(mod_name)
        if other is not None:
            return other.classes.get(bound)
    return None


def _super_targets(
    program: Program, module: ModuleInfo, owner: str, method_name: str
) -> list[FunctionInfo]:
    """Edges for ``super().method_name(...)`` inside a method of ``owner``:
    every base-chain class defining the method (over-approximate MRO)."""
    out: list[FunctionInfo] = []
    start = module.classes.get(owner)
    if start is None:
        return out
    queue = [(module, start)]
    seen = {start.qualname}
    while queue:
        mod, cls = queue.pop()
        for base in cls.node.bases:
            if isinstance(base, ast.Attribute):
                base_name = base.attr
            elif isinstance(base, ast.Name):
                base_name = base.id
            else:
                continue
            target = _resolve_class_name(program, mod, base_name)
            if target is None or target.qualname in seen:
                continue
            seen.add(target.qualname)
            if method_name in target.methods:
                out.append(target.methods[method_name])
            owner_module = program.modules.get(target.module)
            if owner_module is not None:
                queue.append((owner_module, target))
    return out


def _registry_callables(program: Program) -> dict[tuple[str, str], frozenset[str]]:
    """Callables escaping into module-level containers, per binding.

    ``_BUILDERS = {"dmv": (make_dmv, ...)}`` and
    ``MODEL_REGISTRY = {cls.model_type: cls for cls in (FCN, ...)}`` are
    dispatch tables: a later ``_BUILDERS[name]`` subscript calls one of
    the escaped values. Maps ``(module, binding)`` to the qualnames a
    call through that binding may reach (functions directly; classes via
    their ``__init__``/``__post_init__``).
    """
    out: dict[tuple[str, str], frozenset[str]] = {}
    for name in sorted(program.modules):
        module = program.modules[name]
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not any(
                isinstance(sub, (ast.Dict, ast.DictComp, ast.List, ast.Tuple, ast.Set))
                for sub in ast.walk(value)
            ):
                continue
            reached: set[str] = set()
            for sub in ast.walk(value):
                if isinstance(sub, ast.Attribute) and isinstance(sub.value, ast.Name):
                    # init.xavier_uniform inside a dispatch dict.
                    alias = module.aliases.get(sub.value.id)
                    other = program.modules.get(alias) if alias else None
                    if other is not None:
                        target = other.functions.get(sub.attr)
                        if target is not None:
                            reached.add(target.qualname)
                    continue
                if not isinstance(sub, ast.Name):
                    continue
                fn = module.functions.get(sub.id)
                if fn is None:
                    alias = module.aliases.get(sub.id)
                    if alias and "." in alias:
                        mod_name, _, bound = alias.rpartition(".")
                        other = program.modules.get(mod_name)
                        if other is not None:
                            fn = other.functions.get(bound)
                if fn is not None:
                    reached.add(fn.qualname)
                    continue
                cls = _resolve_class_name(program, module, sub.id)
                if cls is not None:
                    for dunder in ("__init__", "__post_init__"):
                        if dunder in cls.methods:
                            reached.add(cls.methods[dunder].qualname)
            if not reached:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    out[(module.name, target.id)] = frozenset(reached)
    return out


def _registry_of_subscript(
    module: ModuleInfo,
    expr: ast.expr,
    registries: dict[tuple[str, str], frozenset[str]],
) -> frozenset[str] | None:
    """The dispatch-table entries ``expr`` (``TABLE[key]`` or
    ``TABLE.get(key)``) may produce, or None when it is not a known
    dispatch table."""
    if isinstance(expr, ast.Subscript):
        base = expr.value
    elif (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "get"
    ):
        base = expr.func.value
    else:
        return None
    if isinstance(base, ast.Name):
        direct = registries.get((module.name, base.id))
        if direct is not None:
            return direct
        alias = module.aliases.get(base.id)
        if alias and "." in alias:
            mod_name, _, bound = alias.rpartition(".")
            return registries.get((mod_name, bound))
    if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
        alias = module.aliases.get(base.value.id)
        if alias is not None:
            return registries.get((alias, base.attr))
    return None


#: Operator syntax -> the dunder(s) it may dispatch to on project classes.
_OPERATOR_DUNDERS: dict[type, tuple[str, ...]] = {
    ast.Add: ("__add__", "__radd__"),
    ast.Sub: ("__sub__", "__rsub__"),
    ast.Mult: ("__mul__", "__rmul__"),
    ast.Div: ("__truediv__", "__rtruediv__"),
    ast.FloorDiv: ("__floordiv__",),
    ast.Mod: ("__mod__",),
    ast.Pow: ("__pow__", "__rpow__"),
    ast.MatMult: ("__matmul__", "__rmatmul__"),
    ast.USub: ("__neg__",),
}


def _dunder_names(fn_node: ast.AST) -> set[str]:
    """Dunders the syntax inside ``fn_node`` may dispatch to."""
    wanted: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.BinOp):
            wanted.update(_OPERATOR_DUNDERS.get(type(node.op), ()))
        elif isinstance(node, ast.UnaryOp):
            wanted.update(_OPERATOR_DUNDERS.get(type(node.op), ()))
        elif isinstance(node, ast.Attribute):
            if isinstance(node.ctx, ast.Store):
                wanted.add("__setattr__")
            elif isinstance(node.ctx, ast.Load):
                wanted.add("__getattr__")
        elif isinstance(node, ast.Subscript):
            wanted.add(
                "__setitem__" if isinstance(node.ctx, ast.Store) else "__getitem__"
            )
        elif isinstance(node, (ast.For, ast.comprehension)):
            wanted.update(("__iter__", "__next__"))
        elif isinstance(node, ast.Call) and not isinstance(
            node.func, (ast.Attribute,)
        ):
            # Calls through arbitrary expressions (a held callable, an
            # instance) may land in any project __call__.
            wanted.add("__call__")
    return wanted


def _build_edges(
    program: Program, cmap: ContextMap, methods: dict[str, list[FunctionInfo]]
) -> None:
    properties = _properties_by_name(program)
    registries = _registry_callables(program)
    dunder_index: dict[str, list[FunctionInfo]] = {}
    for info in program.functions.values():
        if info.owner is not None and info.name.startswith("__"):
            dunder_index.setdefault(info.name, []).append(info)
    for name in sorted(program.modules):
        module = program.modules[name]
        for fn in program.all_functions(module):
            edges = cmap.edges.setdefault(fn.qualname, set())
            # Locals bound from a dispatch-table subscript: a later call
            # through the name reaches any of the table's escaped values.
            dispatch_locals: dict[str, frozenset[str]] = {}
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign):
                    reached = _registry_of_subscript(module, node.value, registries)
                    if reached is None:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            dispatch_locals[target.id] = reached
                        elif isinstance(target, (ast.Tuple, ast.List)):
                            # builder, _ = TABLE[key] — over-approximate:
                            # any unpacked name may be the callable.
                            for element in target.elts:
                                if isinstance(element, ast.Name):
                                    dispatch_locals[element.id] = reached
            for dunder in _dunder_names(fn.node):
                for target in dunder_index.get(dunder, ()):
                    if target.qualname != fn.qualname:
                        edges.add(target.qualname)
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Attribute) and node.attr in properties:
                    for prop in properties[node.attr]:
                        if prop.qualname != fn.qualname:
                            edges.add(prop.qualname)
            with_items = {
                id(item.context_expr)
                for node in ast.walk(fn.node)
                if isinstance(node, (ast.With, ast.AsyncWith))
                for item in node.items
            }
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callees: list[FunctionInfo] = []
                precise = program.resolve_call(module, node, cls=fn.owner)
                if precise is not None:
                    callees.append(precise)
                else:
                    callees.extend(_class_init_targets(program, module, node))
                if not callees and isinstance(node.func, ast.Name):
                    reached = dispatch_locals.get(node.func.id)
                    if reached is not None:
                        edges.update(reached)
                if not callees:
                    # TABLE[key](...) without the intermediate binding.
                    reached = _registry_of_subscript(module, node.func, registries)
                    if reached is not None:
                        edges.update(reached)
                if (
                    not callees
                    and fn.owner is not None
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Call)
                    and isinstance(node.func.value.func, ast.Name)
                    and node.func.value.func.id == "super"
                ):
                    callees.extend(
                        _super_targets(program, module, fn.owner, node.func.attr)
                    )
                if not callees and isinstance(node.func, ast.Attribute):
                    # Name-based fallback, except through import aliases
                    # (np.mean, os.path.join — the precise resolver
                    # already had its chance on those).
                    receiver = node.func.value
                    via_alias = (
                        isinstance(receiver, ast.Name) and receiver.id in module.aliases
                    )
                    if via_alias:
                        found = _singleton_method(
                            program, module, receiver.id, node.func.attr
                        )
                        if found is not None:
                            callees.append(found)
                    elif not node.func.attr.startswith("__"):
                        callees.extend(methods.get(node.func.attr, ()))
                for callee in callees:
                    edges.add(callee.qualname)
                # `with helper(...)` also runs the manager's dunders.
                if id(node) in with_items and callees:
                    for callee in callees:
                        owner_module = program.modules.get(callee.module)
                        if owner_module is None:
                            continue
                        for cls in owner_module.classes.values():
                            for dunder in ("__enter__", "__exit__"):
                                if dunder in cls.methods:
                                    edges.add(cls.methods[dunder].qualname)


def _propagate(cmap: ContextMap) -> None:
    for seed in cmap.seeds:
        context = seed.context
        if context in cmap.contexts.setdefault(seed.qualname, set()):
            continue
        stack = [seed.qualname]
        cmap.contexts[seed.qualname].add(context)
        cmap._origin.setdefault((seed.qualname, context), seed)
        while stack:
            current = stack.pop()
            for callee in cmap.edges.get(current, ()):
                have = cmap.contexts.setdefault(callee, set())
                if context not in have:
                    have.add(context)
                    cmap._origin.setdefault((callee, context), seed)
                    stack.append(callee)


def iter_process_boundaries(program: Program) -> Iterator[BoundaryCall]:
    """Boundary calls whose payloads are pickled (process, not thread)."""
    for boundary in infer_contexts(program).boundary_calls:
        if boundary.crosses_process:
            yield boundary
