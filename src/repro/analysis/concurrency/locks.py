"""Lock identification and held-set analysis for R014/R015.

A *lock key* names a lock object the analysis can track across call
sites:

* ``("global", module, name)`` — a module-level ``LOCK = threading.Lock()``;
* ``("attr", class_qualname, attr)`` — ``self._lock = threading.Lock()``
  assigned in any method of the class;
* ``("local", fn_qualname, name)`` — a lock constructed in a local.

Acquisition is tracked through ``with lock:`` statements (including
multi-item ``with a, b:``, which yields an ``a -> b`` order edge). Bare
``.acquire()``/``.release()`` pairs are not scope-tracked — the repo
style is ``with``; fixtures that need a deadlock demonstrate it with
``with`` blocks.

:func:`walk_function` computes, per function: the locks it acquires, the
acquisition-order edges observed inside it, every call made while a lock
is held, and the set of source lines executed under at least one lock
(which is how R015 decides whether a shared-state write is guarded).
:func:`acquired_transitively` closes acquisition over the project call
graph so ``A -> helper() -> with B:`` still yields the ``A -> B`` edge.
"""

from __future__ import annotations

import ast
import dataclasses
import weakref

from repro.analysis.concurrency.contexts import infer_contexts
from repro.analysis.flow.dataflow import collect_definitions
from repro.analysis.flow.program import FunctionInfo, ModuleInfo, Program
from repro.analysis.walker import canonical_call_name, dotted_name

#: Lock key: (kind, scope, name) — see module docstring.
LockKey = tuple[str, str, str]

_LOCK_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "multiprocessing.Lock", "multiprocessing.RLock",
})


def is_lock_constructor(module: ModuleInfo, expr: ast.expr | None) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    canonical = canonical_call_name(expr, module.aliases)
    return canonical in _LOCK_CTORS


def describe_lock(key: LockKey) -> str:
    kind, scope, name = key
    short = scope.rsplit(".", 1)[-1]
    if kind == "global":
        return f"{short}.{name}"
    if kind == "attr":
        return f"{short}.{name}"
    return name


@dataclasses.dataclass
class FunctionLockInfo:
    """What one function does with locks."""

    acquired: set[LockKey] = dataclasses.field(default_factory=set)
    #: ``(held, inner, node)`` — ``inner`` acquired while ``held`` was held
    order_edges: list[tuple[LockKey, LockKey, ast.AST]] = dataclasses.field(
        default_factory=list
    )
    #: every call made while at least one lock was held
    calls_under_lock: list[tuple[frozenset[LockKey], ast.Call]] = dataclasses.field(
        default_factory=list
    )
    #: source lines executed while at least one lock was held
    locked_lines: set[int] = dataclasses.field(default_factory=set)

    def is_locked(self, line: int) -> bool:
        return line in self.locked_lines


class LockIndex:
    """All module-global and instance-attribute locks in a program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.module_locks: set[tuple[str, str]] = set()
        self.attr_locks: set[tuple[str, str]] = set()
        self._defs_cache: dict[int, dict] = {}
        for name in sorted(program.modules):
            module = program.modules[name]
            for node in module.tree.body:
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign):
                    targets, value = [node.target], node.value
                if is_lock_constructor(module, value):
                    for target in targets:
                        if isinstance(target, ast.Name):
                            self.module_locks.add((module.name, target.id))
            for cls in module.classes.values():
                for method in cls.methods.values():
                    for sub in ast.walk(method.node):
                        if not isinstance(sub, ast.Assign):
                            continue
                        if not is_lock_constructor(module, sub.value):
                            continue
                        for target in sub.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                self.attr_locks.add((cls.qualname, target.attr))

    # ------------------------------------------------------------------
    def resolve(
        self, module: ModuleInfo, scope: FunctionInfo | None, expr: ast.expr
    ) -> LockKey | None:
        """The lock key ``expr`` names at an acquisition site, if any."""
        if isinstance(expr, ast.Name):
            if (module.name, expr.id) in self.module_locks:
                return ("global", module.name, expr.id)
            alias = module.aliases.get(expr.id)
            if alias is not None and "." in alias:
                mod, _, name = alias.rpartition(".")
                if (mod, name) in self.module_locks:
                    return ("global", mod, name)
            if scope is not None:
                for definition in self._definitions(scope).get(expr.id, ()):
                    if is_lock_constructor(module, definition.value):
                        return ("local", scope.qualname, expr.id)
            return None
        if isinstance(expr, ast.Attribute):
            dotted = dotted_name(expr)
            if dotted is None:
                return None
            if (
                dotted.startswith("self.")
                and dotted.count(".") == 1
                and scope is not None
                and scope.owner is not None
            ):
                key = (f"{module.name}.{scope.owner}", expr.attr)
                if key in self.attr_locks:
                    return ("attr", *key)
                return None
            head, _, rest = dotted.partition(".")
            resolved = module.aliases.get(head, head)
            mod, _, name = f"{resolved}.{rest}".rpartition(".")
            if (mod, name) in self.module_locks:
                return ("global", mod, name)
        return None

    def _definitions(self, scope: FunctionInfo) -> dict:
        cached = self._defs_cache.get(id(scope.node))
        if cached is None:
            cached = collect_definitions(scope.node)
            self._defs_cache[id(scope.node)] = cached
        return cached


def walk_function(
    index: LockIndex, module: ModuleInfo, fn: FunctionInfo
) -> FunctionLockInfo:
    """Held-set walk over one function body."""
    info = FunctionLockInfo()

    def visit(node: ast.AST, held: list[LockKey]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            added = 0
            for item in node.items:
                visit(item.context_expr, held)  # calls in the expr run first
                key = index.resolve(module, fn, item.context_expr)
                if key is not None:
                    for outer in held:
                        info.order_edges.append((outer, key, item.context_expr))
                    info.acquired.add(key)
                    held.append(key)
                    added += 1
            if held:
                end = node.end_lineno or node.lineno
                info.locked_lines.update(range(node.lineno, end + 1))
            for child in node.body:
                visit(child, held)
            for _ in range(added):
                held.pop()
            return
        if isinstance(node, ast.Call) and held:
            info.calls_under_lock.append((frozenset(held), node))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    visit_children_of = fn.node
    for child in visit_children_of.body:
        visit(child, [])
    return info


class LockModel:
    """Per-program lock analysis: index + per-function walks + closure."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.index = LockIndex(program)
        self.infos: dict[str, FunctionLockInfo] = {}
        for name in sorted(program.modules):
            module = program.modules[name]
            for fn in program.all_functions(module):
                self.infos[fn.qualname] = walk_function(self.index, module, fn)
        self.transitive = self._close_over_calls()

    def _close_over_calls(self) -> dict[str, set[LockKey]]:
        """Locks a call to each function may acquire, transitively."""
        edges = infer_contexts(self.program).edges
        acquired = {q: set(info.acquired) for q, info in self.infos.items()}
        # The lattice only grows and lock nesting is shallow; a few
        # passes over the call graph reach the fixpoint.
        for _ in range(12):
            changed = False
            for qualname, callees in edges.items():
                mine = acquired.setdefault(qualname, set())
                before = len(mine)
                for callee in callees:
                    mine |= acquired.get(callee, set())
                changed = changed or len(mine) != before
            if not changed:
                break
        return acquired

    def info(self, qualname: str) -> FunctionLockInfo:
        return self.infos.get(qualname) or FunctionLockInfo()

    def is_locked(self, fn: FunctionInfo | None, line: int) -> bool:
        if fn is None:
            return False
        return self.info(fn.qualname).is_locked(line)


_CACHE: "weakref.WeakKeyDictionary[Program, LockModel]" = weakref.WeakKeyDictionary()


def lock_model(program: Program) -> LockModel:
    """The (memoized) lock analysis for a program."""
    cached = _CACHE.get(program)
    if cached is None:
        cached = LockModel(program)
        _CACHE[program] = cached
    return cached
