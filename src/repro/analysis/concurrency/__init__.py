"""Concurrency-safety analysis: process/thread-context inference + R013-R016.

ROADMAP item 1 (the sharded serve cluster) moves the system from one
process to many, and the codebase is full of process-global singletons —
the ``PERF`` registry, the injectable clock, per-scenario memo caches —
that are safe today only because nothing mutable crosses the spawn
boundary. This package proves that statically, the same way R007-R012
prove RNG seeding and serve-loop non-blocking discipline:

* :mod:`~repro.analysis.concurrency.contexts` labels every function with
  the execution contexts it is reachable from (``main``, ``grid-worker``,
  ``retrain-loop``), seeded from ``multiprocessing`` fan-out calls,
  ``Thread(target=...)`` sites, and the ``RetrainLoop`` entry points;
* :mod:`~repro.analysis.concurrency.sharing` computes which classes can
  have instances shared across those contexts (module-level singletons,
  ``lru_cache``-memoized object graphs, boundary-seeded classes);
* :mod:`~repro.analysis.concurrency.locks` identifies lock objects and
  computes, for every statement, the set of locks held around it;
* :mod:`~repro.analysis.concurrency.safe` parses the structured
  ``# safe: R015 <reason>`` suppression and verifies every annotation is
  load-bearing (suppresses at least one real finding);
* the four flow rules — R013 spawn-unsafe-argument, R014 lock-order
  cycle / lock-held-across-blocking-call, R015 cross-context mutable
  global, R016 fork-captured singleton — live in ``r013_*.py`` ..
  ``r016_*.py`` and register into the shared flow-rule registry;
* :mod:`~repro.analysis.concurrency.smoke` is the dynamic cross-check:
  it spawns a real 2-worker grid under a module-global write tracer and
  asserts every observed cross-process mutation site was statically
  labeled (flagged or ``# safe:``-annotated).

This ``__init__`` deliberately imports nothing: the rule modules import
the flow engine, and the engine imports :mod:`.safe` — keeping the
package root empty breaks the cycle.
"""
