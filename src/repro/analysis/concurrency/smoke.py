"""Dynamic cross-check of the static process-context labels.

The context pass (:mod:`repro.analysis.concurrency.contexts`) claims to
know every function a grid worker can reach. This smoke *measures* that
claim instead of trusting it: it spawns a real 2-worker grid — the same
``Pool``/``_run_grid_job`` shape :func:`repro.harness.experiments.run_grid`
uses — with a ``sys.settrace`` write-tracing hook installed in every
worker, records each write-shaped statement (global rebind, subscript or
attribute store, container-mutator call) that actually executes in a
worker process, and then asserts that every observed mutation site sits
inside a function the static pass labeled as worker-reachable.

A site the tracer saw but the labeling missed means the static call
graph has a hole — exactly the failure mode that would make R013–R016
silently under-report — so the smoke fails the analysis with the
unlabeled ``path:line`` sites by name.
"""

from __future__ import annotations

import ast
import dataclasses
import os
import sys

from repro.analysis.concurrency.contexts import CONTEXT_WORKER, infer_contexts
from repro.analysis.flow.program import Program, build_program

#: Container methods the tracer's static site map treats as writes —
#: mirrors R015's mutator taxonomy.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "move_to_end", "appendleft",
    "cache_clear",
})


@dataclasses.dataclass(frozen=True)
class TraceSmokeResult:
    """Outcome of the dynamic context-label cross-check."""

    passed: bool
    observed: int  # distinct write sites seen executing in workers
    labeled: int  # of those, statically labeled worker-reachable
    workers: int
    unlabeled: tuple = ()  # ("path:line", ...) sites the labeling missed
    detail: str = ""

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


# ----------------------------------------------------------------------
# static side: every write-shaped line, and which are worker-labeled
# ----------------------------------------------------------------------
def _write_nodes(fn_node: ast.AST):
    """Write-shaped statements under ``fn_node`` (over-approximate)."""
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            yield node
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATOR_METHODS
        ):
            yield node


def _site_maps(program: Program) -> tuple[dict[str, frozenset[int]], dict[str, set[int]]]:
    """``(all write lines, worker-labeled write lines)`` per absolute path.

    A line counts as labeled when *any* enclosing function reaches the
    worker context — nested defs execute inside their parent's span.
    """
    contexts = infer_contexts(program)
    all_lines: dict[str, set[int]] = {}
    labeled: dict[str, set[int]] = {}
    for module in program.target_modules():
        path = str(module.path.resolve())
        for fn in program.all_functions(module):
            reaches_worker = CONTEXT_WORKER in contexts.of(fn.qualname)
            for node in _write_nodes(fn.node):
                span = range(node.lineno, (node.end_lineno or node.lineno) + 1)
                all_lines.setdefault(path, set()).update(span)
                if reaches_worker:
                    labeled.setdefault(path, set()).update(span)
    frozen = {path: frozenset(lines) for path, lines in all_lines.items()}
    return frozen, labeled


# ----------------------------------------------------------------------
# dynamic side: the per-worker write tracer
# ----------------------------------------------------------------------
_TRACE_LINES: dict[str, frozenset[int]] = {}
_OBSERVED: set = set()


def _trace(frame, event, arg):
    filename = frame.f_code.co_filename
    lines = _TRACE_LINES.get(filename)
    if event == "call":
        # Returning None keeps uninteresting files line-trace-free, so the
        # tracer only taxes frames that can contain candidate sites.
        return _trace if lines else None
    if event == "line" and lines and frame.f_lineno in lines:
        _OBSERVED.add((filename, frame.f_lineno))
    return _trace


def _trace_init(site_lines: dict[str, frozenset[int]], deterministic_timing: bool) -> None:
    """Worker initializer: normal grid setup plus the write tracer."""
    from repro.harness.experiments import _grid_worker_init

    _grid_worker_init(deterministic_timing)
    _TRACE_LINES.update(site_lines)
    sys.settrace(_trace)


def _traced_grid_job(job) -> tuple[int, list]:
    """Run one real grid cell, returning the write sites observed so far."""
    from repro.harness.experiments import _run_grid_job

    _run_grid_job(job)
    return os.getpid(), sorted(_OBSERVED)


# ----------------------------------------------------------------------
# the smoke itself
# ----------------------------------------------------------------------
def run_trace_smoke(
    program: Program | None = None,
    seed: int = 0,
    workers: int = 2,
) -> TraceSmokeResult:
    """Spawn a traced 2-worker grid and cross-check the context labels."""
    import multiprocessing as mp

    from repro.harness.experiments import GridJob

    try:
        if program is None:
            package_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
            program = build_program([package_root])
        site_lines, labeled = _site_maps(program)
        jobs = [
            GridJob("dmv", "fcn", "random", scale="smoke", seed=seed),
            GridJob("dmv", "fcn", "clean", scale="smoke", seed=seed + 1),
        ]
        context = mp.get_context("fork")
        with context.Pool(
            processes=workers,
            initializer=_trace_init,
            initargs=(site_lines, True),
        ) as pool:
            results = pool.map(_traced_grid_job, jobs)
        observed: set = set()
        pids = set()
        for pid, sites in results:
            pids.add(pid)
            observed.update((path, line) for path, line in sites)
        if not observed:
            return TraceSmokeResult(
                False, 0, 0, len(pids),
                detail="the write tracer observed no mutation sites at all",
            )
        unlabeled = sorted(
            f"{os.path.relpath(path)}:{line}"
            for path, line in observed
            if line not in labeled.get(path, ())
        )
        observed_count = len(observed)
        labeled_count = observed_count - len(unlabeled)
        if unlabeled:
            shown = ", ".join(unlabeled[:8])
            more = "" if len(unlabeled) <= 8 else f" (+{len(unlabeled) - 8} more)"
            return TraceSmokeResult(
                False, observed_count, labeled_count, len(pids),
                unlabeled=tuple(unlabeled),
                detail=f"worker-executed write sites missing a static label: {shown}{more}",
            )
        return TraceSmokeResult(True, observed_count, labeled_count, len(pids))
    except Exception as exc:  # noqa: R003 — the gate wants a verdict, not a traceback
        return TraceSmokeResult(False, 0, 0, 0, detail=f"{type(exc).__name__}: {exc}")
