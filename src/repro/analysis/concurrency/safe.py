"""The ``# safe:`` structured suppression for concurrency findings.

``# noqa`` silences a rule and says nothing else. Concurrency findings
are different: a write to shared state that the analyzer flags is either
a bug or *safe for a reason* — the reason is the valuable part, and it
belongs next to the code. The structured form is::

    self._cache: dict = {}  # safe: R015 per-process cache, workers never share

* the comment names the rule ids it suppresses (``R013``–``R016``) and
  MUST carry a non-empty reason — a bare ``# safe: R015`` is itself
  reported (``E998``);
* the annotation can sit on the write line, on the attribute's
  ``__init__`` line (covering every write to that attribute in the
  class), or on a module-level singleton's definition line (covering
  every write to that global) — the rules consult those related lines;
* every annotation must be *load-bearing*: after the rules run, any
  ``# safe:`` that suppressed nothing is reported (``E997``), so stale
  annotations cannot accumulate the way stale ``# noqa`` comments do.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
import weakref

from repro.analysis.flow.program import ModuleInfo, Program
from repro.analysis.walker import Finding

#: The concurrency rules the structured suppression originally covered.
CONCURRENCY_RULE_IDS = frozenset({"R013", "R014", "R015", "R016"})

#: Every rule the structured suppression may name: the concurrency rules
#: plus compile-site coverage (an uncovered ``compiled_call`` site is
#: likewise either a gap or deliberately exempt *for a stated reason*).
STRUCTURED_RULE_IDS = CONCURRENCY_RULE_IDS | {"R020"}

MALFORMED_SAFE_ID = "E998"
UNUSED_SAFE_ID = "E997"

_SAFE_MARKER_RE = re.compile(r"#\s*safe\s*:", re.IGNORECASE)


def _comment_tokens(lines: list[str]) -> list[tuple[int, int, str]]:
    """``(line, col, text)`` for every real COMMENT token.

    Tokenizing (rather than regex-scanning raw lines, as ``# noqa`` does)
    keeps ``# safe:`` examples inside docstrings from parsing as
    annotations. Files reaching this point parsed cleanly, but guard
    against tokenizer hiccups anyway — a missed comment only costs an
    E997 later, never a crash.
    """
    source = "\n".join(lines) + "\n"
    out: list[tuple[int, int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                out.append((token.start[0], token.start[1], token.string))
    except (tokenize.TokenizeError, IndentationError, SyntaxError):
        pass
    return out
_SAFE_RE = re.compile(
    r"#\s*safe\s*:\s*(?P<ids>R\d{3}(?:\s*,\s*R\d{3})*)\b(?P<reason>.*)$",
    re.IGNORECASE,
)


@dataclasses.dataclass
class SafeNote:
    """One parsed ``# safe: R0xx <reason>`` annotation."""

    module: str
    path: str
    line: int
    rule_ids: frozenset[str]
    reason: str
    used: bool = False


class SafeSuppressions:
    """All ``# safe:`` annotations in a program's *target* modules."""

    def __init__(self, program: Program) -> None:
        self.notes: dict[str, list[SafeNote]] = {}
        self.malformed: list[Finding] = []
        for module in program.target_modules():
            notes = []
            for lineno, col, text in _comment_tokens(module.lines):
                if not _SAFE_MARKER_RE.search(text):
                    continue
                match = _SAFE_RE.search(text)
                reason = match.group("reason").strip(" \t-—:,.") if match else ""
                if match and reason:
                    ids = frozenset(
                        part.strip().upper()
                        for part in match.group("ids").split(",")
                        if part.strip()
                    )
                    notes.append(SafeNote(
                        module=module.name,
                        path=module.display_path,
                        line=lineno,
                        rule_ids=ids,
                        reason=reason,
                    ))
                else:
                    self.malformed.append(Finding(
                        rule_id=MALFORMED_SAFE_ID,
                        message=(
                            "malformed '# safe:' suppression — expected "
                            "'# safe: R0xx[, R0yy] <reason>' with a non-empty reason"
                        ),
                        path=module.display_path,
                        line=lineno,
                        col=col + 1,
                        severity="error",
                        hint="state *why* the flagged pattern cannot race, or delete the comment",
                    ))
            if notes:
                self.notes[module.name] = notes

    def suppresses(
        self,
        module: ModuleInfo,
        rule_id: str,
        line: int,
        end_line: int | None = None,
    ) -> bool:
        """Is ``rule_id`` safe-annotated on any line of ``[line, end_line]``?

        Marks the matching note used — load-bearing for :meth:`findings`.
        """
        end = line if end_line is None or end_line < line else end_line
        hit = False
        for note in self.notes.get(module.name, ()):
            if line <= note.line <= end and rule_id in note.rule_ids:
                note.used = True
                hit = True
        return hit

    def findings(self, ran_ids: frozenset[str] | set[str] | None = None) -> list[Finding]:
        """Malformed annotations plus annotations that suppressed nothing.

        ``ran_ids`` is the set of rule ids that actually ran. A note is
        only reportable as unused when *every* rule it names ran — a
        partial ``--select`` must not produce false "not load-bearing"
        findings — and malformed notes are reported whenever at least one
        structured-suppression rule ran.
        """
        if ran_ids is not None and not (set(ran_ids) & STRUCTURED_RULE_IDS):
            return []
        out = list(self.malformed)
        for notes in self.notes.values():
            for note in notes:
                if note.used:
                    continue
                if ran_ids is not None and not note.rule_ids <= set(ran_ids):
                    continue
                ids = ", ".join(sorted(note.rule_ids))
                out.append(Finding(
                    rule_id=UNUSED_SAFE_ID,
                    message=(
                        f"'# safe: {ids}' suppresses nothing — the annotation is "
                        "not load-bearing (the rule no longer fires here)"
                    ),
                    path=note.path,
                    line=note.line,
                    col=1,
                    severity="error",
                    hint="delete the stale '# safe:' comment (or fix the ids it names)",
                ))
        return out


_CACHE: "weakref.WeakKeyDictionary[Program, SafeSuppressions]" = weakref.WeakKeyDictionary()


def safe_suppressions(program: Program) -> SafeSuppressions:
    """The (memoized) ``# safe:`` map for a program."""
    cached = _CACHE.get(program)
    if cached is None:
        cached = SafeSuppressions(program)
        _CACHE[program] = cached
    return cached
