"""Catalog of the IR-verifier rules (R017–R019).

Unlike the lint (R001–R006) and flow (R007+) rules, the IR rules do not
run over source files: they run over :class:`~repro.nn.compile.ir.TraceGraph`
and :class:`~repro.nn.compile.plan.CompiledPlan` objects, so they have no
``Rule``/``FlowRule`` class. This module is their registry equivalent —
one entry per rule with the title and hint the SARIF catalog and the
README rule table render — kept next to the checkers that emit them.

R020 (compile-site coverage) is a genuine flow rule and lives in
:mod:`repro.analysis.flow.rules.r020_compile_site_coverage`.
"""

from __future__ import annotations

#: id -> (title, hint) for every plan-level verifier rule.
IR_RULES: dict[str, dict[str, str]] = {
    "R017": {
        "title": "ir-shape-dtype",
        "hint": (
            "the abstract interpreter re-derived a different shape or dtype "
            "for this node than the trace recorded (or than its preallocated "
            "buffer holds) — the generated kernel would read or write the "
            "wrong extent; re-trace the function, do not patch the plan"
        ),
    },
    "R018": {
        "title": "ir-buffer-safety",
        "hint": (
            "a fused kernel reads a buffer no earlier kernel of the same run "
            "wrote (stale data from a previous execution), writes a buffer it "
            "does not own, or carries a run-serial guard that protects "
            "nothing; fix the schedule, never widen the guard"
        ),
    },
    "R019": {
        "title": "ir-translation",
        "hint": (
            "the plan's schedules diverge from an independent re-linearization "
            "of its trace: a live op is missing/duplicated, runs out of "
            "topological order, or the backward replay is not adjoint-complete "
            "for a requires-grad input; rebuild the plan from the trace"
        ),
    },
}


def ir_rule_ids() -> list[str]:
    """Sorted ids of the plan-level IR verifier rules."""
    return sorted(IR_RULES)
