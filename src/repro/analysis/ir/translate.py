"""R019 ir-translation: structural diff of a plan against its own trace.

Translation validation in the classic sense: instead of trusting the plan
builder, re-linearize the :class:`~repro.nn.compile.ir.TraceGraph` with an
*independent* implementation of the scheduling rules and require the
built plan to match structurally —

* the forward schedule covers every live op exactly once, in an order
  where every producer precedes its consumers (recording order, which the
  builder also uses, is the canonical witness);
* the kernel segmentation repartitions exactly the scheduled ops, no
  segment exceeding :data:`~repro.nn.compile.plan.SEGMENT_OPS`;
* the backward schedule equals an independent replay of the interpreter's
  DFS-postorder backward pass — same entries, same order, same per-entry
  gradient writes — and is adjoint-complete: every requires-grad input
  the trace connects to the root receives a gradient.

The checks are pure structure; no kernel runs and no array is touched.
"""

from __future__ import annotations

from repro.analysis.ir.interp import IRIssue
from repro.nn.compile.ir import TraceGraph
from repro.nn.compile.plan import SEGMENT_OPS


def _live_set(graph: TraceGraph) -> set[int]:
    live: set[int] = set()
    stack = list(graph.outputs)
    while stack:
        idx = stack.pop()
        if idx in live:
            continue
        live.add(idx)
        stack.extend(graph.nodes[idx].parents)
    return live


def _reference_backward(
    graph: TraceGraph, root: int, want_idxs: tuple[int, ...]
) -> tuple[list[tuple[int, tuple[int, ...]]], set[int]]:
    """Independent replay of the pruned backward schedule.

    Mirrors the interpreter's ``_backward_pass`` contract: DFS postorder
    over requires-grad nodes from the root, gradient flowing only through
    nodes that actually receive one, entries pruned to parents from which
    a wanted input is reachable. Returns ``(entries, reached wants)`` with
    each entry ``(node idx, gradients written in parent order)``.
    """
    topo: list[int] = []
    visited: set[int] = set()
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        idx, processed = stack.pop()
        if processed:
            topo.append(idx)
            continue
        if idx in visited:
            continue
        visited.add(idx)
        stack.append((idx, True))
        for parent in graph.nodes[idx].parents:
            if graph.nodes[parent].requires_grad and parent not in visited:
                stack.append((parent, False))

    want_set = set(want_idxs)
    needed: set[int] = set()
    for idx in topo:  # postorder lists parents before children
        if idx in want_set or any(p in needed for p in graph.nodes[idx].parents):
            needed.add(idx)

    has_grad = {root}
    entries: list[tuple[int, tuple[int, ...]]] = []
    for idx in reversed(topo):
        if idx not in has_grad:
            continue
        node = graph.nodes[idx]
        if node.kind != "op":
            continue
        writes = tuple(
            parent
            for parent in node.parents
            if parent in needed and graph.nodes[parent].requires_grad
        )
        if writes:
            has_grad.update(writes)
            entries.append((idx, writes))
    reached = {idx for idx in want_idxs if idx in has_grad}
    return entries, reached


def check_plan_translation(plan) -> tuple[list[IRIssue], int]:
    """R019 over one plan; returns ``(issues, checks proved)``."""
    issues: list[IRIssue] = []
    graph = plan.graph
    live = _live_set(graph)
    checks = 0

    def problem(node: int | None, message: str) -> None:
        issues.append(IRIssue("R019", node, message))

    # ---- output mapping ---------------------------------------------
    checks += 1
    if plan.output_nodes() != tuple(graph.outputs):
        problem(None, f"plan outputs map to nodes {list(plan.output_nodes())}, "
                      f"the trace's outputs are {list(graph.outputs)}")

    # ---- forward coverage and order ---------------------------------
    expected_fwd = [n.idx for n in graph.nodes if n.kind == "op" and n.idx in live]
    actual_fwd = [idx for idx, _ in plan.forward_schedule()]
    checks += len(expected_fwd) + 1
    missing = set(expected_fwd) - set(actual_fwd)
    extra = set(actual_fwd) - set(expected_fwd)
    for idx in sorted(missing):
        problem(idx, f"live op node {idx} ({graph.nodes[idx].op}) is missing from "
                     f"the forward schedule — its consumers read an unwritten buffer")
    for idx in sorted(extra):
        problem(idx, f"node {idx} is scheduled but is not a live op of the trace "
                     f"(dead code or a non-op node in the schedule)")
    if len(actual_fwd) != len(set(actual_fwd)):
        dupes = sorted({i for i in actual_fwd if actual_fwd.count(i) > 1})
        problem(dupes[0], f"forward schedule lists node(s) {dupes} more than once")
    # Topological consistency, reported per offending edge so a swapped
    # pair is named even when coverage is otherwise complete.
    position = {idx: pos for pos, idx in enumerate(actual_fwd)}
    for idx in actual_fwd:
        for parent in graph.nodes[idx].parents:
            if graph.nodes[parent].kind != "op" or parent not in live:
                continue
            if parent not in position or position[parent] >= position.get(idx, -1):
                problem(idx, f"node {idx} runs before its producer {parent} — the "
                             f"schedule is not topologically ordered")

    # ---- segmentation repartitions the schedules exactly ------------
    seg = plan.segment_op_counts()
    for tag, schedule_len in (("forward", len(actual_fwd)),
                              ("backward", len(plan.backward_schedule()))):
        checks += 1
        counts = seg[tag]
        if sum(counts) != schedule_len:
            problem(None, f"{tag} kernel segments hold {sum(counts)} ops but the "
                          f"{tag} schedule has {schedule_len}")
        for seg_no, ops in enumerate(counts):
            if ops > SEGMENT_OPS:
                problem(None, f"{tag} segment {seg_no} fuses {ops} ops, over the "
                              f"{SEGMENT_OPS}-op chunking bound")

    # ---- backward: diff against the independent replay --------------
    root = graph.outputs[0]
    wants = plan.wanted_inputs()
    expected_wants = tuple(graph.input_idxs[slot] for slot in plan.want_slots)
    checks += 1
    if wants != expected_wants:
        problem(None, f"plan gradient slots map to nodes {wants}, trace says "
                      f"{expected_wants}")
    should_have_backward = bool(plan.want_slots) and graph.nodes[root].requires_grad
    checks += 1
    if plan.has_backward != should_have_backward:
        problem(root, f"plan has_backward={plan.has_backward} but the trace "
                      f"{'requires' if should_have_backward else 'cannot support'} "
                      f"a backward schedule")

    actual_bwd = [(e["node"], tuple(e["writes"])) for e in plan.backward_schedule()]
    if not should_have_backward:
        checks += 1
        if actual_bwd:
            problem(None, "plan carries backward entries despite having no "
                          "gradient-requesting input")
        return issues, checks

    expected_bwd, expected_reached = _reference_backward(graph, root, wants)
    checks += len(expected_bwd) + 1
    if actual_bwd != expected_bwd:
        actual_nodes = [n for n, _ in actual_bwd]
        expected_nodes = [n for n, _ in expected_bwd]
        for node in sorted(set(expected_nodes) - set(actual_nodes)):
            problem(node, f"backward entry for node {node} was dropped — its "
                          f"parents' gradients are never computed")
        for node in sorted(set(actual_nodes) - set(expected_nodes)):
            problem(node, f"backward entry for node {node} does not appear in the "
                          f"reference replay (gradient flows where none should)")
        if sorted(actual_nodes) == sorted(expected_nodes) and actual_nodes != expected_nodes:
            problem(actual_nodes[0], "backward entries run out of replay order — "
                                     "accumulation order (and therefore rounding) "
                                     "diverges from the interpreter")
        for (a_node, a_writes), (e_node, e_writes) in zip(actual_bwd, expected_bwd):
            if a_node == e_node and a_writes != e_writes:
                problem(a_node, f"backward entry for node {a_node} writes gradients "
                                f"{list(a_writes)}, reference replay writes "
                                f"{list(e_writes)}")

    checks += 1
    if plan.reached_wants() != frozenset(expected_reached):
        problem(None, f"plan reports gradient-reached inputs "
                      f"{sorted(plan.reached_wants())}, reference replay reaches "
                      f"{sorted(expected_reached)} — the backward is not "
                      f"adjoint-complete for every requires-grad input")
    return issues, checks
