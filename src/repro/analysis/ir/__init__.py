"""Static IR verifier for the ``repro.nn.compile`` pipeline.

Proves — without executing a single kernel — that every compiled plan is
shape/dtype-consistent (R017), buffer-safe across its forward/backward
schedules (R018), and a faithful re-linearization of the trace it was
built from (R019). Compile-site coverage (R020) is the companion flow
rule in :mod:`repro.analysis.flow.rules.r020_compile_site_coverage`.
"""

from repro.analysis.ir.buffers import check_plan_buffers, line_accesses
from repro.analysis.ir.fixtures import fixture_plans
from repro.analysis.ir.interp import IRIssue, check_plan_shapes, infer_graph
from repro.analysis.ir.rules import IR_RULES, ir_rule_ids
from repro.analysis.ir.translate import check_plan_translation
from repro.analysis.ir.verify import (
    IRVerificationResult,
    PlanReport,
    run_ir_verification,
    verify_plan,
    verify_plans,
)

__all__ = [
    "IRIssue",
    "IRVerificationResult",
    "IR_RULES",
    "PlanReport",
    "check_plan_buffers",
    "check_plan_shapes",
    "check_plan_translation",
    "fixture_plans",
    "infer_graph",
    "ir_rule_ids",
    "line_accesses",
    "run_ir_verification",
    "verify_plan",
    "verify_plans",
]
