"""Driver: run R017–R019 over plans and fold results into findings.

:func:`verify_plan` checks one plan; :func:`run_ir_verification` is the
CLI-facing sweep — it force-compiles every real call site through the
equivalence sweep, then verifies every plan the cache holds plus the
static fixtures. A site that declines compilation under force mode is a
verification *gap* (nothing to verify where the product would compile),
so declines fail the run just as findings do.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.ir.buffers import check_plan_buffers
from repro.analysis.ir.interp import IRIssue, check_plan_shapes
from repro.analysis.ir.rules import IR_RULES
from repro.analysis.ir.translate import check_plan_translation
from repro.analysis.walker import Finding


@dataclasses.dataclass
class PlanReport:
    """Verifier verdict for one compiled plan."""

    label: str
    graph_hash: str
    nodes: int
    kernels: int
    checks: dict[str, int]
    findings: list[Finding]

    @property
    def passed(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "graph_hash": self.graph_hash,
            "nodes": self.nodes,
            "kernels": self.kernels,
            "checks": dict(self.checks),
            "findings": [
                {"rule": f.rule_id, "severity": f.severity, "message": f.message}
                for f in self.findings
            ],
            "passed": self.passed,
        }


@dataclasses.dataclass
class IRVerificationResult:
    """Whole-run verdict: every plan verified, plus compilation gaps."""

    source: str
    reports: list[PlanReport]
    declined: list[str]

    @property
    def findings(self) -> list[Finding]:
        return [f for report in self.reports for f in report.findings]

    @property
    def passed(self) -> bool:
        return not self.declined and all(report.passed for report in self.reports)

    def as_dict(self) -> dict:
        return {
            "source": self.source,
            "passed": self.passed,
            "plans": [report.as_dict() for report in self.reports],
            "declined": list(self.declined),
        }


def _to_finding(plan, issue: IRIssue) -> Finding:
    """Render an :class:`IRIssue` as a standard analysis finding.

    Plans have no file location, so the path is the synthetic
    ``<plan:label>`` and the precise anchor (plan + node) rides in the
    ``logical`` field, which the SARIF writer emits as a logicalLocation.
    """
    logical = f"plan:{plan.label}"
    if issue.node is not None:
        logical = f"{logical}/node:{issue.node}"
    return Finding(
        rule_id=issue.rule_id,
        message=issue.message,
        path=f"<plan:{plan.label}>",
        line=1,
        col=1,
        severity=issue.severity,
        hint=IR_RULES[issue.rule_id]["hint"],
        logical=logical,
    )


def verify_plan(plan) -> PlanReport:
    """Run all three IR rules over one plan without executing it."""
    issues: list[IRIssue] = []
    checks: dict[str, int] = {}
    for rule_id, checker in (
        ("R017", check_plan_shapes),
        ("R018", check_plan_buffers),
        ("R019", check_plan_translation),
    ):
        rule_issues, proved = checker(plan)
        issues.extend(rule_issues)
        checks[rule_id] = proved
    return PlanReport(
        label=plan.label,
        graph_hash=plan.graph_hash,
        nodes=len(plan.graph.nodes),
        kernels=len(plan.kernels()),
        checks=checks,
        findings=[_to_finding(plan, issue) for issue in issues],
    )


def verify_plans(plans, source: str, declined: list[str] | None = None) -> IRVerificationResult:
    """Verify a batch of plans under a common provenance label."""
    return IRVerificationResult(
        source=source,
        reports=[verify_plan(plan) for plan in plans],
        declined=list(declined or []),
    )


def run_ir_verification(seed: int = 0, fast: bool = False) -> IRVerificationResult:
    """The ``verify-ir`` sweep.

    ``fast`` verifies only the static fixture plans. The full run drives
    the compiled-vs-interpreted equivalence sweep first (so the plan cache
    holds a force-compiled plan for every real call site) and then
    verifies everything in the cache plus the fixtures.
    """
    from repro.analysis.ir.fixtures import fixture_plans

    if fast:
        return verify_plans(fixture_plans(), "fixtures")

    from repro.analysis.equivalence import run_equivalence
    from repro.nn.compile import iter_plans

    equivalence = run_equivalence(seed=seed)
    declined = [case.name for case in equivalence.cases if "declined" in case.detail]
    plans = list(iter_plans()) + fixture_plans()
    return verify_plans(plans, "sweep+fixtures", declined=declined)
