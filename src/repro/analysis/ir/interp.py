"""R017 ir-shape-dtype: abstract interpretation over a :class:`TraceGraph`.

The interpreter re-derives every node's shape and dtype *symbolically*
from its parents and aux payload — numpy's broadcasting/promotion rules
reimplemented over shape tuples, never over the recorded arrays — and
compares the result against what the trace recorded and what the plan
preallocated. A divergence means the generated kernel would read or
write the wrong extent (or silently cast), which the dynamic equivalence
sweep only notices when that exact plan executes; here it is proved
before any kernel runs.

Two entry points:

* :func:`infer_graph` — per-node ``(shape, dtype)`` plus the issues found
  while propagating (works on bare graphs, no plan required);
* :func:`check_plan_shapes` — :func:`infer_graph` plus the buffer audit:
  every preallocated forward buffer must match its node's inferred shape
  and dtype exactly.
"""

from __future__ import annotations

import dataclasses
from math import prod

import numpy as np

from repro.nn.compile.ir import TraceGraph, TraceNode


@dataclasses.dataclass(frozen=True)
class IRIssue:
    """One verifier defect, anchored to a graph node (or a plan buffer)."""

    rule_id: str
    node: int | None
    message: str
    severity: str = "error"


@dataclasses.dataclass
class Abstract:
    """Symbolic value of one node: its shape and dtype, nothing else."""

    shape: tuple[int, ...]
    dtype: np.dtype


class _ShapeError(Exception):
    """An op's parents cannot produce a value (raised by shape rules)."""


# ----------------------------------------------------------------------
# shape rules (numpy semantics re-derived over tuples)
# ----------------------------------------------------------------------
def _broadcast(*shapes: tuple[int, ...]) -> tuple[int, ...]:
    try:
        return tuple(np.broadcast_shapes(*shapes))
    except ValueError as exc:
        raise _ShapeError(f"shapes {shapes} do not broadcast: {exc}") from exc


def _matmul_shape(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    if len(a) == 1 and len(b) == 1:
        if a[0] != b[0]:
            raise _ShapeError(f"matmul inner dims differ: {a} @ {b}")
        return ()
    if len(a) == 2 and len(b) == 2:
        if a[1] != b[0]:
            raise _ShapeError(f"matmul inner dims differ: {a} @ {b}")
        return (a[0], b[1])
    if len(a) == 1 and len(b) == 2:
        if a[0] != b[0]:
            raise _ShapeError(f"matmul inner dims differ: {a} @ {b}")
        return (b[1],)
    if len(a) == 2 and len(b) == 1:
        if a[1] != b[0]:
            raise _ShapeError(f"matmul inner dims differ: {a} @ {b}")
        return (a[0],)
    raise _ShapeError(f"no shape rule for matmul of ndim {len(a)} @ {len(b)}")


def _sum_shape(shape: tuple[int, ...], axis, keepdims: bool) -> tuple[int, ...]:
    if axis is None:
        return tuple(1 for _ in shape) if keepdims else ()
    axes = axis if isinstance(axis, tuple) else (axis,)
    norm = {a % len(shape) for a in axes}
    if keepdims:
        return tuple(1 if i in norm else d for i, d in enumerate(shape))
    return tuple(d for i, d in enumerate(shape) if i not in norm)


def _reshape_shape(shape: tuple[int, ...], new) -> tuple[int, ...]:
    new = tuple(int(d) for d in new)
    total = prod(shape)
    if -1 in new:
        known = prod(d for d in new if d != -1)
        if new.count(-1) > 1 or known == 0 or total % known:
            raise _ShapeError(f"cannot reshape {shape} into {new}")
        new = tuple(total // known if d == -1 else d for d in new)
    if prod(new) != total:
        raise _ShapeError(f"reshape changes element count: {shape} -> {new}")
    return new


def _transpose_shape(shape: tuple[int, ...], axes) -> tuple[int, ...]:
    if axes is None:
        return tuple(reversed(shape))
    axes = tuple(int(a) for a in axes)
    if sorted(a % len(shape) for a in axes) != list(range(len(shape))):
        raise _ShapeError(f"transpose axes {axes} are not a permutation of {shape}")
    return tuple(shape[a] for a in axes)


def _broadcast_to_shape(shape: tuple[int, ...], target) -> tuple[int, ...]:
    target = tuple(int(d) for d in target)
    if _broadcast(shape, target) != target:
        raise _ShapeError(f"{shape} does not broadcast to {target}")
    return target


def _indexed_shape(shape: tuple[int, ...], index) -> tuple[int, ...]:
    # Indexing semantics are numpy's own; apply the recorded index object
    # to an *empty* array of the right shape. This never runs a kernel —
    # it is the cheapest sound way to honor every fancy-indexing corner.
    try:
        return np.empty(shape)[index].shape
    except (IndexError, TypeError, ValueError) as exc:
        raise _ShapeError(f"index {index!r} invalid for shape {shape}: {exc}") from exc


def _concat_shape(shapes: list[tuple[int, ...]], axis: int) -> tuple[int, ...]:
    if not shapes:
        raise _ShapeError("concat of zero tensors")
    ndim = len(shapes[0])
    axis = axis % ndim if ndim else 0
    for s in shapes:
        if len(s) != ndim:
            raise _ShapeError(f"concat rank mismatch: {shapes}")
        for i, (a, b) in enumerate(zip(s, shapes[0])):
            if i != axis and a != b:
                raise _ShapeError(f"concat off-axis dims differ: {shapes}")
    return tuple(
        sum(s[i] for s in shapes) if i == axis else d
        for i, d in enumerate(shapes[0])
    )


# ----------------------------------------------------------------------
# dtype rules
# ----------------------------------------------------------------------
_FLOAT64 = np.dtype(np.float64)

#: Ops whose result is float even for integral inputs (numpy promotes
#: integer inputs of these ufuncs to float64; the mask helpers astype).
_FLOAT_FORCING = frozenset({
    "exp", "log", "tanh", "sigmoid", "pow", "relu", "sign",
})
_MASK_OPS = frozenset({
    "gt_zero_mask", "range_mask", "ge_mask", "lt_mask", "argmax_mask",
})


def _as_float(dtype: np.dtype) -> np.dtype:
    return dtype if dtype.kind == "f" else _FLOAT64


def _infer_op(node: TraceNode, parents: list[Abstract]) -> Abstract:
    """Shape/dtype of one op node from its parents' abstract values."""
    op = node.op
    shapes = [p.shape for p in parents]
    promoted = np.result_type(*[p.dtype for p in parents]) if parents else _FLOAT64

    if op in ("add", "sub", "mul", "maximum"):
        return Abstract(_broadcast(shapes[0], shapes[1]), promoted)
    if op in ("neg", "abs", "clip"):
        return Abstract(shapes[0], parents[0].dtype)
    if op in _FLOAT_FORCING:
        return Abstract(shapes[0], _as_float(parents[0].dtype))
    if op in _MASK_OPS:
        return Abstract(_broadcast(*shapes) if len(shapes) > 1 else shapes[0], _FLOAT64)
    if op == "matmul":
        return Abstract(_matmul_shape(shapes[0], shapes[1]), promoted)
    if op == "sum":
        return Abstract(
            _sum_shape(shapes[0], node.aux["axis"], node.aux["keepdims"]),
            parents[0].dtype,
        )
    if op == "max_reduce":
        return Abstract((), parents[0].dtype)
    if op == "reshape":
        return Abstract(_reshape_shape(shapes[0], node.aux["shape"]), parents[0].dtype)
    if op == "transpose":
        return Abstract(_transpose_shape(shapes[0], node.aux["axes"]), parents[0].dtype)
    if op == "broadcast_to":
        return Abstract(
            _broadcast_to_shape(shapes[0], node.aux["shape"]), parents[0].dtype
        )
    if op == "getitem":
        return Abstract(_indexed_shape(shapes[0], node.aux["index"]), parents[0].dtype)
    if op == "scatter":
        target = tuple(int(d) for d in node.aux["shape"])
        # add.at writes the source through the index: the indexed view of
        # the target must be able to absorb the source by broadcasting.
        view = _indexed_shape(target, node.aux["index"])
        if _broadcast(view, shapes[0]) != tuple(view):
            raise _ShapeError(
                f"scatter source {shapes[0]} does not broadcast into "
                f"indexed view {view} of {target}"
            )
        return Abstract(target, _as_float(parents[0].dtype))
    if op == "concat":
        return Abstract(_concat_shape(shapes, node.aux["axis"]), promoted)
    if op == "affine":
        x, w = shapes[0], shapes[1]
        out = _matmul_shape(x, w)
        if node.aux["has_bias"]:
            if _broadcast(out, shapes[2]) != out:
                raise _ShapeError(f"affine bias {shapes[2]} does not broadcast to {out}")
        dtype = _as_float(promoted) if node.aux["activation"] else promoted
        return Abstract(out, dtype)
    raise _ShapeError(f"no shape rule for op {op!r}")


# ----------------------------------------------------------------------
# graph / plan entry points
# ----------------------------------------------------------------------
def infer_graph(graph: TraceGraph) -> tuple[dict[int, Abstract], list[IRIssue]]:
    """Propagate shapes/dtypes through every node; report divergences.

    Inputs are trusted (their shape IS the plan's cache key); consts are
    cross-checked against their captured value; every op is re-derived
    and compared against what the trace recorded.
    """
    issues: list[IRIssue] = []
    values: dict[int, Abstract] = {}

    def problem(node: TraceNode, message: str) -> None:
        issues.append(IRIssue("R017", node.idx, f"node {node.idx} ({node.op or node.kind}): {message}"))

    for node in graph.nodes:
        declared = Abstract(tuple(node.shape), np.dtype(node.dtype))
        if node.kind == "input":
            values[node.idx] = declared
            continue
        if node.kind == "const":
            if node.value is None:
                problem(node, "const node carries no captured value")
            else:
                if tuple(node.value.shape) != declared.shape:
                    problem(node, f"captured value has shape {tuple(node.value.shape)}, "
                                  f"declared {declared.shape}")
                if node.value.dtype.str != node.dtype:
                    problem(node, f"captured value has dtype {node.value.dtype.str}, "
                                  f"declared {node.dtype}")
            values[node.idx] = declared
            continue
        # op node: every parent must already have a value (SSA order).
        parent_values = []
        broken = False
        for parent in node.parents:
            if parent >= node.idx or parent not in values:
                problem(node, f"parent {parent} is not defined before use")
                broken = True
                break
            parent_values.append(values[parent])
        if broken:
            values[node.idx] = declared
            continue
        try:
            inferred = _infer_op(node, parent_values)
        except _ShapeError as exc:
            problem(node, str(exc))
            values[node.idx] = declared
            continue
        if inferred.shape != declared.shape:
            problem(node, f"inferred shape {inferred.shape}, trace recorded {declared.shape}")
        if inferred.dtype.str != node.dtype:
            problem(node, f"inferred dtype {inferred.dtype.str}, trace recorded {node.dtype}")
        values[node.idx] = inferred
    return values, issues


def check_plan_shapes(plan) -> tuple[list[IRIssue], int]:
    """R017 over one plan: graph inference plus the preallocation audit.

    Returns ``(issues, checks)`` where ``checks`` counts the individual
    facts proved (per-node inferences plus per-buffer comparisons).
    """
    values, issues = infer_graph(plan.graph)
    checks = len(plan.graph.nodes)
    for idx, meta in plan.buffer_table().items():
        if meta["kind"] != "prealloc":
            continue
        checks += 1
        inferred = values.get(idx)
        if inferred is None:
            continue
        if tuple(meta["shape"]) != inferred.shape:
            issues.append(IRIssue(
                "R017", idx,
                f"preallocated buffer for node {idx} has shape {tuple(meta['shape'])}, "
                f"inferred {inferred.shape} — the fused kernel writes the wrong extent",
            ))
        if meta["dtype"] != inferred.dtype.str:
            issues.append(IRIssue(
                "R017", idx,
                f"preallocated buffer for node {idx} has dtype {meta['dtype']}, "
                f"inferred {inferred.dtype.str} — ufunc out= would cast silently",
            ))
    return issues, checks
