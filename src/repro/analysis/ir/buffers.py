"""R018 ir-buffer-safety: liveness and aliasing over the generated lines.

The plan's kernels are generated Python over three arrays: ``B`` (per-node
forward buffers), ``G`` (per-node gradient buffers) and ``AUX`` (interned
constants). This checker parses every scheduled line back into its buffer
reads and writes and proves the discipline the runtime silently relies on:

* forward is SSA — each scheduled op writes exactly its own ``B[idx]``,
  exactly once, and only reads buffers an earlier op (or an input/const
  binding) already produced this run;
* backward never writes a forward buffer and only reads buffers the
  forward schedule produced — a read of anything else is stale data from
  a previous execution;
* each gradient is written before any line reads it (a dropped or
  reordered backward segment shows up here as a read of an unwritten
  ``G[p]``);
* the run-serial guard is **necessary iff** the backward reads a buffer
  that a later forward run would overwrite (inputs and preallocated op
  buffers; captured consts are immortal). A guard on a plan whose
  backward reads none of those is flagged as provably unnecessary, and a
  missing guard on one that does is an unsoundness error.
"""

from __future__ import annotations

import re

from repro.analysis.ir.interp import IRIssue

_B_TOKEN = re.compile(r"B\[(\d+)\]")
_G_TOKEN = re.compile(r"G\[(\d+)\]")

#: Positions where a ``B[i]``/``G[i]`` token is the *destination* of its
#: line. Everything not matched by one of these is a read.
_B_ASSIGN = re.compile(r"^\s*(B\[(\d+)\])(?:\[[^\]]*\])?\s*=(?!=)")
_G_ASSIGN = re.compile(r"^\s*(G\[(\d+)\])\s*=(?!=)")
_B_OUT = re.compile(r"out=(B\[(\d+)\])")
_B_COPYTO = re.compile(r"np\.copyto\((B\[(\d+)\])")
_B_ADD_AT = re.compile(r"np\.add\.at\((B\[(\d+)\])")


def line_accesses(line: str) -> dict[str, set[int]]:
    """Classify every buffer token on one generated line.

    Returns ``{"b_writes", "b_reads", "g_writes", "g_reads"}``. A token is
    a write when it sits in a destination position (assignment target,
    ``out=`` kwarg, ``np.copyto``/``np.add.at`` first argument); all other
    occurrences are reads. ``np.add.at`` accumulates in place, so its
    target counts as a write (the zero-fill on the previous generated line
    provides the initial value).
    """
    write_spans: set[int] = set()
    b_writes: set[int] = set()
    g_writes: set[int] = set()
    for pattern in (_B_ASSIGN, _B_OUT, _B_COPYTO, _B_ADD_AT):
        for match in pattern.finditer(line):
            write_spans.add(match.start(1))
            b_writes.add(int(match.group(2)))
    match = _G_ASSIGN.match(line)
    if match:
        write_spans.add(match.start(1))
        g_writes.add(int(match.group(2)))
    b_reads = {
        int(m.group(1)) for m in _B_TOKEN.finditer(line) if m.start() not in write_spans
    }
    g_reads = {
        int(m.group(1)) for m in _G_TOKEN.finditer(line) if m.start() not in write_spans
    }
    return {
        "b_writes": b_writes,
        "b_reads": b_reads,
        "g_writes": g_writes,
        "g_reads": g_reads,
    }


def check_plan_buffers(plan) -> tuple[list[IRIssue], int]:
    """R018 over one plan; returns ``(issues, checks proved)``."""
    issues: list[IRIssue] = []
    checks = 0
    table = plan.buffer_table()
    inputs = set(plan.input_nodes())
    consts = {idx for idx, meta in table.items() if meta["kind"] == "const"}

    # ---- forward: SSA discipline ------------------------------------
    scheduled: set[int] = set()
    for idx, lines in plan.forward_schedule():
        checks += 1
        writes: set[int] = set()
        reads: set[int] = set()
        for line in lines:
            acc = line_accesses(line)
            writes |= acc["b_writes"]
            reads |= acc["b_reads"]
            if acc["g_writes"] or acc["g_reads"]:
                issues.append(IRIssue(
                    "R018", idx,
                    f"forward kernel for node {idx} touches a gradient buffer: {line!r}",
                ))
        if idx in scheduled:
            issues.append(IRIssue(
                "R018", idx,
                f"node {idx} is scheduled twice — forward buffers are SSA, "
                f"the second write clobbers every reader of the first",
            ))
        if writes != {idx}:
            issues.append(IRIssue(
                "R018", idx,
                f"node {idx}'s kernel writes buffers {sorted(writes)} instead of "
                f"exactly its own B[{idx}]",
            ))
        for r in sorted(reads - {idx}):
            if r not in inputs and r not in consts and r not in scheduled:
                issues.append(IRIssue(
                    "R018", idx,
                    f"node {idx} reads B[{r}] before any kernel of this run wrote "
                    f"it — stale data from a previous execution",
                ))
        scheduled.add(idx)

    # ---- backward: read-only over B, write-before-read over G -------
    root = plan.backward_root()
    g_written: set[int] = set() if root is None else {root}
    alive = inputs | consts | scheduled
    backward_b_reads: set[int] = set()
    declared_writes: set[int] = set()
    for entry in plan.backward_schedule():
        checks += 1
        node = entry["node"]
        parsed_writes: set[int] = set()
        stale_reported: set[int] = set()
        for line in entry["lines"]:
            acc = line_accesses(line)
            if acc["b_writes"]:
                issues.append(IRIssue(
                    "R018", node,
                    f"backward entry for node {node} writes forward buffer(s) "
                    f"{sorted(acc['b_writes'])}: {line!r}",
                ))
            for r in sorted(acc["b_reads"] - alive):
                issues.append(IRIssue(
                    "R018", node,
                    f"backward entry for node {node} reads B[{r}], which no "
                    f"forward kernel or binding of this plan produces",
                ))
            backward_b_reads |= acc["b_reads"]
            for p in sorted(acc["g_reads"] - g_written - stale_reported):
                stale_reported.add(p)
                issues.append(IRIssue(
                    "R018", node,
                    f"backward entry for node {node} reads G[{p}] before any "
                    f"entry wrote it — a backward segment was dropped or "
                    f"reordered",
                ))
            g_written |= acc["g_writes"]
            parsed_writes |= acc["g_writes"]
        declared = set(entry["writes"])
        declared_writes |= declared
        if parsed_writes != declared:
            issues.append(IRIssue(
                "R018", node,
                f"backward entry for node {node} declares gradient writes "
                f"{sorted(declared)} but its lines write {sorted(parsed_writes)}",
            ))

    # ---- the run-serial guard ---------------------------------------
    if plan.has_backward:
        checks += 1
        # Consts are captured at trace time and never rebound; inputs and
        # preallocated/rebound op buffers are overwritten by every run.
        volatile_reads = backward_b_reads - consts
        if volatile_reads and not plan.guards_serial():
            issues.append(IRIssue(
                "R018", None,
                f"backward reads run-volatile buffers {sorted(volatile_reads)} "
                f"but the plan does not guard against a later forward "
                f"overwriting them (no run-serial check)",
            ))
        if not volatile_reads and plan.guards_serial():
            issues.append(IRIssue(
                "R018", None,
                "run-serial guard is provably unnecessary: the backward reads "
                "no buffer a later forward execution could overwrite",
                severity="warning",
            ))
        for want in plan.reached_wants():
            checks += 1
            if want not in declared_writes:
                issues.append(IRIssue(
                    "R018", want,
                    f"plan reports gradient for input node {want} as reachable "
                    f"but no backward entry writes G[{want}]",
                ))
    return issues, checks
