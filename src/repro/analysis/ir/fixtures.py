"""Deterministic fixture plans for the IR verifier.

``pace-repro analyze --fast`` and ``verify-ir --fast`` skip the (slow)
equivalence sweep, but the verifier must still exercise real plans — so
these build three tiny ones directly from traced functions, covering the
structurally distinct plan shapes: a matmul/affine net with a backward, a
pure-elementwise chain with a backward, and a forward-only view pipeline.
All values are fixed arithmetic sequences: the fixtures must be clean
under R017–R019 on every run, anywhere.
"""

from __future__ import annotations

import numpy as np

from repro.nn.compile.plan import CompiledPlan, build_plan
from repro.nn.compile.tracer import trace_function
from repro.nn.tensor import Tensor


def fixture_plans() -> list[CompiledPlan]:
    """Build the three fixture plans fresh (never cached: tests mutate them)."""
    plans = []

    # 1. matmul + bias + relu + reduction, gradients for w and b.
    x = Tensor(np.linspace(-1.0, 1.0, 12).reshape(4, 3))
    w = Tensor(np.linspace(0.5, -0.5, 6).reshape(3, 2), requires_grad=True)
    b = Tensor(np.array([0.1, -0.2]), requires_grad=True)

    def mlp(x, w, b):
        h = ((x @ w) + b).relu()
        return (h * h).sum()

    graph, _ = trace_function(mlp, [x, w, b])
    plans.append(build_plan(graph, "fixture.mlp", want_slots=(1, 2)))

    # 2. elementwise chain whose backward reads forward buffers.
    a = Tensor(np.linspace(0.1, 2.0, 8).reshape(2, 4), requires_grad=True)

    def chain(a):
        return (a.exp().tanh() * a).sum()

    graph, _ = trace_function(chain, [a])
    plans.append(build_plan(graph, "fixture.chain", want_slots=(0,)))

    # 3. forward-only view pipeline (reshape/transpose rebind, no prealloc).
    m = Tensor(np.linspace(0.0, 1.0, 24).reshape(2, 3, 4))

    def views(m):
        return m.reshape((4, 6)).transpose((1, 0)).sum(axis=1)

    graph, _ = trace_function(views, [m])
    plans.append(build_plan(graph, "fixture.views", want_slots=()))
    return plans
