"""Compiled-vs-interpreted equivalence sweep: the JIT's numerics gate.

``repro.nn.compile`` promises that a compiled region returns *exactly*
what the interpreter would have returned — the fallback path is bitwise
identical by construction, so the compiled path must be too. This module
checks that promise end to end for every estimator family by running the
**real** call-site wiring helpers (not re-derived equivalents) twice —
once interpreted, once force-compiled — and comparing every produced
array:

- ``compiled_forward`` — batched inference (``estimate_encoded``/serve);
- ``ce.trainer._compiled_batch_loss`` — training loss + parameter grads;
- ``ce.trainer._compiled_update_run`` via ``incremental_update`` — the
  DBMS's K-step update (per-step losses and final parameters);
- ``attack.algorithms._Session._compiled_poisoning_objective`` — the
  second-order path: Eq. 10's unrolled-update objective and its gradient
  w.r.t. the poison encodings;
- ``attack.algorithms._Session._compiled_detached_steps`` — Eq. 9's
  detached K-step simulation (the attack loop's snapshot-selection path).

``pace-repro analyze`` runs the sweep by default (``--fast`` skips it)
and ``pace-repro bench --compile`` stamps its verdict into the report.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

#: Families under test; mirrors ``repro.ce.MODEL_TYPES`` but pinned here
#: so a drift between the two is caught by the sweep's own coverage check
#: instead of silently shrinking the gate.
FAMILIES: tuple[str, ...] = ("fcn", "fcn_pool", "mscn", "rnn", "lstm", "linear")

#: Allowed |compiled - interpreted| per element. The design target is
#: exact (0.0); the tolerance only exists so the gate degrades into a
#: loud-but-diagnosable failure mode instead of a hard boolean.
DEFAULT_TOLERANCE = 1e-9

#: Unrolled-update depth for the second-order case (kept small: the
#: sweep runs inside ``pace-repro analyze``).
_UPDATE_STEPS = 3


@dataclass
class EquivalenceCase:
    """One compiled-vs-interpreted comparison."""

    name: str
    max_abs_diff: float
    byte_identical: bool
    passed: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "max_abs_diff": self.max_abs_diff,
            "byte_identical": self.byte_identical,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass
class EquivalenceResult:
    """Sweep verdict across all families and compiled paths."""

    cases: list[EquivalenceCase] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.cases) and all(c.passed for c in self.cases)

    @property
    def byte_identical(self) -> bool:
        return bool(self.cases) and all(c.byte_identical for c in self.cases)

    @property
    def max_abs_diff(self) -> float:
        return max((c.max_abs_diff for c in self.cases), default=float("inf"))

    def as_dict(self) -> dict:
        return {
            "passed": self.passed,
            "byte_identical": self.byte_identical,
            "max_abs_diff": self.max_abs_diff,
            "cases": [c.as_dict() for c in self.cases],
        }

    def __getitem__(self, key: str):
        return self.as_dict()[key]


@contextlib.contextmanager
def _force_compiled():
    """Compiled execution on, threshold 1 (compile immediately)."""
    from repro.nn.compile import (
        compile_threshold,
        compiled_execution,
        set_compile_threshold,
    )

    previous = compile_threshold()
    set_compile_threshold(1)
    try:
        with compiled_execution(True):
            yield
    finally:
        set_compile_threshold(previous)


def _compare(name: str, pairs: list[tuple[np.ndarray, np.ndarray]],
             tolerance: float) -> EquivalenceCase:
    worst = 0.0
    for interpreted, compiled in pairs:
        interpreted = np.asarray(interpreted)
        compiled = np.asarray(compiled)
        if interpreted.shape != compiled.shape:
            return EquivalenceCase(
                name=name, max_abs_diff=float("inf"), byte_identical=False,
                passed=False,
                detail=f"shape mismatch {interpreted.shape} vs {compiled.shape}",
            )
        diff = float(np.max(np.abs(interpreted - compiled))) if interpreted.size else 0.0
        worst = max(worst, diff)
    return EquivalenceCase(
        # Exactness is the point: "byte identical" means a diff of exactly
        # zero, not merely within tolerance.
        name=name, max_abs_diff=worst, byte_identical=worst == 0.0,  # noqa: R005
        passed=worst <= tolerance,
    )


def _declined(name: str, helper: str) -> EquivalenceCase:
    return EquivalenceCase(
        name=name, max_abs_diff=float("inf"), byte_identical=False, passed=False,
        detail=f"{helper} declined compilation under force mode",
    )


def run_equivalence(seed: int = 0, tolerance: float = DEFAULT_TOLERANCE) -> EquivalenceResult:
    """Run the sweep; resets the plan cache so every path truly compiles.

    A stale negative-cache entry (e.g. a site declined as unprofitable by
    an earlier benchmark in the same process) would silently turn the
    compiled side into the interpreted one and make the sweep vacuous, so
    the cache is cleared up front.
    """
    from repro.attack.algorithms import _Session
    from repro.ce.registry import create_model
    from repro.ce.trainer import _compiled_batch_loss, incremental_update
    from repro.datasets.registry import load_dataset
    from repro.db.executor import Executor
    from repro.nn.compile import compiled_execution, compiled_forward, reset_compile_state
    from repro.nn.losses import mse_loss
    from repro.nn.tensor import Tensor, grad, no_grad
    from repro.workload.encoding import QueryEncoder
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.workload import Workload

    class _ObjectiveHarness:
        """Carries exactly the ``_Session`` attributes the Eq. 9/Eq. 10
        helpers read, so the sweep runs the *real* unbound methods."""

        poisoning_objective = _Session.poisoning_objective
        _compiled_poisoning_objective = _Session._compiled_poisoning_objective
        _detached_steps = _Session._detached_steps
        _compiled_detached_steps = _Session._compiled_detached_steps
        fresh_view = _Session.fresh_view

        def __init__(self, surrogate, test_x, test_y, update_lr):
            self.surrogate = surrogate
            self.clean_state = surrogate.state_dict()
            self.test_x = test_x
            self.test_y = test_y
            self.config = type("Cfg", (), {"update_lr": update_lr})()

    reset_compile_state()
    database = load_dataset("tpch", scale="smoke", seed=seed)
    executor = Executor(database)
    encoder = QueryEncoder(database.schema)
    gen = WorkloadGenerator(database, seed=seed)
    workload = Workload.from_queries(
        [gen.random_query(max_tables=3) for _ in range(16)], executor
    )
    encodings = np.array(workload.encode(encoder), copy=True)
    cards = workload.cardinalities

    result = EquivalenceResult()
    for family in FAMILIES:
        def fresh():
            model = create_model(family, encoder, hidden_dim=8, seed=seed)
            model.calibrate_normalization(cards)
            return model

        model = fresh()
        y_norm = model.normalize_log(cards)
        x = Tensor(encodings)
        y = Tensor(y_norm)

        # -- forward (inference wiring: estimate_encoded / serve) -------
        with compiled_execution(False), no_grad():
            interp_out = fresh()(x).data.copy()
        with _force_compiled():
            compiled_out = compiled_forward(fresh(), x)
        if compiled_out is None:
            result.cases.append(_declined(f"{family}.forward", "compiled_forward"))
        else:
            result.cases.append(_compare(
                f"{family}.forward", [(interp_out, compiled_out.data)], tolerance
            ))

        # -- training step (loss value + every parameter gradient) ------
        interp_model = fresh()
        with compiled_execution(False):
            loss = mse_loss(interp_model(x), y)
            interp_model.zero_grad()
            loss.backward()
        interp_grads = [
            (p.grad.data.copy() if p.grad is not None else np.zeros_like(p.data))
            for p in interp_model.parameters()
        ]
        compiled_model = fresh()
        with _force_compiled():
            closs = _compiled_batch_loss(compiled_model, x, y)
            if closs is None:
                result.cases.append(_declined(f"{family}.train_step", "_compiled_batch_loss"))
            else:
                compiled_model.zero_grad()
                closs.backward()
                compiled_grads = [
                    (p.grad.data.copy() if p.grad is not None else np.zeros_like(p.data))
                    for p in compiled_model.parameters()
                ]
                result.cases.append(_compare(
                    f"{family}.train_step",
                    [(loss.data, closs.data), *zip(interp_grads, compiled_grads)],
                    tolerance,
                ))

        # -- incremental update (per-step losses + final parameters) ----
        interp_model = fresh()
        with compiled_execution(False):
            interp_losses = incremental_update(interp_model, workload)
        compiled_model = fresh()
        with _force_compiled():
            compiled_losses = incremental_update(compiled_model, workload)
        result.cases.append(_compare(
            f"{family}.incremental_update",
            [
                (np.asarray(interp_losses), np.asarray(compiled_losses)),
                *zip(
                    (p.data for p in interp_model.parameters()),
                    (p.data for p in compiled_model.parameters()),
                ),
            ],
            tolerance,
        ))

        # -- detached update steps (Eq. 9 simulation path) --------------
        harness = _ObjectiveHarness(model, x, y, update_lr=2.0)
        state = model.state_dict()
        with compiled_execution(False):
            interp_state = harness._detached_steps(x, y, state, _UPDATE_STEPS)
        with _force_compiled():
            compiled_state = harness._compiled_detached_steps(x, y, state, _UPDATE_STEPS)
        if compiled_state is None:
            result.cases.append(_declined(
                f"{family}.detached_steps", "_compiled_detached_steps"
            ))
        else:
            result.cases.append(_compare(
                f"{family}.detached_steps",
                [(interp_state[name], compiled_state[name]) for name in state],
                tolerance,
            ))

        # -- second order (Eq. 10 objective + d/d-encodings) ------------
        poison_i = Tensor(encodings.copy(), requires_grad=True)
        with compiled_execution(False):
            obj_i = harness.poisoning_objective(fresh(), poison_i, y_norm, _UPDATE_STEPS)
            (grad_i,) = grad(obj_i, [poison_i])
        poison_c = Tensor(encodings.copy(), requires_grad=True)
        with _force_compiled():
            obj_c = harness._compiled_poisoning_objective(
                fresh(), poison_c, y_norm, _UPDATE_STEPS
            )
            if obj_c is None:
                result.cases.append(_declined(
                    f"{family}.second_order", "_compiled_poisoning_objective"
                ))
                continue
            (grad_c,) = grad(obj_c, [poison_c])
        result.cases.append(_compare(
            f"{family}.second_order",
            [(obj_i.data, obj_c.data), (grad_i.data, grad_c.data)],
            tolerance,
        ))
    return result
