"""AST lint framework: rule registry, file walking, suppression handling.

The linter exists to enforce the repo's correctness invariants — above all
determinism (every random draw flows through ``repro.utils.rng``) — rather
than style. Each rule lives in its own module under
``repro.analysis.rules`` and registers itself with :func:`register`; the
walker parses each target file once and hands the tree to every rule.

Suppression: a ``# noqa`` comment silences every rule on that line, and
``# noqa: R001, R005`` silences only the listed rule ids. Use sparingly —
the self-lint test keeps ``src/repro`` at zero findings, so a suppression
is a permanent, visible exemption.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Iterable, Iterator

SEVERITIES = ("error", "warning")

_NOQA_RE = re.compile(r"#\s*noqa(?::(?P<ids>[\sA-Za-z0-9,]+))?", re.IGNORECASE)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint violation, pointing at ``path:line:col``.

    ``end_line`` is the last physical line of the flagged statement; a
    ``# noqa`` on any line in ``[line, end_line]`` suppresses the finding,
    so multi-line statements can carry the comment on a continuation line.
    """

    rule_id: str
    message: str
    path: str
    line: int
    col: int
    severity: str = "error"
    hint: str | None = None
    end_line: int | None = None
    #: Logical anchor for findings without a real file location (IR
    #: verifier findings name the plan and node here; SARIF emits it as a
    #: logicalLocation).
    logical: str | None = None

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)


@dataclasses.dataclass
class LintContext:
    """Everything a rule needs to inspect one parsed file."""

    path: Path
    display_path: str
    tree: ast.Module
    source: str
    lines: list[str]
    suppressions: dict[int, set[str] | None]

    @property
    def filename(self) -> str:
        return self.path.name

    @property
    def path_parts(self) -> tuple[str, ...]:
        return self.path.parts

    def is_suppressed(self, rule_id: str, line: int, end_line: int | None = None) -> bool:
        return suppressed_in_range(self.suppressions, rule_id, line, end_line)


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` (``R###``), ``title`` (kebab-case name),
    ``severity`` and ``hint``, then implement :meth:`check` yielding
    :class:`Finding` objects. Register with the :func:`register` decorator.
    """

    rule_id: str = ""
    title: str = ""
    severity: str = "error"
    hint: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: LintContext,
        node: ast.AST,
        message: str,
        severity: str | None = None,
        hint: str | None = None,
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            message=message,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            severity=severity or self.severity,
            hint=hint if hint is not None else (self.hint or None),
            end_line=getattr(node, "end_lineno", None),
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not re.fullmatch(r"R\d{3}", cls.rule_id):
        raise ValueError(f"rule id must look like R001, got {cls.rule_id!r}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"severity must be one of {SEVERITIES}, got {cls.severity!r}")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def rule_ids() -> list[str]:
    """Sorted ids of every registered per-file lint rule."""
    from repro.analysis import rules as _rules  # noqa — import registers the rules

    del _rules
    return sorted(_REGISTRY)


def _validated_ids(raw: Iterable[str], kind: str) -> set[str]:
    ids = {s.strip().upper() for s in raw if s.strip()}
    unknown = ids - set(_REGISTRY)
    if unknown:
        raise KeyError(
            f"unknown rule ids in {kind}: {', '.join(sorted(unknown))} "
            f"(known lint rules: {', '.join(sorted(_REGISTRY))})"
        )
    return ids


def all_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Instantiate registered rules, restricted by ``select`` / ``ignore`` ids.

    Unknown ids in either list raise ``KeyError`` naming the offending ids
    and the known ones — a silently ignored typo would disable a gate.
    """
    from repro.analysis import rules as _rules  # noqa — import registers the rules

    del _rules
    wanted = None if select is None else _validated_ids(select, "--select")
    dropped = set() if ignore is None else _validated_ids(ignore, "--ignore")
    return [
        cls()
        for rule_id, cls in sorted(_REGISTRY.items())
        if (wanted is None or rule_id in wanted) and rule_id not in dropped
    ]


def suppressed_in_range(
    suppressions: dict[int, set[str] | None],
    rule_id: str,
    line: int,
    end_line: int | None = None,
) -> bool:
    """Is ``rule_id`` silenced by a noqa on any line of ``[line, end_line]``?"""
    end = line if end_line is None or end_line < line else end_line
    for noqa_line, ids in suppressions.items():
        if line <= noqa_line <= end and (ids is None or rule_id in ids):
            return True
    return False


def collect_suppressions(lines: list[str]) -> dict[int, set[str] | None]:
    out: dict[int, set[str] | None] = {}
    for i, line in enumerate(lines, start=1):
        if "#" not in line:
            continue
        match = _NOQA_RE.search(line)
        if not match:
            continue
        ids = match.group("ids")
        if ids is None:
            out[i] = None
        else:
            out[i] = {part.strip().upper() for part in ids.split(",") if part.strip()}
    return out


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_file(
    path: Path | str,
    rules: list[Rule] | None = None,
    display_path: str | None = None,
) -> list[Finding]:
    """Lint one file, returning findings sorted by position."""
    path = Path(path)
    if rules is None:
        rules = all_rules()
    display = display_path if display_path is not None else str(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="E999",
                message=f"syntax error: {exc.msg}",
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                severity="error",
            )
        ]
    lines = source.splitlines()
    ctx = LintContext(
        path=path,
        display_path=display,
        tree=tree,
        source=source,
        lines=lines,
        suppressions=collect_suppressions(lines),
    )
    findings = [
        f
        for rule in rules
        for f in rule.check(ctx)
        if not ctx.is_suppressed(f.rule_id, f.line, f.end_line)
    ]
    findings.sort(key=Finding.sort_key)
    return findings


def run_lint(
    paths: Iterable[Path | str],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every python file under ``paths`` with the (selected) rules."""
    rules = all_rules(select=select, ignore=ignore)
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rules=rules))
    findings.sort(key=Finding.sort_key)
    return findings


# ----------------------------------------------------------------------
# shared AST helpers for the rule modules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local bound names to the canonical dotted module/object path.

    Covers ``import numpy as np`` (``np -> numpy``) and
    ``from numpy.random import default_rng as rng_fn``
    (``rng_fn -> numpy.random.default_rng``).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = canonical
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def canonical_call_name(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a call target, resolving import aliases."""
    name = dotted_name(call.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    resolved = aliases.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved
