"""Whole-program model: modules, symbols, references, call resolution.

:func:`build_program` parses every python file under the *target* paths
(where findings may be reported) plus any *reference* paths (tests,
benchmarks, examples — parsed so the analyses see the whole universe of
callers, but never flagged themselves). Dotted module names are derived
from the on-disk package structure (``src/repro/attack/algorithms.py`` →
``repro.attack.algorithms``), so resolution works the same for the
installed package and for throwaway fixture trees in tests.

The model is deliberately syntactic-plus: it indexes

* every top-level function and class method as a :class:`FunctionInfo`
  with a stable qualname (``repro.nn.module.Module.zero_grad``);
* every *name reference* in the program — ``ast.Name`` loads,
  ``ast.Attribute`` accesses, ``from x import y`` aliases and ``__all__``
  strings — which is what the dead-code rule consumes;
* per-module import aliases, reusing the walker's resolution helpers, so
  a call expression can be resolved to the project function it targets.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.walker import (
    canonical_call_name,
    collect_suppressions,
    import_aliases,
    iter_python_files,
)


@dataclasses.dataclass
class FunctionInfo:
    """One top-level function or class method."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    owner: str | None = None  # owning class name, if a method

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def end_lineno(self) -> int:
        return self.node.end_lineno or self.node.lineno

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    def param_names(self) -> list[str]:
        args = self.node.args
        named = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        named += [a for a in (args.vararg, args.kwarg) if a is not None]
        return [a.arg for a in named]

    def param_annotations(self) -> dict[str, str]:
        """Map parameter name to the source text of its annotation."""
        args = self.node.args
        out: dict[str, str] = {}
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.annotation is not None:
                out[arg.arg] = ast.unparse(arg.annotation)
        return out


@dataclasses.dataclass
class ClassInfo:
    """One top-level class and its directly defined methods."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    path: Path
    display_path: str
    tree: ast.Module
    lines: list[str]
    suppressions: dict[int, set[str] | None]
    aliases: dict[str, str]
    is_target: bool
    functions: dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    classes: dict[str, ClassInfo] = dataclasses.field(default_factory=dict)

    @property
    def path_parts(self) -> tuple[str, ...]:
        return self.path.parts


@dataclasses.dataclass(frozen=True)
class Reference:
    """One occurrence of a name somewhere in the program."""

    module: str
    line: int


class Program:
    """The whole-program index the flow rules operate on."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.references: dict[str, list[Reference]] = {}

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def target_modules(self) -> Iterator[ModuleInfo]:
        for name in sorted(self.modules):
            module = self.modules[name]
            if module.is_target:
                yield module

    def all_functions(self, module: ModuleInfo) -> Iterator[FunctionInfo]:
        """Top-level functions then methods, in definition order per scope."""
        yield from module.functions.values()
        for cls in module.classes.values():
            yield from cls.methods.values()

    def enclosing_function(self, module: ModuleInfo, line: int) -> FunctionInfo | None:
        """The innermost indexed function whose span contains ``line``."""
        best: FunctionInfo | None = None
        for fn in self.all_functions(module):
            if fn.lineno <= line <= fn.end_lineno:
                if best is None or fn.lineno >= best.lineno:
                    best = fn
        return best

    def resolve_call(
        self, module: ModuleInfo, call: ast.Call, cls: str | None = None
    ) -> FunctionInfo | None:
        """Resolve a call expression to the project function it targets.

        Handles local names, import aliases (``from repro.x import f``),
        dotted module access (``algorithms.train(...)``), and ``self.m()``
        within a method of class ``cls``. Returns ``None`` for anything
        the symbol table cannot prove (builtins, numpy, dynamic dispatch).
        """
        canonical = canonical_call_name(call, module.aliases)
        if canonical is None:
            return None
        if canonical.startswith("self.") and cls is not None:
            method = canonical[len("self."):]
            if "." not in method:
                return self.functions.get(f"{module.name}.{cls}.{method}")
            return None
        candidates = (canonical, f"{module.name}.{canonical}")
        for qualname in candidates:
            found = self.functions.get(qualname)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_module(self, path: Path, is_target: bool, cache=None) -> None:
        raw = path.read_bytes()
        if cache is not None:
            from repro.analysis.flow.cache import content_digest

            digest = content_digest(raw, path)
            cached = cache.get(digest)
            if cached is not None:
                module, references = cached
                module.is_target = is_target
                self._register(module, references)
                return
        try:
            source = raw.decode("utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError):
            # The per-file linter reports E999 for target files; the flow
            # layer just leaves broken files out of the universe.
            return
        lines = source.splitlines()
        name = _module_name(path)
        module = ModuleInfo(
            name=name,
            path=path,
            display_path=str(path),
            tree=tree,
            lines=lines,
            suppressions=collect_suppressions(lines),
            aliases=import_aliases(tree),
            is_target=is_target,
        )
        self._index_symbols(module)
        references = _collect_references(module.tree)
        self._register(module, references)
        if cache is not None:
            cache.put(digest, (module, references))

    def _register(self, module: ModuleInfo, references: list[tuple[str, int]]) -> None:
        self.modules[module.name] = module
        for info in self.all_functions(module):
            self.functions[info.qualname] = info
        for name, line in references:
            self.references.setdefault(name, []).append(Reference(module.name, line))

    def _index_symbols(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module.name}.{node.name}",
                    module=module.name,
                    name=node.name,
                    node=node,
                )
                module.functions[node.name] = info
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{module.name}.{node.name}",
                    module=module.name,
                    name=node.name,
                    node=node,
                )
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = FunctionInfo(
                            qualname=f"{cls.qualname}.{item.name}",
                            module=module.name,
                            name=item.name,
                            node=item,
                            owner=node.name,
                        )
                        cls.methods[item.name] = info
                        self.functions[info.qualname] = info
                module.classes[node.name] = cls

def _collect_references(tree: ast.Module) -> list[tuple[str, int]]:
    """Every ``(name, line)`` reference in a module — cache-friendly."""
    out: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            out.append((node.id, node.lineno))
        elif isinstance(node, ast.Attribute):
            out.append((node.attr, node.lineno))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                out.append((alias.name.split(".")[-1], node.lineno))
        elif isinstance(node, ast.Assign) and _is_dunder_all(node):
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    out.append((sub.value, node.lineno))
    return out


def _is_dunder_all(node: ast.Assign) -> bool:
    return any(
        isinstance(target, ast.Name) and target.id == "__all__"
        for target in node.targets
    )


def _module_name(path: Path) -> str:
    """Dotted module name derived from the enclosing package structure."""
    parts: list[str] = [] if path.name == "__init__.py" else [path.stem]
    current = path.resolve().parent
    while (current / "__init__.py").is_file():
        parts.insert(0, current.name)
        current = current.parent
    return ".".join(parts) if parts else path.stem


def build_parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Map each AST node to its parent (the stdlib ast has no uplinks)."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def build_program(
    target_paths: Iterable[Path | str],
    reference_paths: Iterable[Path | str] = (),
    cache=None,
) -> Program:
    """Parse and index targets plus the surrounding reference universe.

    ``cache`` is an optional
    :class:`~repro.analysis.flow.cache.ProgramCache`: unchanged files
    load their parsed module and symbol tables straight from it.
    """
    program = Program()
    seen: set[Path] = set()
    for path in iter_python_files(target_paths):
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            program.add_module(path, is_target=True, cache=cache)
    for path in iter_python_files(reference_paths):
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            program.add_module(path, is_target=False, cache=cache)
    return program
