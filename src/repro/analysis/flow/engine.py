"""Flow-rule registry and driver, mirroring the per-file walker's API.

Flow rules (R007+) need the whole program at once — a call graph, a
reference index, helper-return summaries — so they cannot run inside the
per-file ``lint_file`` loop. They share everything else with the linter:
the :class:`~repro.analysis.walker.Finding` type, the text/JSON report
renderers, and ``# noqa`` suppression semantics (any line of the flagged
statement can carry the comment).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.flow.program import ModuleInfo, Program, build_program
from repro.analysis.walker import SEVERITIES, Finding, suppressed_in_range


class FlowRule:
    """Base class for whole-program rules.

    Subclasses set ``rule_id``/``title``/``severity``/``hint`` and
    implement :meth:`check` over a :class:`Program`, yielding findings
    against *target* modules only.
    """

    rule_id: str = ""
    title: str = ""
    severity: str = "error"
    hint: str = ""

    def check(self, program: Program) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            message=message,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            severity=self.severity,
            hint=hint if hint is not None else (self.hint or None),
            end_line=getattr(node, "end_lineno", None),
        )


_FLOW_REGISTRY: dict[str, type[FlowRule]] = {}


def register_flow(cls: type[FlowRule]) -> type[FlowRule]:
    """Class decorator adding a flow rule to the registry."""
    if not re.fullmatch(r"R\d{3}", cls.rule_id):
        raise ValueError(f"rule id must look like R007, got {cls.rule_id!r}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"severity must be one of {SEVERITIES}, got {cls.severity!r}")
    if cls.rule_id in _FLOW_REGISTRY and _FLOW_REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate flow rule id {cls.rule_id}")
    _FLOW_REGISTRY[cls.rule_id] = cls
    return cls


def flow_rule_ids() -> list[str]:
    """Sorted ids of every registered whole-program rule."""
    from repro.analysis.flow import rules as _rules  # noqa — import registers the rules

    del _rules
    return sorted(_FLOW_REGISTRY)


def all_flow_rules(select: Iterable[str] | None = None) -> list[FlowRule]:
    """Instantiate registered flow rules, optionally restricted to ids."""
    known = flow_rule_ids()
    wanted = None if select is None else {s.strip().upper() for s in select}
    if wanted is not None:
        unknown = wanted - set(known)
        if unknown:
            raise KeyError(
                f"unknown flow rule ids: {', '.join(sorted(unknown))} "
                f"(known flow rules: {', '.join(known)})"
            )
    return [
        _FLOW_REGISTRY[rule_id]()
        for rule_id in known
        if wanted is None or rule_id in wanted
    ]


def run_flow(
    paths: Iterable[Path | str],
    reference_paths: Iterable[Path | str] = (),
    select: Iterable[str] | None = None,
    program: Program | None = None,
) -> list[Finding]:
    """Run the whole-program rules over ``paths``.

    ``reference_paths`` (tests, benchmarks, examples) widen the universe
    the analyses see — a helper called only from a test is *not* dead —
    without themselves being flagged. A prebuilt ``program`` (e.g. from
    the incremental cache) skips the parse.

    Concurrency findings (R013–R016) and compile-site coverage (R020)
    honor the structured ``# safe:`` suppression in addition to
    ``# noqa``; malformed and non-load-bearing ``# safe:`` annotations
    are themselves reported (E998/E997) against the rules that ran.
    """
    from repro.analysis.concurrency.safe import (
        STRUCTURED_RULE_IDS,
        safe_suppressions,
    )

    rules = all_flow_rules(select=select)
    if program is None:
        program = build_program(paths, reference_paths=reference_paths)
    safe = safe_suppressions(program)
    by_display = {m.display_path: m for m in program.modules.values()}
    findings = []
    for rule in rules:
        for finding in rule.check(program):
            module = by_display.get(finding.path)
            if module is not None:
                if suppressed_in_range(
                    module.suppressions, finding.rule_id, finding.line, finding.end_line
                ):
                    continue
                if finding.rule_id in STRUCTURED_RULE_IDS and safe.suppresses(
                    module, finding.rule_id, finding.line, finding.end_line
                ):
                    continue
            findings.append(finding)
    # Audit the structured suppressions against the rules that actually
    # ran: a note is "unused" only if every rule it names ran and none
    # fired, so a partial --select never produces false E997 findings.
    for finding in safe.findings(ran_ids={rule.rule_id for rule in rules}):
        module = by_display.get(finding.path)
        if module is not None and suppressed_in_range(
            module.suppressions, finding.rule_id, finding.line, finding.end_line
        ):
            continue
        findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings
