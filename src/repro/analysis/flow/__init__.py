"""Whole-program data-flow analysis (repro.analysis v2).

Where the walker lints one file at a time, this subpackage builds a model
of the whole program — symbol table, reference index, call resolution,
RNG taint — and runs rules that need that global view (R007–R010). Entry
points: :func:`run_flow` for findings, :func:`build_program` for the raw
model.
"""

from repro.analysis.flow.dataflow import RngTaint, Taint
from repro.analysis.flow.engine import (
    FlowRule,
    all_flow_rules,
    flow_rule_ids,
    register_flow,
    run_flow,
)
from repro.analysis.flow.program import Program, build_program

__all__ = [
    "FlowRule",
    "Program",
    "RngTaint",
    "Taint",
    "all_flow_rules",
    "build_program",
    "flow_rule_ids",
    "register_flow",
    "run_flow",
]
