"""Incremental per-file cache for the whole-program index.

Parsing plus symbol/reference indexing dominates ``pace-repro analyze``
wall-clock on warm trees: the flow rules re-read every file on every run
even though almost none of them changed. This cache stores each file's
parsed :class:`~repro.analysis.flow.program.ModuleInfo` (tree, symbol
tables) and its reference list, keyed by the sha256 of the file's
*content*, its resolved path, and the analyzer's rule-set digest — edit
a file, move it, or change the set of registered rules (a new analyzer
version) and its entry simply misses; stale entries can never be
served.

Entries are written through :func:`repro.store.io.atomic_write_bytes`
(write-then-rename, same guarantees as the artifact store), so a killed
analyze run can never leave a torn pickle behind. A corrupt or
unreadable entry degrades to a re-parse, never an error. ``pace-repro
analyze --no-cache`` bypasses the cache entirely.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

from repro.store.io import atomic_write_bytes

#: Bump when ModuleInfo's shape (or indexing semantics) changes — old
#: entries then miss instead of deserializing into the wrong shape.
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".pace-analyze-cache"

_RULESET_DIGEST: str | None = None


def ruleset_digest() -> str:
    """Digest of the registered rule ids (lint + flow + IR) and version.

    Cached entries written by an analyzer with a different rule set must
    miss: a ModuleInfo parsed before a rule existed may lack whatever
    index that rule consults, and serving it would silently skip the
    rule. The imports are deferred (and the result memoized) because the
    rule registries import this module's writer indirectly.
    """
    global _RULESET_DIGEST
    if _RULESET_DIGEST is None:
        from repro.analysis.flow.engine import flow_rule_ids
        from repro.analysis.ir.rules import ir_rule_ids
        from repro.analysis.walker import rule_ids

        fingerprint = repr(
            (CACHE_VERSION, rule_ids(), flow_rule_ids(), ir_rule_ids())
        )
        _RULESET_DIGEST = hashlib.sha256(
            fingerprint.encode("utf-8")
        ).hexdigest()
    return _RULESET_DIGEST


def _reset_ruleset_digest() -> None:
    """Drop the memoized digest (tests that register temporary rules)."""
    global _RULESET_DIGEST
    _RULESET_DIGEST = None


def content_digest(source: bytes, path: Path) -> str:
    """sha256 over content + resolved path + analyzer rule-set digest."""
    hasher = hashlib.sha256()
    hasher.update(source)
    hasher.update(str(path.resolve()).encode("utf-8"))
    hasher.update(ruleset_digest().encode("ascii"))
    return hasher.hexdigest()


class ProgramCache:
    """Content-addressed store of per-file parse + index results."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _entry_path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str):
        """The cached ``(module, references)`` pair, or None on miss."""
        entry = self._entry_path(digest)
        try:
            payload = entry.read_bytes()
            value = pickle.loads(payload)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, digest: str, value) -> None:
        """Persist ``(module, references)``; failures are non-fatal."""
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            atomic_write_bytes(self._entry_path(digest), payload, fsync=False)
        except Exception:  # noqa: R003 — an unwritable cache must degrade to a miss, not fail the analysis
            # A cache that cannot write is just a cache that always
            # misses; the analysis result is identical either way.
            pass
