"""Reaching definitions and interprocedural RNG taint analysis.

The determinism invariant (README, R001/R006) says every random draw must
flow through ``repro.utils.rng``. The per-file rules can only see the
*construction* of a stream; this module tracks where Generator values
*go*: through local variables, tuple/loop bindings, helper returns, and
into stochastic call sites (``rng.normal(...)``).

The taint lattice is three-valued:

* ``RAW`` — the value originates at a direct ``numpy.random`` constructor
  (``default_rng``/``RandomState``/``Generator``) outside the trusted
  ``utils/rng.py`` boundary, directly or through project helper returns;
* ``BLESSED`` — the value originates at ``derive_rng``/``spawn_rngs`` or
  at a ``seed``/``rng``-style parameter (the caller controls the stream);
* ``UNKNOWN`` — anything the analysis cannot prove. Unknown is never
  reported: the rule built on top (R007) only fires on proven-RAW flows,
  so precision failures cost recall, not false positives.

Definitions are collected per function scope in source order (an
approximation of reaching definitions without a CFG: every definition
textually before the use is considered reaching, and RAW dominates), and
helper-return summaries are solved to a fixpoint over the project call
graph, so a raw generator laundered through two levels of helpers is
still traced back to its constructor.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
from typing import Iterator

from repro.analysis.flow.program import FunctionInfo, ModuleInfo, Program
from repro.analysis.walker import canonical_call_name, dotted_name

RAW_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
})

BLESSED_CONSTRUCTORS = frozenset({
    "repro.utils.rng.derive_rng",
    "repro.utils.rng.spawn_rngs",
})

#: Generator methods that draw from the stream; reaching one of these with
#: a RAW-tainted receiver is the R007 violation.
STOCHASTIC_METHODS = frozenset({
    "random", "normal", "standard_normal", "uniform", "integers", "choice",
    "permutation", "shuffle", "exponential", "poisson", "binomial", "beta",
    "gamma", "lognormal", "geometric", "multivariate_normal", "permuted",
})

_RNG_PARAM_STEMS = ("rng", "seed", "generator", "random_state")

_MAX_CHAIN_DEPTH = 12


class Taint(enum.Enum):
    RAW = "raw"
    BLESSED = "blessed"
    UNKNOWN = "unknown"


@dataclasses.dataclass(frozen=True)
class Origin:
    """Where a value's taint was decided, for diagnostics."""

    taint: Taint
    detail: str = ""
    line: int = 0


_UNKNOWN = Origin(Taint.UNKNOWN)


@dataclasses.dataclass(frozen=True)
class Definition:
    """One binding of a local name: ``name = value`` (or a loop/with form)."""

    name: str
    line: int
    value: ast.expr | None  # None when the bound value is untrackable


def is_trusted_module(module: ModuleInfo) -> bool:
    """Is this the ``repro.utils.rng`` trust boundary itself?"""
    return module.name.endswith("utils.rng") or module.path_parts[-2:] == ("utils", "rng.py")


def collect_definitions(scope: ast.AST) -> dict[str, list[Definition]]:
    """All name bindings inside ``scope``, grouped by name, in line order.

    Covers plain/annotated/walrus assignments, ``for`` targets (the bound
    value is the iterable — element-of semantics are close enough for
    taint), and ``with ... as`` bindings. Tuple-unpacked names are bound
    to ``None`` (untrackable), which classifies as UNKNOWN.
    """
    defs: dict[str, list[Definition]] = {}

    def bind(target: ast.expr, value: ast.expr | None, line: int) -> None:
        if isinstance(target, ast.Name):
            defs.setdefault(target.id, []).append(Definition(target.id, line, value))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind(element, None, line)

    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target, node.value, node.lineno)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            bind(node.target, node.value, node.lineno)
        elif isinstance(node, ast.AugAssign):
            bind(node.target, None, node.lineno)
        elif isinstance(node, ast.NamedExpr):
            bind(node.target, node.value, node.lineno)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target, node.iter, node.lineno)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars, item.context_expr, node.lineno)
    for chain in defs.values():
        chain.sort(key=lambda d: d.line)
    return defs


class RngTaint:
    """Interprocedural RNG taint over a :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.summaries: dict[str, Taint] = {}
        self._defs_cache: dict[int, dict[str, list[Definition]]] = {}
        self._solve_summaries()

    # ------------------------------------------------------------------
    # summaries: does calling this function hand back a raw stream?
    # ------------------------------------------------------------------
    def _solve_summaries(self) -> None:
        functions = self.program.functions
        for qualname, info in functions.items():
            module = self.program.modules.get(info.module)
            trusted = module is not None and is_trusted_module(module)
            self.summaries[qualname] = Taint.BLESSED if trusted else Taint.UNKNOWN
        # Chains of helpers are short; the lattice only moves UNKNOWN ->
        # {RAW, BLESSED}, so a handful of passes reaches the fixpoint.
        for _ in range(8):
            changed = False
            for qualname, info in functions.items():
                module = self.program.modules.get(info.module)
                if module is None or is_trusted_module(module):
                    continue
                summary = self._return_taint(module, info)
                if summary is not self.summaries[qualname]:
                    self.summaries[qualname] = summary
                    changed = True
            if not changed:
                break

    def _return_taint(self, module: ModuleInfo, info: FunctionInfo) -> Taint:
        taints = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                origin = self.classify(module, info, node.value, line=node.lineno)
                taints.append(origin.taint)
        if Taint.RAW in taints:
            return Taint.RAW
        if Taint.BLESSED in taints:
            return Taint.BLESSED
        return Taint.UNKNOWN

    # ------------------------------------------------------------------
    # expression classification
    # ------------------------------------------------------------------
    def classify(
        self,
        module: ModuleInfo,
        scope: FunctionInfo | None,
        expr: ast.expr,
        line: int,
        _visited: frozenset[tuple[int, str]] = frozenset(),
        _depth: int = 0,
    ) -> Origin:
        """Taint of ``expr`` as seen at ``line`` inside ``scope``."""
        if _depth > _MAX_CHAIN_DEPTH:
            return _UNKNOWN
        if isinstance(expr, ast.Call):
            return self._classify_call(module, scope, expr, _visited, _depth)
        if isinstance(expr, ast.Name):
            return self._classify_name(module, scope, expr, line, _visited, _depth)
        if isinstance(expr, ast.Subscript):
            return self.classify(module, scope, expr.value, line, _visited, _depth + 1)
        if isinstance(expr, ast.Attribute):
            # self._rng / config.rng style access: the stream was blessed
            # where it was stored (R006 polices the storing side).
            if any(stem in expr.attr.lower() for stem in _RNG_PARAM_STEMS):
                return Origin(Taint.BLESSED, f"attribute {expr.attr!r}", expr.lineno)
            return _UNKNOWN
        if isinstance(expr, ast.IfExp):
            body = self.classify(module, scope, expr.body, line, _visited, _depth + 1)
            orelse = self.classify(module, scope, expr.orelse, line, _visited, _depth + 1)
            for origin in (body, orelse):
                if origin.taint is Taint.RAW:
                    return origin
            if body.taint is Taint.BLESSED and orelse.taint is Taint.BLESSED:
                return body
            return _UNKNOWN
        return _UNKNOWN

    def _classify_call(
        self,
        module: ModuleInfo,
        scope: FunctionInfo | None,
        call: ast.Call,
        visited: frozenset[tuple[int, str]],
        depth: int,
    ) -> Origin:
        canonical = canonical_call_name(call, module.aliases)
        if canonical is None:
            return _UNKNOWN
        if canonical in RAW_CONSTRUCTORS:
            if is_trusted_module(module):
                return Origin(Taint.BLESSED, canonical, call.lineno)
            short = canonical.replace("numpy.", "np.")
            return Origin(Taint.RAW, f"{short}(...) at line {call.lineno}", call.lineno)
        if canonical in BLESSED_CONSTRUCTORS:
            return Origin(Taint.BLESSED, canonical, call.lineno)
        owner = scope.owner if scope is not None else None
        target = self.program.resolve_call(module, call, cls=owner)
        if target is not None:
            summary = self.summaries.get(target.qualname, Taint.UNKNOWN)
            if summary is Taint.RAW:
                detail = (
                    f"helper {target.name!r} ({target.module}:{target.lineno}), "
                    "which returns a raw numpy.random stream"
                )
                return Origin(Taint.RAW, detail, call.lineno)
            if summary is Taint.BLESSED:
                return Origin(Taint.BLESSED, f"helper {target.name!r}", call.lineno)
        return _UNKNOWN

    def _classify_name(
        self,
        module: ModuleInfo,
        scope: FunctionInfo | None,
        name: ast.Name,
        line: int,
        visited: frozenset[tuple[int, str]],
        depth: int,
    ) -> Origin:
        key = (id(scope.node) if scope is not None else id(module.tree), name.id)
        if key in visited:
            return _UNKNOWN
        visited = visited | {key}
        reaching = [
            d for d in self._definitions(module, scope).get(name.id, []) if d.line <= line
        ]
        blessed: Origin | None = None
        for definition in reaching:
            if definition.value is None:
                continue
            origin = self.classify(
                module, scope, definition.value, definition.line, visited, depth + 1
            )
            if origin.taint is Taint.RAW:
                detail = f"{name.id!r} bound at line {definition.line} from {origin.detail}"
                return Origin(Taint.RAW, detail, definition.line)
            if origin.taint is Taint.BLESSED:
                blessed = origin
        if scope is not None and not reaching and name.id in scope.param_names():
            lowered = name.id.lower()
            annotation = scope.param_annotations().get(name.id, "")
            if any(stem in lowered for stem in _RNG_PARAM_STEMS) or "Generator" in annotation:
                return Origin(Taint.BLESSED, f"parameter {name.id!r}", scope.lineno)
            return _UNKNOWN
        if blessed is not None:
            return blessed
        return _UNKNOWN

    def _definitions(
        self, module: ModuleInfo, scope: FunctionInfo | None
    ) -> dict[str, list[Definition]]:
        node: ast.AST = scope.node if scope is not None else module.tree
        cached = self._defs_cache.get(id(node))
        if cached is None:
            cached = collect_definitions(node)
            self._defs_cache[id(node)] = cached
        return cached

    # ------------------------------------------------------------------
    # stochastic call sites
    # ------------------------------------------------------------------
    def stochastic_sites(self, module: ModuleInfo) -> Iterator[tuple[ast.Call, ast.expr, str]]:
        """Yield ``(call, receiver, method)`` for each draw-like call."""
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in STOCHASTIC_METHODS
            ):
                # np.random.<legacy draw>() is R001's business, and the
                # receiver (np.random) is a module, not a Generator value.
                receiver = dotted_name(node.func.value)
                if receiver is not None:
                    head = receiver.partition(".")[0]
                    resolved = module.aliases.get(head, head)
                    full = receiver.replace(head, resolved, 1)
                    if full == "numpy.random" or full.startswith("numpy.random."):
                        continue
                yield node, node.func.value, node.func.attr
