"""R012 adhoc-artifact-write: every durable byte goes through the store.

PR 5's durability guarantees (atomic write-then-rename, torn-write
detection, fault-injectable crash boundaries, byte-identical resume) all
hang on one funnel: :func:`repro.store.io.atomic_write_bytes` and the
helpers above it. A library module that opens a file for writing, calls
``json.dump``, or uses ``Path.write_text``/``write_bytes`` directly can
leave a truncated artifact behind on a crash — precisely the failure the
store exists to rule out — and silently escapes the fault-injection
sweep, so the crash-recovery tests prove nothing about it.

The rule flags, in target library modules (the :mod:`repro.store`
package itself and test/benchmark/example trees are exempt):

* ``open(path, mode)`` where the mode string writes (``w``/``a``/``x``
  or ``+``);
* ``json.dump`` calls (``json.dumps`` — producing a string — is fine);
* ``.write_text(...)`` / ``.write_bytes(...)`` attribute calls.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.flow.engine import FlowRule, register_flow
from repro.analysis.flow.program import ModuleInfo, Program
from repro.analysis.walker import Finding, canonical_call_name

#: Attribute calls that put bytes on disk without the atomic funnel.
_WRITE_ATTRS = frozenset({"write_text", "write_bytes"})

#: ``open`` mode characters that imply writing.
_WRITE_MODE_CHARS = frozenset("wax+")

#: Directory names whose contents may write ad hoc (not library code).
_EXEMPT_DIRS = frozenset({"tests", "benchmarks", "examples"})


def _is_exempt_module(module: ModuleInfo) -> bool:
    # The store package IS the funnel; everything under a ``store``
    # package keeps its low-level ``open`` rights.
    if "store" in module.name.split("."):
        return True
    return any(part in _EXEMPT_DIRS for part in module.path_parts)


def _open_write_mode(node: ast.Call) -> str | None:
    """The mode string if this is a builtin ``open`` call that writes."""
    if not (isinstance(node.func, ast.Name) and node.func.id == "open"):
        return None
    mode_node = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if not (isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str)):
        return None
    mode = mode_node.value
    if _WRITE_MODE_CHARS & set(mode):
        return mode
    return None


@register_flow
class AdhocArtifactWrite(FlowRule):
    rule_id = "R012"
    title = "adhoc-artifact-write"
    severity = "error"
    hint = (
        "route the write through repro.store.io (atomic_write_json / "
        "atomic_write_bytes) or an ArtifactStore so a crash can never "
        "leave a truncated artifact; suppress with '# noqa: R012' only "
        "for genuinely non-durable output"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        for module in program.target_modules():
            if _is_exempt_module(module):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                described = self._adhoc_write(module, node)
                if described is None:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"{described} bypasses the artifact store's atomic "
                    f"writer — a crash here leaves a torn file no "
                    f"recovery path will detect",
                )

    @staticmethod
    def _adhoc_write(module: ModuleInfo, node: ast.Call) -> str | None:
        mode = _open_write_mode(node)
        if mode is not None:
            return f"open(..., {mode!r})"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _WRITE_ATTRS
        ):
            return f".{node.func.attr}()"
        canonical = canonical_call_name(node, module.aliases)
        if canonical == "json.dump":
            return "json.dump()"
        return None
