"""R010 perf-span-leak: ``PERF.span`` must be a ``with`` context expression.

A perf span folds its elapsed time into the registry in ``__exit__``. Any
use other than directly as a ``with`` item — storing the span, entering
it manually, returning it — has a path where an exception fires between
open and close and the span never lands, silently corrupting every
profile/bench report derived from the run (and, for manual
``__enter__``/``__exit__`` pairs, *every* raising path leaks). The
``with`` form is the only one the language guarantees closes.

The rule resolves the receiver through import aliases: ``PERF.span``,
``registry.PERF.span`` and ``from repro.perf import PERF as P; P.span``
are all recognized. The registry's own module is exempt (it constructs
spans by definition).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.flow.engine import FlowRule, register_flow
from repro.analysis.flow.program import ModuleInfo, Program, build_parent_map
from repro.analysis.walker import Finding, dotted_name

_PERF_RECEIVERS = frozenset({
    "PERF",
    "repro.perf.PERF",
    "repro.perf.registry.PERF",
})


def _is_registry_module(module: ModuleInfo) -> bool:
    return module.path_parts[-2:] == ("perf", "registry.py")


@register_flow
class PerfSpanLeak(FlowRule):
    rule_id = "R010"
    title = "perf-span-leak"
    severity = "error"
    hint = "open the span as 'with PERF.span(name):' so it closes on every path"

    def check(self, program: Program) -> Iterator[Finding]:
        for module in program.target_modules():
            if _is_registry_module(module):
                continue
            parents = build_parent_map(module.tree)
            for node in ast.walk(module.tree):
                if not self._is_perf_span_call(module, node):
                    continue
                parent = parents.get(node)
                if isinstance(parent, ast.withitem):
                    continue
                yield self.finding(
                    module,
                    node,
                    "PERF.span(...) opened outside a 'with' block leaks if "
                    "any statement raises before the span is closed",
                )

    @staticmethod
    def _is_perf_span_call(module: ModuleInfo, node: ast.AST) -> bool:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "span"
        ):
            return False
        receiver = dotted_name(node.func.value)
        if receiver is None:
            return False
        head = receiver.partition(".")[0]
        resolved = module.aliases.get(head, head)
        full = receiver.replace(head, resolved, 1) if resolved != head else receiver
        return full in _PERF_RECEIVERS
