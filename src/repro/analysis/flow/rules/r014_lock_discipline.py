"""R014 lock-discipline: no lock-order cycles, no blocking work under a lock.

Two ways a lock strangles the system:

* **Order cycles.** Thread A holds lock L1 and wants L2; thread B holds
  L2 and wants L1. The rule builds the lock-acquisition graph — an edge
  ``L1 -> L2`` whenever L2 is acquired (directly or through a callee)
  while L1 is held — and reports every elementary cycle.

* **Blocking while held.** A ``COUNT(*)`` scan, a retrain step or a
  ``time.sleep`` executed inside a ``with lock:`` block turns the lock
  into a system-wide stall: every other context queues behind unbounded
  work. The blocking taxonomy is shared with R011 (executor/deployment
  surfaces, trainer entry points), plus ``time.sleep`` and pool fan-out
  calls.

Lock identity and held-sets come from
:mod:`repro.analysis.concurrency.locks`; acquisition is tracked through
``with`` statements (the repo's only locking style).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.concurrency.locks import LockKey, describe_lock, lock_model
from repro.analysis.flow.engine import FlowRule, register_flow
from repro.analysis.flow.program import ModuleInfo, Program
from repro.analysis.flow.rules.r011_blocking_call import (
    _BLOCKING_ATTRS,
    _BLOCKING_FUNCTIONS,
)
from repro.analysis.walker import Finding, canonical_call_name

_BLOCKING_CANONICAL = frozenset(_BLOCKING_FUNCTIONS) | {"time.sleep"}

#: Pool fan-out blocks the caller until every worker finishes.
_FANOUT_ATTRS = frozenset({"map", "starmap", "imap", "imap_unordered"})


def _blocking_description(module: ModuleInfo, call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        if call.func.attr in _BLOCKING_ATTRS:
            return f".{call.func.attr}() (ground-truth/deployment surface)"
        if call.func.attr in _FANOUT_ATTRS:
            return f".{call.func.attr}() (pool fan-out waits for every worker)"
    canonical = canonical_call_name(call, module.aliases)
    if canonical in _BLOCKING_CANONICAL:
        return f"{canonical}()"
    return None


@register_flow
class LockDiscipline(FlowRule):
    rule_id = "R014"
    title = "lock-order-cycle"
    severity = "error"
    hint = (
        "acquire locks in one global order, and move blocking work outside "
        "the critical section (swap state under the lock, process it after "
        "release)"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        model = lock_model(program)
        # ---- lock-order graph: direct + through-callee acquisitions ----
        edges: dict[LockKey, dict[LockKey, tuple[ModuleInfo, ast.AST]]] = {}

        def add_edge(outer: LockKey, inner: LockKey, module: ModuleInfo, node: ast.AST):
            if outer != inner:
                edges.setdefault(outer, {}).setdefault(inner, (module, node))

        for module in program.target_modules():
            for fn in program.all_functions(module):
                info = model.info(fn.qualname)
                for outer, inner, node in info.order_edges:
                    add_edge(outer, inner, module, node)
                for held, call in info.calls_under_lock:
                    target = program.resolve_call(module, call, cls=fn.owner)
                    if target is None:
                        continue
                    for inner in model.transitive.get(target.qualname, ()):
                        for outer in held:
                            add_edge(outer, inner, module, call)

        for cycle in _elementary_cycles(edges):
            first, second = cycle[0], cycle[1 % len(cycle)]
            module, node = edges[first][second]
            chain = " -> ".join(describe_lock(key) for key in (*cycle, cycle[0]))
            yield self.finding(
                module,
                node,
                f"lock-order cycle {chain}: two contexts interleaving these "
                "acquisitions deadlock",
            )

        # ---- blocking calls while a lock is held ----
        for module in program.target_modules():
            for fn in program.all_functions(module):
                info = model.info(fn.qualname)
                for held, call in info.calls_under_lock:
                    description = _blocking_description(module, call)
                    if description is None:
                        continue
                    held_names = ", ".join(sorted(describe_lock(k) for k in held))
                    yield self.finding(
                        module,
                        call,
                        f"blocking call {description} while holding "
                        f"{held_names} — every context sharing the lock "
                        "stalls behind unbounded work",
                    )


def _elementary_cycles(
    edges: dict[LockKey, dict[LockKey, object]]
) -> list[tuple[LockKey, ...]]:
    """Deterministic elementary cycles of the lock-order graph.

    The graph is tiny (a handful of locks), so a DFS from each node in
    sorted order is plenty; cycles are deduplicated by rotation.
    """
    seen: set[frozenset[LockKey]] = set()
    out: list[tuple[LockKey, ...]] = []

    def dfs(start: LockKey, current: LockKey, path: list[LockKey]) -> None:
        for nxt in sorted(edges.get(current, ())):
            if nxt == start and len(path) >= 2:
                key = frozenset(path)
                if key not in seen:
                    seen.add(key)
                    rotation = min(range(len(path)), key=lambda i: path[i])
                    out.append(tuple(path[rotation:] + path[:rotation]))
            elif nxt not in path and nxt > start:
                dfs(start, nxt, path + [nxt])

    for start in sorted(edges):
        dfs(start, start, [start])
    return sorted(out)
