"""R008 dead-public-code: public symbols nobody references are rot.

A public function or method that no code in the whole analyzed universe
(package sources *plus* tests, benchmarks and examples) ever names is
either leftover from a refactor or an API that silently lost its caller —
both are hazards in a reproduction, where an "available but never
exercised" code path is exactly the kind that drifts subtly wrong.

The reference index is name-based and deliberately generous: an
``ast.Name`` load, an attribute access, a ``from x import y`` alias or an
``__all__`` string anywhere counts as a use, and references inside the
definition's own span (recursion) do not. Dunder methods are exempt (the
interpreter calls them), as is ``main``. That keeps the rule's precision
high enough to gate CI on: what it flags really has zero callers.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.flow.engine import FlowRule, register_flow
from repro.analysis.flow.program import Program
from repro.analysis.walker import Finding

_EXEMPT_NAMES = frozenset({"main"})


@register_flow
class DeadPublicCode(FlowRule):
    rule_id = "R008"
    title = "dead-public-code"
    severity = "error"
    hint = (
        "delete it, wire it into a caller or test, or suppress with "
        "'# noqa: R008' if it is intentionally external-facing"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        for module in program.target_modules():
            for info in program.all_functions(module):
                if not info.is_public or info.name in _EXEMPT_NAMES:
                    continue
                if info.name.startswith("__") and info.name.endswith("__"):
                    continue
                if self._is_referenced(program, module.name, info):
                    continue
                kind = "method" if info.owner else "function"
                label = f"{info.owner}.{info.name}" if info.owner else info.name
                yield self.finding(
                    module,
                    info.node,
                    f"public {kind} {label!r} is never referenced anywhere in "
                    "the analyzed sources (src, tests, benchmarks, examples)",
                )

    @staticmethod
    def _is_referenced(program: Program, module_name: str, info) -> bool:
        for ref in program.references.get(info.name, ()):
            inside_own_def = (
                ref.module == module_name and info.lineno <= ref.line <= info.end_lineno
            )
            if not inside_own_def:
                return True
        return False
