"""R011 blocking-call-in-server-loop: keep ground truth off the hot path.

The serving subsystem splits into a latency-critical estimate path
(``serve/server.py``, ``serve/cache.py``, ``serve/stats.py``, the
cluster's request loops ``cluster/router.py``/``cluster/worker.py``, and
the ops plane's per-tick monitoring path
``ops/tsdb.py``/``ops/detect.py``/``ops/loop.py``) and a background
retrain/repair path (``serve/retrain.py``, ``cluster/promotion.py``,
``ops/actions.py``). The paper's whole threat
model rides on that split: estimates must come from the model alone,
while ``COUNT(*)`` execution and incremental retraining — both unbounded
in cost (a single count scans the table; an update runs K full-batch GD
steps) — happen off the request loop. A ground-truth or retrain call that
creeps into the hot path turns every estimate request into a table scan,
silently destroying the micro-batching throughput the serve benchmark
measures and stalling the simulated clock.

The rule flags, inside the hot-path modules only:

* any attribute call named ``count``/``count_many``/``execute`` (the
  :class:`~repro.db.executor.Executor` and
  :class:`~repro.ce.deployment.DeployedEstimator` blocking surfaces — the
  names are banned outright in these few files, which is the point);
* any call resolving through import aliases to the trainer's
  ``incremental_update``/``train_model``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.flow.engine import FlowRule, register_flow
from repro.analysis.flow.program import ModuleInfo, Program
from repro.analysis.walker import Finding, canonical_call_name

#: Attribute-call names that always mean blocking work on these surfaces.
_BLOCKING_ATTRS = frozenset({"count", "count_many", "execute"})

#: Trainer entry points that must never run on the estimate path.
_BLOCKING_FUNCTIONS = frozenset({
    "repro.ce.trainer.incremental_update",
    "repro.ce.trainer.train_model",
})

#: The latency-critical modules, per package. The background modules
#: (``serve/retrain.py``, ``cluster/promotion.py``, ``ops/actions.py``,
#: the sim/bench drivers) are exempt by design — that is where blocking
#: work belongs.
_HOT_PATH_FILES: dict[str, frozenset[str]] = {
    "serve": frozenset({"server.py", "cache.py", "stats.py"}),
    "cluster": frozenset({"router.py", "worker.py"}),
    "ops": frozenset({"tsdb.py", "detect.py", "loop.py"}),
}


def _is_hot_path_module(module: ModuleInfo) -> bool:
    parts = module.path_parts
    return (
        len(parts) >= 2
        and parts[-1] in _HOT_PATH_FILES.get(parts[-2], frozenset())
    )


@register_flow
class BlockingCallInServerLoop(FlowRule):
    rule_id = "R011"
    title = "blocking-call-in-server-loop"
    severity = "error"
    hint = (
        "move ground-truth execution / retraining into repro.serve.retrain "
        "(the background loop); the estimate hot path may only encode and "
        "run model forwards"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        for module in program.target_modules():
            if not _is_hot_path_module(module):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                blocked = self._blocking_name(module, node)
                if blocked is None:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"blocking call '{blocked}' in the estimate hot path "
                    f"({module.path_parts[-1]}) — ground truth and "
                    f"retraining belong to the background retrain loop",
                )

    @staticmethod
    def _blocking_name(module: ModuleInfo, node: ast.Call) -> str | None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _BLOCKING_ATTRS
        ):
            return node.func.attr
        canonical = canonical_call_name(node, module.aliases)
        if canonical is not None and canonical in _BLOCKING_FUNCTIONS:
            return canonical
        return None
