"""R016 fork-captured-singleton: import-time state mutated after the spawn.

``run_grid``'s workers are forked (or spawned) *after* the parent has
imported everything: any RNG stream, clock, or perf registry bound at
module import time is captured into the child as a frozen copy of the
parent's state at fork. If worker-reachable code then mutates that
singleton — reseeding an RNG, ``install_clock``-ing a FakeClock,
incrementing ``PERF`` counters — the copies silently diverge: every
worker re-runs the same "random" draws, parent timings never see worker
spans, and nothing crashes.

The rule finds module-level bindings that look like captured singleton
state — a project class whose name says it holds process state
(``*Registry``/``*Clock``/``*Rng``/``*State``...), a raw/blessed RNG
constructor, or a captured callable like ``time.perf_counter`` on a
``*clock*``/``*rng*``-named global — and reports the *definition* when
any write to it (a ``global`` rebind, a mutation through the name, or a
self-mutating method of its class) is reachable from the grid-worker
context. The finding points at the definition line because that is
where the fork-capture decision lives, and where the ``# safe: R016``
annotation (worker initializer re-installs the state, counters are
per-process by design, ...) belongs.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.concurrency.contexts import CONTEXT_WORKER, infer_contexts
from repro.analysis.flow.engine import FlowRule, register_flow
from repro.analysis.flow.program import ModuleInfo, Program
from repro.analysis.walker import Finding, canonical_call_name

_SINGLETON_CLASS_RE = re.compile(
    r"(Registry|Clock|Rng|Random|Generator|State|Counter|Cache)"
)
_SINGLETON_NAME_RE = re.compile(r"(rng|random|clock|perf|time|counter|seed)", re.I)

_RNG_CTORS = frozenset({
    "numpy.random.default_rng", "numpy.random.RandomState",
    "repro.utils.rng.derive_rng", "repro.utils.rng.spawn_rngs",
})

_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "move_to_end", "shuffle",
    "seed", "incr",
})


@register_flow
class ForkCapturedSingleton(FlowRule):
    rule_id = "R016"
    title = "fork-captured-singleton"
    severity = "error"
    hint = (
        "re-create the state inside the worker initializer instead of "
        "mutating the forked copy, or annotate the definition with "
        "'# safe: R016 <reason>' (e.g. the initializer reinstalls it)"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        contexts = infer_contexts(program)
        for module in program.target_modules():
            for name, node, described in _singleton_defs(program, module):
                writes = _worker_writes(program, module, name, node, contexts)
                if not writes:
                    continue
                where = "; ".join(writes[:3])
                more = "" if len(writes) <= 3 else f" (+{len(writes) - 3} more)"
                yield self.finding(
                    module,
                    node,
                    f"singleton {name!r} ({described}) is captured at import "
                    f"time by forked workers but mutated from worker-reachable "
                    f"code: {where}{more} — per-process copies diverge silently",
                )


def _singleton_defs(
    program: Program, module: ModuleInfo
) -> Iterator[tuple[str, ast.stmt, str]]:
    """Module-level bindings that look like captured singleton state."""
    for node in module.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        name = target.id
        if isinstance(value, ast.Call):
            canonical = canonical_call_name(value, module.aliases) or ""
            bare = canonical.rsplit(".", 1)[-1]
            if canonical in _RNG_CTORS:
                yield name, node, f"bound from {canonical}(...)"
                continue
            if _resolved_class(program, module, canonical) and (
                _SINGLETON_CLASS_RE.search(bare) or _SINGLETON_NAME_RE.search(name)
            ):
                yield name, node, f"instance of {bare}"
                continue
        if isinstance(value, ast.Attribute) and _SINGLETON_NAME_RE.search(name):
            dotted = ast.unparse(value)
            yield name, node, f"captured callable {dotted}"


def _resolved_class(program: Program, module: ModuleInfo, canonical: str) -> str | None:
    for qualname in (canonical, f"{module.name}.{canonical}"):
        mod_name, _, cls_name = qualname.rpartition(".")
        owner = program.modules.get(mod_name)
        if owner is not None and cls_name in owner.classes:
            return qualname
    return None


def _worker_writes(
    program: Program,
    module: ModuleInfo,
    name: str,
    def_node: ast.stmt,
    contexts,
) -> list[str]:
    """Sites mutating singleton ``name`` from worker-reachable functions."""
    writes: list[str] = []
    # the class behind the singleton, for self-mutation attribution
    cls_qualname: str | None = None
    value = def_node.value if isinstance(def_node, (ast.Assign, ast.AnnAssign)) else None
    if isinstance(value, ast.Call):
        canonical = canonical_call_name(value, module.aliases) or ""
        cls_qualname = _resolved_class(program, module, canonical)

    for other_name in sorted(program.modules):
        other = program.modules[other_name]
        local = _local_binding_for(other, module, name)
        if local is None:
            continue
        for fn in program.all_functions(other):
            if not contexts.reaches(fn.qualname, CONTEXT_WORKER):
                continue
            for node in ast.walk(fn.node):
                if _mutates_name(node, local):
                    writes.append(
                        f"{other.display_path}:{node.lineno} ({fn.name})"
                    )
    if cls_qualname is not None:
        mod_name, _, cls_name = cls_qualname.rpartition(".")
        owner = program.modules.get(mod_name)
        cls = owner.classes.get(cls_name) if owner is not None else None
        if cls is not None:
            for method in cls.methods.values():
                if method.name in {"__init__", "__post_init__"}:
                    continue
                if not contexts.reaches(method.qualname, CONTEXT_WORKER):
                    continue
                for node in ast.walk(method.node):
                    if _mutates_self(node):
                        writes.append(
                            f"{owner.display_path}:{node.lineno} "
                            f"({cls_name}.{method.name})"
                        )
                        break  # one site per method is enough signal
    return sorted(set(writes))


def _local_binding_for(
    other: ModuleInfo, home: ModuleInfo, name: str
) -> str | None:
    """How ``home.name`` is spelled inside ``other``, if importable there."""
    if other.name == home.name:
        return name
    for local, canonical in other.aliases.items():
        if canonical == f"{home.name}.{name}":
            return local
    return None


def _mutates_name(node: ast.AST, name: str) -> bool:
    """Does this statement rebind or mutate-through ``name``?"""
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            root = target
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name) and root.id == name and root is not target:
                return True  # store *through* the singleton
    if isinstance(node, ast.Global) and name in node.names:
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATOR_METHODS
    ):
        root = node.func.value
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name) and root.id == name:
            return True
    return False


def _mutates_self(node: ast.AST) -> bool:
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            root = target
            while isinstance(root, (ast.Attribute, ast.Subscript)):
                root = root.value
            if isinstance(root, ast.Name) and root.id == "self" and root is not target:
                return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _MUTATOR_METHODS
    ):
        root = node.func.value
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if isinstance(root, ast.Name) and root.id == "self":
            return True
    return False
