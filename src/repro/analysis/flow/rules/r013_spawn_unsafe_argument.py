"""R013 spawn-unsafe-argument: nothing unpicklable crosses a process boundary.

``run_grid`` fans jobs out with ``pool.map``; every argument (and the
pool initializer's ``initargs``) is pickled in the parent and unpickled
in the worker. Four families of values survive that trip either not at
all or — worse — *wrongly*:

* lambdas, nested functions and generator expressions (pickle refuses);
* open file handles (``open(...)`` results — the descriptor number is
  meaningless in the child);
* lock objects (``threading.Lock()`` and friends — a pickled lock is a
  *different* lock, so the "shared" exclusion silently isn't);
* :class:`repro.nn.tensor.Tensor` values with ``requires_grad=True`` —
  the autograd graph behind them (parents, grad_fn closures) either
  fails to pickle or detaches silently, and gradients stop flowing.

The rule walks every process-boundary call site recorded by the context
pass and classifies each crossing expression through reaching
definitions and helper-return summaries (same fixpoint style as the RNG
taint in :mod:`~repro.analysis.flow.dataflow`). Thread boundaries
(``Thread(target=...)``) are exempt — nothing is pickled in-process.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.concurrency.contexts import (
    BoundaryCall,
    iter_process_boundaries,
)
from repro.analysis.flow.dataflow import collect_definitions
from repro.analysis.flow.engine import FlowRule, register_flow
from repro.analysis.flow.program import FunctionInfo, ModuleInfo, Program
from repro.analysis.walker import Finding, canonical_call_name

_LOCK_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore", "threading.Event",
    "threading.Barrier", "multiprocessing.Lock", "multiprocessing.RLock",
})

_MAX_DEPTH = 8


class _Picklability:
    """Classify expressions whose pickled form is broken or lying."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.summaries: dict[str, str | None] = {}
        self._defs_cache: dict[int, dict] = {}
        self._solve()

    def _solve(self) -> None:
        for qualname in self.program.functions:
            self.summaries[qualname] = None
        for _ in range(6):
            changed = False
            for qualname, fn in self.program.functions.items():
                if self.summaries[qualname] is not None:
                    continue
                module = self.program.modules.get(fn.module)
                if module is None:
                    continue
                found: str | None = None
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Return) and node.value is not None:
                        found = self.classify(module, fn, node.value, node.lineno)
                        if found is not None:
                            break
                if found is not None:
                    self.summaries[qualname] = found
                    changed = True
            if not changed:
                break

    # ------------------------------------------------------------------
    def classify(
        self,
        module: ModuleInfo,
        scope: FunctionInfo | None,
        expr: ast.expr,
        line: int,
        _depth: int = 0,
    ) -> str | None:
        """Description of the unpicklable member, or None if none proven."""
        if _depth > _MAX_DEPTH:
            return None
        if isinstance(expr, ast.Lambda):
            return "a lambda (pickle refuses function objects defined inline)"
        if isinstance(expr, ast.GeneratorExp):
            return "a generator expression (unpicklable)"
        if isinstance(expr, (ast.ListComp, ast.SetComp)):
            return self.classify(module, scope, expr.elt, line, _depth + 1)
        if isinstance(expr, ast.DictComp):
            return self.classify(module, scope, expr.value, line, _depth + 1)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                found = self.classify(module, scope, element, line, _depth + 1)
                if found is not None:
                    return found
            return None
        if isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is None:
                    continue
                found = self.classify(module, scope, value, line, _depth + 1)
                if found is not None:
                    return found
            return None
        if isinstance(expr, ast.Starred):
            return self.classify(module, scope, expr.value, line, _depth + 1)
        if isinstance(expr, ast.Call):
            return self._classify_call(module, scope, expr, _depth)
        if isinstance(expr, ast.Name):
            return self._classify_name(module, scope, expr, line, _depth)
        return None

    def _classify_call(
        self,
        module: ModuleInfo,
        scope: FunctionInfo | None,
        call: ast.Call,
        depth: int,
    ) -> str | None:
        canonical = canonical_call_name(call, module.aliases)
        if canonical == "open":
            return "an open file handle (descriptors do not survive the spawn)"
        if canonical in _LOCK_CTORS:
            return (
                f"a {canonical.rsplit('.', 1)[-1]}() synchronization primitive "
                "(the unpickled copy is a different lock — exclusion is lost)"
            )
        bare = (canonical or "").rsplit(".", 1)[-1]
        if bare == "Tensor" or (canonical or "").endswith("tensor.Tensor"):
            if self._truthy_keyword(call, "requires_grad"):
                return (
                    "a Tensor with requires_grad=True (its live autograd graph "
                    "does not survive pickling)"
                )
        if self._truthy_keyword(call, "create_graph"):
            return "a value carrying a second-order autograd graph (create_graph=True)"
        owner = scope.owner if scope is not None else None
        target = self.program.resolve_call(module, call, cls=owner)
        if target is not None and depth <= _MAX_DEPTH:
            summary = self.summaries.get(target.qualname)
            if summary is not None:
                return f"the result of {target.name}(), which returns {summary}"
        return None

    def _classify_name(
        self,
        module: ModuleInfo,
        scope: FunctionInfo | None,
        name: ast.Name,
        line: int,
        depth: int,
    ) -> str | None:
        if scope is None:
            return None
        # A reference to a function nested inside the enclosing scope is
        # itself unpicklable (pickle serializes functions by qualname).
        for node in ast.walk(scope.node):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not scope.node
                and node.name == name.id
            ):
                return f"the nested function {name.id!r} (not importable by the worker)"
        defs = self._defs_cache.get(id(scope.node))
        if defs is None:
            defs = collect_definitions(scope.node)
            self._defs_cache[id(scope.node)] = defs
        for definition in defs.get(name.id, ()):
            if definition.line > line or definition.value is None:
                continue
            found = self.classify(
                module, scope, definition.value, definition.line, depth + 1
            )
            if found is not None:
                return f"{name.id!r} (bound at line {definition.line}) holding {found}"
        return None

    @staticmethod
    def _truthy_keyword(call: ast.Call, name: str) -> bool:
        for kw in call.keywords:
            if kw.arg == name:
                return not (
                    isinstance(kw.value, ast.Constant) and not kw.value.value
                )
        return False


@register_flow
class SpawnUnsafeArgument(FlowRule):
    rule_id = "R013"
    title = "spawn-unsafe-argument"
    severity = "error"
    hint = (
        "pass only plain data across the process boundary (dataclasses of "
        "str/int/ndarray); rebuild handles, locks and autograd state inside "
        "the worker initializer"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        picklability = _Picklability(program)
        for boundary in iter_process_boundaries(program):
            if not boundary.module.is_target:
                continue
            yield from self._check_boundary(program, picklability, boundary)

    def _check_boundary(
        self, program: Program, picklability: _Picklability, boundary: BoundaryCall
    ) -> Iterator[Finding]:
        module = boundary.module
        scope = boundary.scope
        seen_lines: set[tuple[int, int]] = set()
        for label, expr in boundary.payloads:
            description = picklability.classify(module, scope, expr, expr.lineno)
            if description is None:
                continue
            key = (expr.lineno, expr.col_offset)
            if key in seen_lines:
                continue
            seen_lines.add(key)
            yield self.finding(
                module,
                expr,
                f"{label} of {boundary.kind} call crosses the process "
                f"boundary but contains {description}",
            )
