"""Whole-program flow rules (R007+). Importing registers them."""

from repro.analysis.flow.rules import (  # noqa: F401 — imports register rules
    r007_rng_taint,
    r008_dead_code,
    r009_shape_contract,
    r010_span_leak,
    r011_blocking_call,
    r012_adhoc_artifact_write,
    r013_spawn_unsafe_argument,
    r014_lock_discipline,
    r015_cross_context_global,
    r016_fork_captured_singleton,
    r020_compile_site_coverage,
)
