"""R015 cross-context-mutable-global: shared state needs a lock or a reason.

The repo's singletons — the ``PERF`` registry, the installable clock,
the executor's LRU caches, the workload's per-encoder encoding memo —
are mutated from code that the context pass proves reachable from two or
more execution contexts (main, grid worker, retrain loop). Each such
write must either

* happen while a lock is held (the held-set analysis checks the write
  line), or
* carry a structured ``# safe: R015 <reason>`` annotation — on the write
  itself, on the attribute's ``__init__`` line (covers the attribute
  class-wide), or on the module-level singleton's definition line
  (covers every write to that global).

Flagged write shapes:

* rebinding a ``global`` name;
* subscript/attribute stores and container-mutator calls
  (``.append``/``.update``/``.move_to_end``/...) through a module-level
  binding, in this module or through an import alias;
* the same shapes through ``self.<attr>`` where the owning class is in
  the shared-instance closure and the attribute is a mutable cache
  initialized in ``__init__`` (a private ``Optimizer``'s caches are not
  findings — only instances that can actually be reached from two
  contexts);
* ``object.__setattr__(self, ...)`` lazy memos on shared frozen
  dataclasses;
* ``lru_cache`` memos on multi-context functions (each process keeps a
  divergent copy — correct only if the cached value is derived purely
  from the arguments).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.concurrency.contexts import ContextMap, infer_contexts
from repro.analysis.concurrency.locks import LockModel, lock_model
from repro.analysis.concurrency.safe import safe_suppressions
from repro.analysis.concurrency.sharing import SharingModel, has_lru_decorator, sharing_model
from repro.analysis.flow.engine import FlowRule, register_flow
from repro.analysis.flow.program import FunctionInfo, ModuleInfo, Program
from repro.analysis.walker import Finding

#: Method names that mutate the receiver container in place.
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "move_to_end", "appendleft",
    "cache_clear",
})

_INIT_METHODS = frozenset({"__init__", "__post_init__"})


def _module_level_bindings(module: ModuleInfo) -> dict[str, int]:
    """Names bound at module scope, mapped to their definition line."""
    out: dict[str, int] = {}
    for node in module.tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                out.setdefault(target.id, node.lineno)
    return out


def _root_name(expr: ast.expr) -> ast.Name | None:
    """The leftmost Name of an attribute/subscript chain."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr if isinstance(expr, ast.Name) else None


@register_flow
class CrossContextMutableGlobal(FlowRule):
    rule_id = "R015"
    title = "cross-context-mutable-global"
    severity = "error"
    hint = (
        "guard the write with a lock, or annotate it with "
        "'# safe: R015 <reason>' (on the write, the attribute's __init__ "
        "line, or the singleton's definition line) stating why it cannot race"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        contexts = infer_contexts(program)
        locks = lock_model(program)
        sharing = sharing_model(program)
        safe = safe_suppressions(program)
        self._bindings_cache: dict[str, dict[str, int]] = {}
        for module in program.target_modules():
            for fn in program.all_functions(module):
                if not contexts.is_multi_context(fn.qualname):
                    continue
                if has_lru_decorator(module, fn) and not safe.suppresses(
                    module, self.rule_id, fn.lineno
                ):
                    yield self.finding(
                        module,
                        fn.node,
                        f"lru_cache memo on {fn.name!r}, which is reachable "
                        f"from multiple contexts ({contexts.describe(fn.qualname)}) "
                        "— each process keeps a silently divergent copy",
                    )
                yield from self._check_function(
                    program, module, fn, contexts, locks, sharing, safe
                )

    # ------------------------------------------------------------------
    def _check_function(
        self,
        program: Program,
        module: ModuleInfo,
        fn: FunctionInfo,
        contexts: ContextMap,
        locks: LockModel,
        sharing: SharingModel,
        safe,
    ) -> Iterator[Finding]:
        global_names = {
            name
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        lock_info = locks.info(fn.qualname)
        for node in ast.walk(fn.node):
            described = self._describe_write(
                program, module, fn, node, global_names, sharing
            )
            if described is None:
                continue
            what, def_module, def_line = described
            line = node.lineno
            if lock_info.is_locked(line):
                continue
            if def_module is not None and safe.suppresses(
                def_module, self.rule_id, def_line
            ):
                continue
            yield self.finding(
                module,
                node,
                f"unguarded write to {what} from code reachable in "
                f"multiple contexts: {contexts.describe(fn.qualname)}",
            )

    def _describe_write(
        self,
        program: Program,
        module: ModuleInfo,
        fn: FunctionInfo,
        node: ast.AST,
        global_names: set[str],
        sharing: SharingModel,
    ) -> tuple[str, ModuleInfo | None, int] | None:
        """``(description, defining module, definition line)`` for a write."""
        # -- rebinding a declared global ---------------------------------
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in global_names:
                    line = self._bindings(module).get(target.id, node.lineno)
                    return (f"module global {target.id!r}", module, line)
                store = self._store_target(program, module, fn, target, sharing)
                if store is not None:
                    return store
        if isinstance(node, ast.Delete):
            for target in node.targets:
                store = self._store_target(program, module, fn, target, sharing)
                if store is not None:
                    return store
        # -- container mutator calls -------------------------------------
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS:
                return self._receiver_state(
                    program, module, fn, node.func.value, sharing
                )
            # object.__setattr__(self, "attr", value): frozen-memo write
            if (
                node.func.attr == "__setattr__"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "self"
                and fn.owner is not None
                and fn.name not in _INIT_METHODS
            ):
                cls_qualname = f"{module.name}.{fn.owner}"
                if sharing.is_shared(cls_qualname):
                    cls = module.classes.get(fn.owner)
                    line = cls.node.lineno if cls is not None else fn.lineno
                    return (
                        f"frozen-instance memo of shared {fn.owner} "
                        "(object.__setattr__)",
                        module,
                        line,
                    )
        return None

    def _store_target(
        self,
        program: Program,
        module: ModuleInfo,
        fn: FunctionInfo,
        target: ast.expr,
        sharing: SharingModel,
    ) -> tuple[str, ModuleInfo | None, int] | None:
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return None
        return self._receiver_state(program, module, fn, target.value, sharing)

    def _receiver_state(
        self,
        program: Program,
        module: ModuleInfo,
        fn: FunctionInfo,
        receiver: ast.expr,
        sharing: SharingModel,
    ) -> tuple[str, ModuleInfo | None, int] | None:
        """Is ``receiver`` (being stored into / mutated) shared state?"""
        # self.<attr> on a shared class, where <attr> is a cache attribute
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and fn.owner is not None
        ):
            if fn.name in _INIT_METHODS:
                return None  # construction happens-before sharing
            cls_qualname = f"{module.name}.{fn.owner}"
            if not sharing.is_shared(cls_qualname):
                return None
            init = sharing.attr_init(cls_qualname, receiver.attr)
            if init is None:
                return None
            reason = sharing.reason(cls_qualname)
            return (
                f"cache attribute self.{receiver.attr} of {fn.owner} ({reason})",
                module,
                init.line,
            )
        root = _root_name(receiver)
        if root is None or root.id == "self":
            return None
        # direct module-level binding of this module
        if root.id not in self._local_names(fn):
            bindings = self._bindings(module)
            if root.id in bindings:
                return (
                    f"module-level state {root.id!r}",
                    module,
                    bindings[root.id],
                )
            alias = module.aliases.get(root.id)
            if alias is not None and "." in alias:
                mod_name, _, bound = alias.rpartition(".")
                other = program.modules.get(mod_name)
                if other is not None and bound in self._bindings(other):
                    return (
                        f"module-level state {mod_name}.{bound}",
                        other,
                        self._bindings(other)[bound],
                    )
        return None

    def _bindings(self, module: ModuleInfo) -> dict[str, int]:
        cached = self._bindings_cache.get(module.name)
        if cached is None:
            cached = _module_level_bindings(module)
            self._bindings_cache[module.name] = cached
        return cached

    def _local_names(self, fn: FunctionInfo) -> set[str]:
        """Names bound locally (params + assignments) shadow module globals."""
        cache = getattr(self, "_locals_cache", None)
        if cache is None:
            cache = self._locals_cache = {}
        cached = cache.get(fn.qualname)
        if cached is not None:
            return cached
        names = set(fn.param_names())
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
                elif isinstance(node.target, (ast.Tuple, ast.List)):
                    for element in node.target.elts:
                        if isinstance(element, ast.Name):
                            names.add(element.id)
            elif isinstance(node, ast.Global):
                for name in node.names:
                    names.discard(name)
        cache[fn.qualname] = names
        return names
