"""R020 compile-site-coverage: every ``compiled_call`` site is gated.

The compile pipeline's whole safety story is dynamic: the equivalence
sweep and the compiled gradcheck force-compile every call site and compare
against the interpreter. That story silently breaks the moment someone
adds a ``compiled_call`` site the sweeps never reach — the site ships
with *zero* evidence its plan matches the interpreter. This rule closes
the loop statically: it walks the call graph from the verification
entry points (``run_equivalence``, ``run_compiled_gradcheck``) and flags
any ``compiled_call`` site in a target module whose enclosing function is
unreachable from both.

Reachability is deliberately over-approximate: besides resolvable calls,
any ``Name``/``Attribute`` reference to a known function name counts as
an edge, so harness aliasing (``cls_attr = _Session.helper``) and bound
method dispatch (``harness.helper(...)``) keep a genuinely exercised
site out of the findings. An unreachable verdict therefore means *no
reference chain at all* connects the sweeps to the site.

A site that must stay uncovered (e.g. verified by a dedicated test
instead) carries the structured suppression ``# safe: R020 <reason>``,
which is audited for staleness like the concurrency annotations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.flow.engine import FlowRule, register_flow
from repro.analysis.flow.program import FunctionInfo, Program
from repro.analysis.walker import Finding, canonical_call_name

#: Functions whose bodies (and transitive callees) constitute the
#: dynamic verification gate for compiled plans.
GATE_FUNCTIONS = frozenset({"run_equivalence", "run_compiled_gradcheck"})


def _referenced_names(fn: FunctionInfo) -> set[str]:
    """Every plain or attribute name mentioned inside a function body.

    Dunder names are excluded: ``STATS.__init__()``-style references would
    otherwise edge to *every* constructor in the program and collapse the
    reachability set into "everything", making the rule vacuous.
    """
    names: set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return {n for n in names if not (n.startswith("__") and n.endswith("__"))}


def _site_label(call: ast.Call) -> str:
    """The leading string constant of the site argument, if present."""
    if not call.args:
        return "<unknown>"
    site = call.args[0]
    if isinstance(site, ast.Tuple) and site.elts:
        site = site.elts[0]
    if isinstance(site, ast.Constant) and isinstance(site.value, str):
        return site.value
    return "<dynamic>"


@register_flow
class CompileSiteCoverage(FlowRule):
    rule_id = "R020"
    title = "compile-site-coverage"
    severity = "error"
    hint = (
        "add an equivalence-sweep case (repro.analysis.equivalence) or "
        "gradcheck case exercising this site so its compiled plan is "
        "proven against the interpreter; a site verified by a dedicated "
        "test instead may carry '# safe: R020 <reason>'"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        by_name: dict[str, list[FunctionInfo]] = {}
        for fn in program.functions.values():
            by_name.setdefault(fn.name, []).append(fn)

        reachable: set[str] = set()
        work = [
            fn for name in GATE_FUNCTIONS for fn in by_name.get(name, ())
        ]
        reachable.update(fn.qualname for fn in work)
        while work:
            fn = work.pop()
            for name in _referenced_names(fn):
                for target in by_name.get(name, ()):
                    if target.qualname not in reachable:
                        reachable.add(target.qualname)
                        work.append(target)

        for module in program.target_modules():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                canonical = canonical_call_name(node, module.aliases)
                if canonical is None or canonical.split(".")[-1] != "compiled_call":
                    continue
                enclosing = program.enclosing_function(module, node.lineno)
                if enclosing is not None and enclosing.qualname in reachable:
                    continue
                where = (
                    "at module level"
                    if enclosing is None
                    else f"in {enclosing.qualname}"
                )
                yield self.finding(
                    module,
                    node,
                    f"compiled_call site {_site_label(node)!r} {where} is not "
                    f"reachable from the equivalence sweep or the compiled "
                    f"gradcheck — its plan ships with no proof it matches "
                    f"the interpreter",
                )
