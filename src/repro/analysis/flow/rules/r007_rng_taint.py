"""R007 rng-taint: every Generator reaching a draw must be blessed.

R001 flags the *construction* of a raw ``numpy.random`` stream and R006
checks that public APIs *expose* a seed parameter — both are local,
syntactic checks. R007 closes the gap between them with data flow: it
follows Generator values through local bindings, loop/with targets,
subscripts and project helper returns, and fires where a stream that
provably originates at a raw constructor actually *draws* (``.normal()``,
``.choice()``, ...). A helper that launders ``np.random.default_rng()``
through two levels of calls is still caught at the draw site.

Only proven-RAW flows are reported; anything the analysis cannot resolve
is silently trusted (R001 still guards the construction sites).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.flow.dataflow import RngTaint, Taint, is_trusted_module
from repro.analysis.flow.engine import FlowRule, register_flow
from repro.analysis.flow.program import Program
from repro.analysis.walker import Finding


@register_flow
class RngTaintRule(FlowRule):
    rule_id = "R007"
    title = "rng-taint"
    severity = "error"
    hint = (
        "thread the stream from the caller: construct it with "
        "repro.utils.rng.derive_rng(seed) and pass the Generator down"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        taint = RngTaint(program)
        for module in program.target_modules():
            if is_trusted_module(module):
                continue
            for call, receiver, method in taint.stochastic_sites(module):
                scope = program.enclosing_function(module, call.lineno)
                origin = taint.classify(module, scope, receiver, line=call.lineno)
                if origin.taint is not Taint.RAW:
                    continue
                where = f"in {scope.name!r}" if scope is not None else "at module level"
                yield self.finding(
                    module,
                    call,
                    f"Generator feeding .{method}() {where} traces back to "
                    f"{origin.detail}; streams must originate at "
                    "repro.utils.rng.derive_rng",
                )
