"""R009 shape-contract: statically mis-chained ``repro.nn`` compositions.

An abstract shape interpreter over literal layer compositions: inside a
``Sequential(...)`` (or ``repro.nn.layers.Sequential``) construction it
tracks the feature width through ``Linear(in, out)`` layers — shape-
preserving activations (``ReLU``/``Sigmoid``/``Tanh``/``Dropout``) pass
the width through unchanged — and fires when one Linear's literal
``in_features`` cannot match the previous layer's literal output width.
A mis-chained Sequential raises at *forward* time today, but only on the
first forward of that configuration; the whole point of static analysis
is to catch it before an experiment burns hours to reach that line.

Widths that are not integer literals make the interpreter lose track
(width becomes unknown) rather than guess, so dynamically-built stacks
(``mlp``'s loop, config-driven models) are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.flow.engine import FlowRule, register_flow
from repro.analysis.flow.program import ModuleInfo, Program
from repro.analysis.walker import Finding, canonical_call_name

_SEQUENTIAL_NAMES = frozenset({
    "Sequential",
    "repro.nn.Sequential",
    "repro.nn.layers.Sequential",
})
_LINEAR_NAMES = frozenset({
    "Linear",
    "repro.nn.Linear",
    "repro.nn.layers.Linear",
})
_PASSTHROUGH_NAMES = frozenset({
    "ReLU", "Sigmoid", "Tanh", "Dropout",
    "repro.nn.ReLU", "repro.nn.Sigmoid", "repro.nn.Tanh", "repro.nn.Dropout",
    "repro.nn.layers.ReLU", "repro.nn.layers.Sigmoid",
    "repro.nn.layers.Tanh", "repro.nn.layers.Dropout",
})


def _literal_int(node: ast.expr | None) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _linear_features(call: ast.Call) -> tuple[int | None, int | None]:
    """Literal ``(in_features, out_features)`` of a Linear construction."""
    in_features = _literal_int(call.args[0]) if len(call.args) >= 1 else None
    out_features = _literal_int(call.args[1]) if len(call.args) >= 2 else None
    for keyword in call.keywords:
        if keyword.arg == "in_features":
            in_features = _literal_int(keyword.value)
        elif keyword.arg == "out_features":
            out_features = _literal_int(keyword.value)
    return in_features, out_features


@register_flow
class ShapeContract(FlowRule):
    rule_id = "R009"
    title = "shape-contract"
    severity = "error"
    hint = (
        "each Linear's in_features must equal the previous Linear's "
        "out_features (activations preserve width)"
    )

    def check(self, program: Program) -> Iterator[Finding]:
        for module in program.target_modules():
            yield from self._check_module(module)

    def _check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node, module.aliases)
            if name not in _SEQUENTIAL_NAMES:
                continue
            yield from self._check_chain(module, node)

    def _check_chain(self, module: ModuleInfo, sequential: ast.Call) -> Iterator[Finding]:
        width: int | None = None
        previous_out_line = 0
        for layer in sequential.args:
            if isinstance(layer, ast.Starred) or not isinstance(layer, ast.Call):
                width = None
                continue
            layer_name = canonical_call_name(layer, module.aliases)
            if layer_name in _PASSTHROUGH_NAMES:
                continue
            if layer_name in _LINEAR_NAMES:
                in_features, out_features = _linear_features(layer)
                if width is not None and in_features is not None and in_features != width:
                    yield self.finding(
                        module,
                        layer,
                        f"mis-chained Sequential: this Linear expects "
                        f"in_features={in_features} but the previous layer "
                        f"(line {previous_out_line}) produces width {width}",
                    )
                if out_features is not None:
                    width = out_features
                    previous_out_line = layer.lineno
                else:
                    width = None
            else:
                width = None  # unknown module: lose track, never guess
