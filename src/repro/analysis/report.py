"""Render lint findings as ``file:line:col: rule-id message`` text or JSON."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.walker import Finding


def format_finding(finding: Finding, show_hint: bool = False) -> str:
    line = (
        f"{finding.location}: {finding.rule_id} "
        f"[{finding.severity}] {finding.message}"
    )
    if show_hint and finding.hint:
        line += f"\n    hint: {finding.hint}"
    return line


def summary_line(findings: Sequence[Finding]) -> str:
    if not findings:
        return "clean: no findings"
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    return f"{len(findings)} finding(s): {errors} error(s), {warnings} warning(s)"


def render_text(findings: Sequence[Finding], show_hints: bool = False) -> str:
    lines = [format_finding(f, show_hint=show_hints) for f in findings]
    lines.append(summary_line(findings))
    return "\n".join(lines)


def findings_payload(findings: Sequence[Finding]) -> list[dict]:
    """JSON-ready list form of ``findings`` (shared by lint and analyze)."""
    return [
        {
            "rule": f.rule_id,
            "severity": f.severity,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "message": f.message,
            "hint": f.hint,
        }
        for f in findings
    ]


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(findings_payload(findings), indent=2)


def gradcheck_payload(results) -> dict:
    """JSON-ready form of a :func:`run_gradcheck` result list."""
    # Cast explicitly: max_rel_error can be a numpy scalar, which drags
    # ``passed`` into np.bool_ — neither is JSON serializable.
    return {
        "passed": all(bool(r.passed) for r in results),
        "max_relative_error": float(
            max((r.max_rel_error for r in results), default=0.0)
        ),
        "cases": [
            {
                "name": r.name,
                "max_rel_error": float(r.max_rel_error),
                "checked": int(r.checked),
                "tolerance": float(r.tolerance),
                "passed": bool(r.passed),
                "kernels": list(r.kernels),
            }
            for r in results
        ],
    }


def render_gradcheck_json(results) -> str:
    return json.dumps(gradcheck_payload(results), indent=2)
