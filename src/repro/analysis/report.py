"""Render lint findings as ``file:line:col: rule-id message`` text or JSON."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.walker import Finding


def format_finding(finding: Finding, show_hint: bool = False) -> str:
    line = (
        f"{finding.location}: {finding.rule_id} "
        f"[{finding.severity}] {finding.message}"
    )
    if show_hint and finding.hint:
        line += f"\n    hint: {finding.hint}"
    return line


def summary_line(findings: Sequence[Finding]) -> str:
    if not findings:
        return "clean: no findings"
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    return f"{len(findings)} finding(s): {errors} error(s), {warnings} warning(s)"


def render_text(findings: Sequence[Finding], show_hints: bool = False) -> str:
    lines = [format_finding(f, show_hint=show_hints) for f in findings]
    lines.append(summary_line(findings))
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    payload = [
        {
            "rule": f.rule_id,
            "severity": f.severity,
            "path": f.path,
            "line": f.line,
            "col": f.col,
            "message": f.message,
            "hint": f.hint,
        }
        for f in findings
    ]
    return json.dumps(payload, indent=2)
