"""SARIF 2.1.0 rendering of lint and flow findings.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; emitting it makes ``pace-repro analyze --format sarif`` and
``pace-repro lint --format sarif`` uploadable as CI artifacts and
viewable inline on pull requests. One run object carries the full rule
catalog (R001–R020, the IR-verifier rules, plus the synthetic E-codes)
so every result links back to its rule's description, even for rules
that fired zero times.

IR-verifier findings (R017–R019, and any other finding whose path is a
``<plan:...>`` pseudo-path) have no file to point at — the defect lives
in a compiled plan, not a source line — so they carry a
``logicalLocations`` entry naming the plan (and node) instead of a
``physicalLocation``.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.walker import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Synthetic diagnostics that are not registered Rule/FlowRule classes.
_SYNTHETIC_RULES = {
    "E999": "file could not be parsed (syntax error)",
    "E998": "malformed '# safe:' suppression — expected "
            "'# safe: R0xx[, R0yy] <reason>' with a non-empty reason",
    "E997": "'# safe:' annotation that suppresses nothing (not load-bearing)",
}

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_catalog() -> list[dict]:
    """Every known rule id with its one-line description."""
    from repro.analysis.flow.engine import _FLOW_REGISTRY, flow_rule_ids
    from repro.analysis.ir.rules import IR_RULES
    from repro.analysis.walker import _REGISTRY, rule_ids

    flow_rule_ids()  # import side effect: registers flow rules
    rule_ids()  # likewise for the per-file lint rules
    catalog: list[dict] = []
    for rule_id in sorted(_REGISTRY):
        cls = _REGISTRY[rule_id]
        catalog.append(_rule_entry(rule_id, cls.title, getattr(cls, "hint", "")))
    for rule_id in sorted(_FLOW_REGISTRY):
        cls = _FLOW_REGISTRY[rule_id]
        catalog.append(_rule_entry(rule_id, cls.title, getattr(cls, "hint", "")))
    for rule_id in sorted(IR_RULES):  # R020 registers as a flow rule above
        spec = IR_RULES[rule_id]
        catalog.append(_rule_entry(rule_id, spec["title"], spec["hint"]))
    for rule_id, title in sorted(_SYNTHETIC_RULES.items()):
        catalog.append(_rule_entry(rule_id, title, ""))
    return catalog


def _rule_entry(rule_id: str, title: str, hint: str) -> dict:
    entry = {
        "id": rule_id,
        "shortDescription": {"text": title or rule_id},
    }
    if hint:
        entry["help"] = {"text": hint}
    return entry


def _result(finding: Finding) -> dict:
    location: dict = {}
    if not finding.path.startswith("<"):
        region: dict = {"startLine": finding.line, "startColumn": finding.col}
        if finding.end_line is not None and finding.end_line >= finding.line:
            region["endLine"] = finding.end_line
        location["physicalLocation"] = {
            "artifactLocation": {"uri": finding.path.replace("\\", "/")},
            "region": region,
        }
    if finding.logical:
        location["logicalLocations"] = [
            {"name": finding.logical, "kind": "member"}
        ]
    result = {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [location] if location else [],
    }
    if finding.hint:
        result["message"] = {
            "text": f"{finding.message} (hint: {finding.hint})"
        }
    return result


def sarif_payload(
    findings: Sequence[Finding], tool_name: str = "pace-repro"
) -> dict:
    """The SARIF log object for one analyze/lint run."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": _rule_catalog(),
                    }
                },
                "results": [_result(f) for f in findings],
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding], tool_name: str = "pace-repro"
) -> str:
    return json.dumps(sarif_payload(findings, tool_name=tool_name), indent=2)
