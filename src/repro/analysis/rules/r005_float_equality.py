"""R005 float-equality: exact ``==``/``!=`` on cardinalities and q-errors.

Cardinalities travel through ``float64`` arrays (``Executor.count_many``,
the CE model outputs, q-error summaries), so exact equality is one rounding
step away from a wrong branch. Comparisons where an operand is a float
literal, or is *named* like a cardinality/q-error quantity, must use
``math.isclose``/``np.isclose`` or an explicit inequality threshold.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.walker import Finding, LintContext, Rule, register

# Identifier stems that hold cardinalities / q-error style float quantities
# in this repo. Matched against the last attribute segment or variable name.
_FLOATY_NAME = re.compile(
    r"^(card|cards|cardinality|cardinalities|selectivity|selectivities"
    r"|q_?errors?|qerr|degradation|divergence)$"
)


def _operand_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _operand_name(node.value)
    return None


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _why(node: ast.AST) -> str | None:
    if _is_float_literal(node):
        return "a float literal"
    name = _operand_name(node)
    if name is not None and _FLOATY_NAME.match(name):
        return f"cardinality-like operand {name!r}"
    return None


@register
class FloatEquality(Rule):
    rule_id = "R005"
    title = "float-equality"
    severity = "warning"
    hint = (
        "use math.isclose/np.isclose with an explicit tolerance, or an "
        "inequality (e.g. 'card <= 0' for emptiness checks)"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands[:-1], operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                reason = _why(left) or _why(right)
                if reason is not None:
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx,
                        node,
                        f"exact '{symbol}' comparison involving {reason}",
                    )
                    break
