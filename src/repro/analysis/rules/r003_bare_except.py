"""R003 bare-or-broad-except: handlers that swallow real failures.

``except:`` (which also catches ``KeyboardInterrupt``/``SystemExit``) is
always flagged. ``except Exception``/``except BaseException`` is flagged
unless the handler re-raises, because a broad catch-and-continue can turn
a genuinely broken attack run into a silently weaker result — the exact
evaluation-hygiene failure the paper warns about.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.walker import Finding, LintContext, Rule, dotted_name, register

_BROAD = {"Exception", "BaseException", "builtins.Exception", "builtins.BaseException"}


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


@register
class BareOrBroadExcept(Rule):
    rule_id = "R003"
    title = "bare-or-broad-except"
    severity = "warning"
    hint = (
        "catch the narrowest exception type the block can actually raise "
        "(see repro.utils.errors), or re-raise after handling"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' also catches KeyboardInterrupt and SystemExit",
                    severity="error",
                )
                continue
            name = dotted_name(node.type)
            if name in _BROAD and not _reraises(node):
                yield self.finding(
                    ctx,
                    node,
                    f"broad 'except {name}' without re-raise can hide real failures",
                )
