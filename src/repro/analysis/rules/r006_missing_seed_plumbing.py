"""R006 missing-seed-plumbing: public APIs must expose their randomness.

Public functions in ``attack/``, ``ce/`` and ``workload/`` that construct
an RNG (``derive_rng``, ``spawn_rngs``, ``np.random.default_rng``) must
thread it from the caller: either accept a ``seed``/``rng`` parameter or
derive the stream from an expression that mentions one (``config.seed``,
``self.seed + 1``, ...). A hardcoded or implicit stream makes the function
unreproducible from the experiment's root seed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.walker import (
    Finding,
    LintContext,
    Rule,
    canonical_call_name,
    import_aliases,
    register,
)

_SCOPED_PACKAGES = {"attack", "ce", "workload"}
_CONSTRUCTORS = {
    "derive_rng",
    "spawn_rngs",
    "repro.utils.rng.derive_rng",
    "repro.utils.rng.spawn_rngs",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
}
_SEEDY_PARAM = ("seed", "rng", "generator")


def _in_scope(ctx: LintContext) -> bool:
    return bool(_SCOPED_PACKAGES.intersection(ctx.path_parts[:-1]))


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    return [
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    ] + [a.arg for a in (args.vararg, args.kwarg) if a is not None]


def _mentions_seed(node: ast.AST) -> bool:
    """Does any argument expression reference a seed/rng-named value?"""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.keyword):
            name = sub.arg
        if name is not None and any(stem in name.lower() for stem in _SEEDY_PARAM):
            return True
    return False


@register
class MissingSeedPlumbing(Rule):
    rule_id = "R006"
    title = "missing-seed-plumbing"
    severity = "error"
    hint = (
        "add a 'seed: int | np.random.Generator | None' parameter and pass "
        "it to repro.utils.rng.derive_rng"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not _in_scope(ctx):
            return
        aliases = import_aliases(ctx.tree)
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name.startswith("_"):
                continue
            params = _param_names(fn)
            has_seed_param = any(
                any(stem in p.lower() for stem in _SEEDY_PARAM) for p in params
            )
            if has_seed_param:
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = canonical_call_name(node, aliases)
                if name not in _CONSTRUCTORS:
                    continue
                args_mention_seed = any(
                    _mentions_seed(a) for a in (*node.args, *node.keywords)
                )
                if args_mention_seed:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"public function {fn.name!r} constructs an RNG via "
                    f"{name.rsplit('.', 1)[-1]} but accepts no seed/rng parameter",
                )
