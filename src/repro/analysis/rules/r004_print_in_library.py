"""R004 print-in-library: library modules must log, not print.

``print()`` in library code pollutes benchmark tables and pytest output
and cannot be silenced or redirected centrally. Library modules use
``repro.utils.log.get_logger(__name__)``. CLI entry points (``cli.py``,
``__main__.py``) are exempt: their stdout *is* the interface.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.walker import Finding, LintContext, Rule, register

_EXEMPT_FILENAMES = {"cli.py", "__main__.py"}


@register
class PrintInLibrary(Rule):
    rule_id = "R004"
    title = "print-in-library"
    severity = "warning"
    hint = "use repro.utils.log.get_logger(__name__) and log at an explicit level"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.filename in _EXEMPT_FILENAMES:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "print() in library code bypasses the logging layer",
                )
