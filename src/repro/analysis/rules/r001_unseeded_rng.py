"""R001 unseeded-rng: all randomness must flow through ``repro.utils.rng``.

Any call into ``numpy.random`` outside ``utils/rng.py`` — including
``np.random.default_rng(...)`` with an explicit seed — creates a stream
the central helpers cannot see, so experiments stop being bit-for-bit
reproducible from a single root seed. Legacy global-state calls
(``np.random.seed``, ``np.random.rand``, ...) are worse: they make results
depend on execution order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.walker import (
    Finding,
    LintContext,
    Rule,
    canonical_call_name,
    import_aliases,
    register,
)

_EXEMPT_SUFFIX = ("utils", "rng.py")


@register
class UnseededRng(Rule):
    rule_id = "R001"
    title = "unseeded-rng"
    severity = "error"
    hint = (
        "route randomness through repro.utils.rng.derive_rng/spawn_rngs, "
        "threading an explicit seed or numpy Generator from the caller"
    )

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if ctx.path_parts[-2:] == _EXEMPT_SUFFIX:
            return
        aliases = import_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical_call_name(node, aliases)
            if name is None:
                continue
            if name.startswith("numpy.random.") and name != "numpy.random.Generator":
                short = "np.random." + name[len("numpy.random.") :]
                yield self.finding(
                    ctx,
                    node,
                    f"direct call to {short} outside utils/rng.py bypasses the "
                    "central seeded-RNG plumbing",
                )
