"""Repo-specific lint rules; importing this package registers them all.

| id   | title                | what it protects                             |
|------|----------------------|----------------------------------------------|
| R001 | unseeded-rng         | determinism: all RNG flows through utils/rng |
| R002 | mutable-default-arg  | shared-state bugs across calls               |
| R003 | bare-or-broad-except | silent swallowing of real failures           |
| R004 | print-in-library     | clean stdout for benches and pytest          |
| R005 | float-equality       | exact ``==`` on cardinalities / q-errors     |
| R006 | missing-seed-plumbing| public APIs that hide their randomness       |
"""

from repro.analysis.rules import (  # noqa — imports register the rules
    r001_unseeded_rng,
    r002_mutable_default_arg,
    r003_bare_except,
    r004_print_in_library,
    r005_float_equality,
    r006_missing_seed_plumbing,
)

__all__ = [
    "r001_unseeded_rng",
    "r002_mutable_default_arg",
    "r003_bare_except",
    "r004_print_in_library",
    "r005_float_equality",
    "r006_missing_seed_plumbing",
]
