"""R002 mutable-default-arg: default values shared across calls.

A ``def f(x=[])`` default is evaluated once at definition time; every call
that mutates it corrupts later calls. In an attack pipeline that reuses
generator/trainer entry points across experiment runs, this silently leaks
state between runs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.walker import Finding, LintContext, Rule, register

_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter"}
_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultArg(Rule):
    rule_id = "R002"
    title = "mutable-default-arg"
    severity = "error"
    hint = "default to None and create the container inside the function body"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    where = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {where!r} is shared "
                        "across every call",
                    )
