"""Static analysis and correctness audits for the reproduction.

Four tools live here, all wired into the CLI:

- ``pace-repro lint`` — an AST-based linter with repo-specific per-file
  rules (R001-R006) enforcing the determinism invariant (all randomness
  flows through ``repro.utils.rng``), logging discipline, and
  defensive-coding hygiene. See :mod:`repro.analysis.rules`.
- ``pace-repro analyze`` — the whole-program layer on top: data-flow and
  call-graph rules (R007-R012, :mod:`repro.analysis.flow`), the
  concurrency-safety rules (R013-R016,
  :mod:`repro.analysis.concurrency`), the gradient audit, sanitized
  end-to-end smoke passes over the autograd engine and the serving layer
  (:mod:`repro.analysis.smoke`), a dynamic 2-worker write-trace
  cross-check of the process-context labels
  (:mod:`repro.analysis.concurrency.smoke`), and the compiled-vs-
  interpreted equivalence sweep over every estimator family
  (:mod:`repro.analysis.equivalence`).
- ``pace-repro gradcheck`` — a finite-difference audit of every layer and
  loss in the hand-rolled ``repro.nn`` autograd engine.
- ``pace-repro verify-ir`` — the static IR verifier and translation
  validator for compiled plans (R017-R019, :mod:`repro.analysis.ir`),
  plus the compile-site coverage flow rule (R020); also folded into
  ``analyze``.

Findings render as text, JSON, or SARIF 2.1.0
(:mod:`repro.analysis.sarif`); repeated runs reuse the content-addressed
per-file parse cache (:mod:`repro.analysis.flow.cache`).
"""

from repro.analysis.equivalence import (
    EquivalenceCase,
    EquivalenceResult,
    run_equivalence,
)
from repro.analysis.flow import all_flow_rules, flow_rule_ids, run_flow
from repro.analysis.ir import (
    IRVerificationResult,
    PlanReport,
    fixture_plans,
    ir_rule_ids,
    run_ir_verification,
    verify_plan,
    verify_plans,
)
from repro.analysis.gradcheck import (
    DEFAULT_TOLERANCE,
    GradCheckResult,
    case_names,
    max_relative_error,
    run_compiled_gradcheck,
    run_gradcheck,
)
from repro.analysis.report import (
    findings_payload,
    gradcheck_payload,
    render_gradcheck_json,
    render_json,
    render_text,
    summary_line,
)
from repro.analysis.concurrency.smoke import TraceSmokeResult, run_trace_smoke
from repro.analysis.sarif import render_sarif, sarif_payload
from repro.analysis.smoke import (
    ServeSmokeResult,
    SmokeResult,
    run_serve_smoke,
    run_smoke,
)
from repro.analysis.walker import (
    Finding,
    LintContext,
    Rule,
    all_rules,
    lint_file,
    register,
    rule_ids,
    run_lint,
)

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "all_rules",
    "lint_file",
    "register",
    "rule_ids",
    "run_lint",
    "run_flow",
    "all_flow_rules",
    "flow_rule_ids",
    "render_text",
    "render_json",
    "summary_line",
    "findings_payload",
    "gradcheck_payload",
    "render_gradcheck_json",
    "GradCheckResult",
    "run_gradcheck",
    "run_compiled_gradcheck",
    "max_relative_error",
    "case_names",
    "DEFAULT_TOLERANCE",
    "SmokeResult",
    "run_smoke",
    "ServeSmokeResult",
    "run_serve_smoke",
    "TraceSmokeResult",
    "run_trace_smoke",
    "EquivalenceCase",
    "EquivalenceResult",
    "run_equivalence",
    "IRVerificationResult",
    "PlanReport",
    "fixture_plans",
    "ir_rule_ids",
    "run_ir_verification",
    "verify_plan",
    "verify_plans",
    "render_sarif",
    "sarif_payload",
]
