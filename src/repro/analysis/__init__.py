"""Static analysis and correctness audits for the reproduction.

Two tools live here, both wired into the CLI:

- ``pace-repro lint`` — an AST-based linter with repo-specific rules
  (R001-R006) enforcing the determinism invariant (all randomness flows
  through ``repro.utils.rng``), logging discipline, and defensive-coding
  hygiene. See :mod:`repro.analysis.rules`.
- ``pace-repro gradcheck`` — a finite-difference audit of every layer and
  loss in the hand-rolled ``repro.nn`` autograd engine.
"""

from repro.analysis.gradcheck import (
    DEFAULT_TOLERANCE,
    GradCheckResult,
    case_names,
    max_relative_error,
    run_gradcheck,
)
from repro.analysis.report import render_json, render_text, summary_line
from repro.analysis.walker import (
    Finding,
    LintContext,
    Rule,
    all_rules,
    lint_file,
    register,
    run_lint,
)

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "all_rules",
    "lint_file",
    "register",
    "run_lint",
    "render_text",
    "render_json",
    "summary_line",
    "GradCheckResult",
    "run_gradcheck",
    "max_relative_error",
    "case_names",
    "DEFAULT_TOLERANCE",
]
