"""Finite-difference audit of the ``repro.nn`` autograd engine.

PACE differentiates through the CE model's own update step, so a silently
wrong backward rule corrupts every attack result downstream. This module
sweeps each layer and loss in ``repro.nn``, compares the analytic gradient
(via :func:`repro.nn.grad`) against central finite differences on the raw
numpy data, and reports the worst relative error per case.

All cases are deterministic: inputs, parameters and dropout masks come
from fixed seeds through :func:`repro.utils.rng.derive_rng`, so the audit
itself honors the determinism invariant it helps enforce.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from repro.nn import (
    LSTM,
    RNN,
    Dropout,
    Linear,
    LSTMCell,
    RNNCell,
    Tanh,
    Tensor,
    affine,
    bce_loss,
    grad,
    kl_standard_normal,
    log_q_error_loss,
    mlp,
    mse_loss,
    q_error_loss,
)
from repro.utils.rng import derive_rng

DEFAULT_TOLERANCE = 1e-4
_FD_STEP = 1e-6


@dataclasses.dataclass(frozen=True)
class GradCheckResult:
    """Outcome of one layer/loss sweep."""

    name: str
    max_rel_error: float
    checked: int
    tolerance: float

    @property
    def passed(self) -> bool:
        return self.max_rel_error < self.tolerance


@dataclasses.dataclass(frozen=True)
class _Case:
    name: str
    build: Callable[[], tuple[Callable[[], Tensor], list[tuple[str, Tensor]]]]


def _rand(rng: np.random.Generator, shape, requires_grad: bool = True) -> Tensor:
    return Tensor(rng.normal(0.0, 1.0, size=shape), requires_grad=requires_grad)


def _projected(output: Tensor, projection: np.ndarray) -> Tensor:
    """Scalarize ``output`` with a fixed random projection (not all-ones,
    so sign errors in per-element gradients cannot cancel)."""
    return (output * Tensor(projection)).sum()


def _named_parameters(module) -> list[tuple[str, Tensor]]:
    return list(module.named_parameters())


def _check(
    forward: Callable[[], Tensor],
    wrt: Sequence[tuple[str, Tensor]],
    tolerance: float,
    name: str,
) -> GradCheckResult:
    """Compare analytic and central-finite-difference gradients.

    ``forward`` must rebuild the graph from the *current* ``.data`` of every
    tensor in ``wrt`` on each call, and must be deterministic.
    """
    tensors = [t for _, t in wrt]
    analytic = [g.data.copy() for g in grad(forward(), tensors)]
    max_rel = 0.0
    checked = 0
    for (_, tensor), grad_data in zip(wrt, analytic):
        flat = tensor.data.reshape(-1)
        grad_flat = grad_data.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            step = _FD_STEP * max(1.0, abs(original))
            flat[i] = original + step
            upper = forward().item()
            flat[i] = original - step
            lower = forward().item()
            flat[i] = original
            numeric = (upper - lower) / (2.0 * step)
            a = grad_flat[i]
            rel = abs(a - numeric) / max(1.0, abs(a), abs(numeric))
            max_rel = max(max_rel, rel)
            checked += 1
    return GradCheckResult(
        name=name, max_rel_error=max_rel, checked=checked, tolerance=tolerance
    )


# ----------------------------------------------------------------------
# case builders — one per layer / loss in repro.nn
# ----------------------------------------------------------------------
def _case_linear():
    rng = derive_rng(11)
    layer = Linear(4, 3, rng=rng)
    x = _rand(rng, (5, 4))
    proj = rng.normal(size=(5, 3))
    return lambda: _projected(layer(x), proj), _named_parameters(layer) + [("x", x)]


def _case_linear_no_bias():
    rng = derive_rng(12)
    layer = Linear(3, 2, rng=rng, bias=False)
    x = _rand(rng, (4, 3))
    proj = rng.normal(size=(4, 2))
    return lambda: _projected(layer(x), proj), _named_parameters(layer) + [("x", x)]


def _make_affine_case(activation, seed, with_bias=True):
    """The fused affine kernel, per activation and with/without bias."""
    def build():
        rng = derive_rng(seed)
        x = _rand(rng, (5, 4))
        weight = _rand(rng, (4, 3))
        bias = _rand(rng, (3,)) if with_bias else None
        proj = rng.normal(size=(5, 3))
        wrt = [("x", x), ("weight", weight)]
        if with_bias:
            wrt.append(("bias", bias))
        return (
            lambda: _projected(affine(x, weight, bias, activation), proj),
            wrt,
        )
    return build


def _case_mlp_tanh():
    rng = derive_rng(13)
    net = mlp(4, [6, 5], 2, rng=rng, activation=Tanh)
    x = _rand(rng, (3, 4))
    proj = rng.normal(size=(3, 2))
    return lambda: _projected(net(x), proj), _named_parameters(net) + [("x", x)]


def _case_dropout():
    rng = derive_rng(14)
    layer = Dropout(p=0.4, rng=rng)
    x = _rand(rng, (6, 5))
    proj = rng.normal(size=(6, 5))

    def forward() -> Tensor:
        # The mask is drawn from the layer's stream; pin it so repeated
        # forwards (the FD probes) see the identical mask.
        layer._rng = derive_rng(99)
        return _projected(layer(x), proj)

    return forward, [("x", x)]


def _case_rnn_cell():
    rng = derive_rng(15)
    cell = RNNCell(3, 4, rng=rng)
    x = _rand(rng, (2, 3))
    h = _rand(rng, (2, 4))
    proj = rng.normal(size=(2, 4))
    return (
        lambda: _projected(cell(x, h), proj),
        _named_parameters(cell) + [("x", x), ("h", h)],
    )


def _case_lstm_cell():
    rng = derive_rng(16)
    cell = LSTMCell(3, 4, rng=rng)
    x = _rand(rng, (2, 3))
    h = _rand(rng, (2, 4))
    c = _rand(rng, (2, 4))
    proj_h = rng.normal(size=(2, 4))
    proj_c = rng.normal(size=(2, 4))

    def forward() -> Tensor:
        h_next, c_next = cell(x, h, c)
        return _projected(h_next, proj_h) + _projected(c_next, proj_c)

    return forward, _named_parameters(cell) + [("x", x), ("h", h), ("c", c)]


def _case_rnn():
    rng = derive_rng(17)
    net = RNN(3, 4, rng=rng)
    x = _rand(rng, (2, 3, 3))
    proj = rng.normal(size=(2, 4))
    return lambda: _projected(net(x), proj), _named_parameters(net) + [("x", x)]


def _case_lstm():
    rng = derive_rng(18)
    net = LSTM(3, 4, rng=rng)
    x = _rand(rng, (2, 3, 3))
    proj = rng.normal(size=(2, 4))
    return lambda: _projected(net(x), proj), _named_parameters(net) + [("x", x)]


def _positive_pair(rng: np.random.Generator, n: int) -> tuple[Tensor, Tensor]:
    """Strictly positive (estimated, true) with entries well separated, so
    the FD probes never cross the q-error/abs kink at estimated == true."""
    true = Tensor(rng.uniform(1.0, 10.0, size=n), requires_grad=True)
    estimated = Tensor(true.data * rng.uniform(1.3, 3.0, size=n), requires_grad=True)
    return estimated, true


def _case_q_error_loss():
    rng = derive_rng(19)
    estimated, true = _positive_pair(rng, 6)
    return (
        lambda: q_error_loss(estimated, true),
        [("estimated", estimated), ("true", true)],
    )


def _case_log_q_error_loss():
    rng = derive_rng(20)
    estimated, true = _positive_pair(rng, 6)
    return (
        lambda: log_q_error_loss(estimated, true),
        [("estimated", estimated), ("true", true)],
    )


def _case_mse_loss():
    rng = derive_rng(21)
    prediction = _rand(rng, (4, 3))
    target = _rand(rng, (4, 3))
    return (
        lambda: mse_loss(prediction, target),
        [("prediction", prediction), ("target", target)],
    )


def _case_bce_loss():
    rng = derive_rng(22)
    # Keep probabilities far from the clip boundaries at eps and 1 - eps.
    prediction = Tensor(rng.uniform(0.1, 0.9, size=8), requires_grad=True)
    target = Tensor(rng.uniform(0.2, 0.8, size=8), requires_grad=True)
    return (
        lambda: bce_loss(prediction, target),
        [("prediction", prediction), ("target", target)],
    )


def _case_kl_standard_normal():
    rng = derive_rng(23)
    mu = _rand(rng, (4, 3))
    log_var = _rand(rng, (4, 3))
    return (
        lambda: kl_standard_normal(mu, log_var),
        [("mu", mu), ("log_var", log_var)],
    )


_CASES: tuple[_Case, ...] = (
    _Case("layers.Linear", _case_linear),
    _Case("layers.Linear(bias=False)", _case_linear_no_bias),
    _Case("layers.mlp[Tanh]", _case_mlp_tanh),
    _Case("tensor.affine", _make_affine_case(None, 41)),
    _Case("tensor.affine(no bias)", _make_affine_case(None, 42, with_bias=False)),
    _Case("tensor.affine[relu]", _make_affine_case("relu", 43)),
    _Case("tensor.affine[sigmoid]", _make_affine_case("sigmoid", 44)),
    _Case("tensor.affine[tanh]", _make_affine_case("tanh", 45)),
    _Case("layers.Dropout", _case_dropout),
    _Case("recurrent.RNNCell", _case_rnn_cell),
    _Case("recurrent.LSTMCell", _case_lstm_cell),
    _Case("recurrent.RNN", _case_rnn),
    _Case("recurrent.LSTM", _case_lstm),
    _Case("losses.q_error_loss", _case_q_error_loss),
    _Case("losses.log_q_error_loss", _case_log_q_error_loss),
    _Case("losses.mse_loss", _case_mse_loss),
    _Case("losses.bce_loss", _case_bce_loss),
    _Case("losses.kl_standard_normal", _case_kl_standard_normal),
)


def case_names() -> list[str]:
    return [case.name for case in _CASES]


def run_gradcheck(tolerance: float = DEFAULT_TOLERANCE) -> list[GradCheckResult]:
    """Sweep every registered layer/loss case; returns one result per case."""
    results = []
    for case in _CASES:
        forward, wrt = case.build()
        results.append(_check(forward, wrt, tolerance, case.name))
    return results


def max_relative_error(results: Sequence[GradCheckResult]) -> float:
    return max(r.max_rel_error for r in results)
