"""Finite-difference audit of the ``repro.nn`` autograd engine.

PACE differentiates through the CE model's own update step, so a silently
wrong backward rule corrupts every attack result downstream. This module
sweeps each layer and loss in ``repro.nn``, compares the analytic gradient
(via :func:`repro.nn.grad`) against central finite differences on the raw
numpy data, and reports the worst relative error per case.

All cases are deterministic: inputs, parameters and dropout masks come
from fixed seeds through :func:`repro.utils.rng.derive_rng`, so the audit
itself honors the determinism invariant it helps enforce.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from repro.nn import (
    LSTM,
    RNN,
    Dropout,
    Linear,
    LSTMCell,
    RNNCell,
    Tanh,
    Tensor,
    affine,
    bce_loss,
    grad,
    kl_standard_normal,
    log_q_error_loss,
    mlp,
    mse_loss,
    q_error_loss,
)
from repro.utils.rng import derive_rng

DEFAULT_TOLERANCE = 1e-4
_FD_STEP = 1e-6


@dataclasses.dataclass(frozen=True)
class GradCheckResult:
    """Outcome of one layer/loss sweep.

    ``kernels`` is non-empty for compiled cases: the fused-kernel names
    (``site:forwardN``/``site:backwardN``) whose emitted code the case
    audited.
    """

    name: str
    max_rel_error: float
    checked: int
    tolerance: float
    kernels: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return self.max_rel_error < self.tolerance


@dataclasses.dataclass(frozen=True)
class _Case:
    name: str
    build: Callable[[], tuple[Callable[[], Tensor], list[tuple[str, Tensor]]]]


def _rand(rng: np.random.Generator, shape, requires_grad: bool = True) -> Tensor:
    return Tensor(rng.normal(0.0, 1.0, size=shape), requires_grad=requires_grad)


def _projected(output: Tensor, projection: np.ndarray) -> Tensor:
    """Scalarize ``output`` with a fixed random projection (not all-ones,
    so sign errors in per-element gradients cannot cancel)."""
    return (output * Tensor(projection)).sum()


def _named_parameters(module) -> list[tuple[str, Tensor]]:
    return list(module.named_parameters())


def _check(
    forward: Callable[[], Tensor],
    wrt: Sequence[tuple[str, Tensor]],
    tolerance: float,
    name: str,
) -> GradCheckResult:
    """Compare analytic and central-finite-difference gradients.

    ``forward`` must rebuild the graph from the *current* ``.data`` of every
    tensor in ``wrt`` on each call, and must be deterministic.
    """
    tensors = [t for _, t in wrt]
    analytic = [g.data.copy() for g in grad(forward(), tensors)]
    max_rel = 0.0
    checked = 0
    for (_, tensor), grad_data in zip(wrt, analytic):
        flat = tensor.data.reshape(-1)
        grad_flat = grad_data.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            step = _FD_STEP * max(1.0, abs(original))
            flat[i] = original + step
            upper = forward().item()
            flat[i] = original - step
            lower = forward().item()
            flat[i] = original
            numeric = (upper - lower) / (2.0 * step)
            a = grad_flat[i]
            rel = abs(a - numeric) / max(1.0, abs(a), abs(numeric))
            max_rel = max(max_rel, rel)
            checked += 1
    return GradCheckResult(
        name=name, max_rel_error=max_rel, checked=checked, tolerance=tolerance
    )


# ----------------------------------------------------------------------
# case builders — one per layer / loss in repro.nn
# ----------------------------------------------------------------------
def _case_linear():
    rng = derive_rng(11)
    layer = Linear(4, 3, rng=rng)
    x = _rand(rng, (5, 4))
    proj = rng.normal(size=(5, 3))
    return lambda: _projected(layer(x), proj), _named_parameters(layer) + [("x", x)]


def _case_linear_no_bias():
    rng = derive_rng(12)
    layer = Linear(3, 2, rng=rng, bias=False)
    x = _rand(rng, (4, 3))
    proj = rng.normal(size=(4, 2))
    return lambda: _projected(layer(x), proj), _named_parameters(layer) + [("x", x)]


def _make_affine_case(activation, seed, with_bias=True):
    """The fused affine kernel, per activation and with/without bias."""
    def build():
        rng = derive_rng(seed)
        x = _rand(rng, (5, 4))
        weight = _rand(rng, (4, 3))
        bias = _rand(rng, (3,)) if with_bias else None
        proj = rng.normal(size=(5, 3))
        wrt = [("x", x), ("weight", weight)]
        if with_bias:
            wrt.append(("bias", bias))
        return (
            lambda: _projected(affine(x, weight, bias, activation), proj),
            wrt,
        )
    return build


def _case_mlp_tanh():
    rng = derive_rng(13)
    net = mlp(4, [6, 5], 2, rng=rng, activation=Tanh)
    x = _rand(rng, (3, 4))
    proj = rng.normal(size=(3, 2))
    return lambda: _projected(net(x), proj), _named_parameters(net) + [("x", x)]


def _case_dropout():
    rng = derive_rng(14)
    layer = Dropout(p=0.4, rng=rng)
    x = _rand(rng, (6, 5))
    proj = rng.normal(size=(6, 5))

    def forward() -> Tensor:
        # The mask is drawn from the layer's stream; pin it so repeated
        # forwards (the FD probes) see the identical mask.
        layer._rng = derive_rng(99)
        return _projected(layer(x), proj)

    return forward, [("x", x)]


def _case_rnn_cell():
    rng = derive_rng(15)
    cell = RNNCell(3, 4, rng=rng)
    x = _rand(rng, (2, 3))
    h = _rand(rng, (2, 4))
    proj = rng.normal(size=(2, 4))
    return (
        lambda: _projected(cell(x, h), proj),
        _named_parameters(cell) + [("x", x), ("h", h)],
    )


def _case_lstm_cell():
    rng = derive_rng(16)
    cell = LSTMCell(3, 4, rng=rng)
    x = _rand(rng, (2, 3))
    h = _rand(rng, (2, 4))
    c = _rand(rng, (2, 4))
    proj_h = rng.normal(size=(2, 4))
    proj_c = rng.normal(size=(2, 4))

    def forward() -> Tensor:
        h_next, c_next = cell(x, h, c)
        return _projected(h_next, proj_h) + _projected(c_next, proj_c)

    return forward, _named_parameters(cell) + [("x", x), ("h", h), ("c", c)]


def _case_rnn():
    rng = derive_rng(17)
    net = RNN(3, 4, rng=rng)
    x = _rand(rng, (2, 3, 3))
    proj = rng.normal(size=(2, 4))
    return lambda: _projected(net(x), proj), _named_parameters(net) + [("x", x)]


def _case_lstm():
    rng = derive_rng(18)
    net = LSTM(3, 4, rng=rng)
    x = _rand(rng, (2, 3, 3))
    proj = rng.normal(size=(2, 4))
    return lambda: _projected(net(x), proj), _named_parameters(net) + [("x", x)]


def _positive_pair(rng: np.random.Generator, n: int) -> tuple[Tensor, Tensor]:
    """Strictly positive (estimated, true) with entries well separated, so
    the FD probes never cross the q-error/abs kink at estimated == true."""
    true = Tensor(rng.uniform(1.0, 10.0, size=n), requires_grad=True)
    estimated = Tensor(true.data * rng.uniform(1.3, 3.0, size=n), requires_grad=True)
    return estimated, true


def _case_q_error_loss():
    rng = derive_rng(19)
    estimated, true = _positive_pair(rng, 6)
    return (
        lambda: q_error_loss(estimated, true),
        [("estimated", estimated), ("true", true)],
    )


def _case_log_q_error_loss():
    rng = derive_rng(20)
    estimated, true = _positive_pair(rng, 6)
    return (
        lambda: log_q_error_loss(estimated, true),
        [("estimated", estimated), ("true", true)],
    )


def _case_mse_loss():
    rng = derive_rng(21)
    prediction = _rand(rng, (4, 3))
    target = _rand(rng, (4, 3))
    return (
        lambda: mse_loss(prediction, target),
        [("prediction", prediction), ("target", target)],
    )


def _case_bce_loss():
    rng = derive_rng(22)
    # Keep probabilities far from the clip boundaries at eps and 1 - eps.
    prediction = Tensor(rng.uniform(0.1, 0.9, size=8), requires_grad=True)
    target = Tensor(rng.uniform(0.2, 0.8, size=8), requires_grad=True)
    return (
        lambda: bce_loss(prediction, target),
        [("prediction", prediction), ("target", target)],
    )


def _case_kl_standard_normal():
    rng = derive_rng(23)
    mu = _rand(rng, (4, 3))
    log_var = _rand(rng, (4, 3))
    return (
        lambda: kl_standard_normal(mu, log_var),
        [("mu", mu), ("log_var", log_var)],
    )


_CASES: tuple[_Case, ...] = (
    _Case("layers.Linear", _case_linear),
    _Case("layers.Linear(bias=False)", _case_linear_no_bias),
    _Case("layers.mlp[Tanh]", _case_mlp_tanh),
    _Case("tensor.affine", _make_affine_case(None, 41)),
    _Case("tensor.affine(no bias)", _make_affine_case(None, 42, with_bias=False)),
    _Case("tensor.affine[relu]", _make_affine_case("relu", 43)),
    _Case("tensor.affine[sigmoid]", _make_affine_case("sigmoid", 44)),
    _Case("tensor.affine[tanh]", _make_affine_case("tanh", 45)),
    _Case("layers.Dropout", _case_dropout),
    _Case("recurrent.RNNCell", _case_rnn_cell),
    _Case("recurrent.LSTMCell", _case_lstm_cell),
    _Case("recurrent.RNN", _case_rnn),
    _Case("recurrent.LSTM", _case_lstm),
    _Case("losses.q_error_loss", _case_q_error_loss),
    _Case("losses.log_q_error_loss", _case_log_q_error_loss),
    _Case("losses.mse_loss", _case_mse_loss),
    _Case("losses.bce_loss", _case_bce_loss),
    _Case("losses.kl_standard_normal", _case_kl_standard_normal),
)


# ----------------------------------------------------------------------
# compiled cases — FD audit of the fused kernels repro.nn.compile emits
# ----------------------------------------------------------------------

#: Families whose fused training-loss plan is audited (one plan each,
#: forward + backward kernels), mirroring ``repro.ce.MODEL_TYPES``.
_COMPILED_FAMILIES: tuple[str, ...] = (
    "fcn", "fcn_pool", "mscn", "rnn", "lstm", "linear"
)

#: FD probes per compiled case. Each probe re-executes the whole fused
#: plan, so compiled cases sample coordinates instead of sweeping all of
#: them — the kernels are shared across coordinates anyway.
_COMPILED_MAX_COORDS = 40


def _check_sampled(
    forward: Callable[[], Tensor],
    wrt: Sequence[tuple[str, Tensor]],
    tolerance: float,
    name: str,
    max_coords: int,
    rng: np.random.Generator,
    kernels: Sequence[str] = (),
) -> GradCheckResult:
    """:func:`_check` on a fixed-seed sample of the ``wrt`` coordinates."""
    tensors = [t for _, t in wrt]
    analytic = [g.data.copy() for g in grad(forward(), tensors)]
    coords = [
        (ti, i) for ti, t in enumerate(tensors) for i in range(t.data.size)
    ]
    if len(coords) > max_coords:
        picked = rng.choice(len(coords), size=max_coords, replace=False)
        coords = [coords[int(k)] for k in sorted(picked)]
    max_rel = 0.0
    for ti, i in coords:
        flat = tensors[ti].data.reshape(-1)
        original = flat[i]
        step = _FD_STEP * max(1.0, abs(original))
        flat[i] = original + step
        upper = forward().item()
        flat[i] = original - step
        lower = forward().item()
        flat[i] = original
        numeric = (upper - lower) / (2.0 * step)
        a = analytic[ti].reshape(-1)[i]
        rel = abs(a - numeric) / max(1.0, abs(a), abs(numeric))
        max_rel = max(max_rel, rel)
    return GradCheckResult(
        name=name, max_rel_error=max_rel, checked=len(coords),
        tolerance=tolerance, kernels=tuple(kernels),
    )


def run_compiled_gradcheck(
    tolerance: float = DEFAULT_TOLERANCE,
    max_coords: int = _COMPILED_MAX_COORDS,
) -> list[GradCheckResult]:
    """FD audit of the fused kernels, through the real call-site wiring.

    Per family, the training-loss plan (``_compiled_batch_loss``) is
    compiled and its analytic gradients — produced by the plan's fused
    *backward* kernels — are checked against central finite differences
    of the plan's fused *forward* kernels. One second-order case then
    audits Eq. 10's unrolled-update plan w.r.t. the poison encodings.
    Every result carries the names of the kernels the plan emitted.
    """
    from repro.analysis.equivalence import _force_compiled
    from repro.attack.algorithms import _Session
    from repro.ce.registry import create_model
    from repro.ce.trainer import _compiled_batch_loss
    from repro.datasets.registry import load_dataset
    from repro.db.executor import Executor
    from repro.nn.compile import iter_plans, reset_compile_state
    from repro.workload.encoding import QueryEncoder
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.workload import Workload

    reset_compile_state()
    database = load_dataset("tpch", scale="smoke", seed=0)
    encoder = QueryEncoder(database.schema)
    gen = WorkloadGenerator(database, seed=0)
    workload = Workload.from_queries(
        [gen.random_query(max_tables=3) for _ in range(6)], Executor(database)
    )
    encodings = np.array(workload.encode(encoder), copy=True)
    cards = workload.cardinalities
    rng = derive_rng(31)

    def new_kernels(seen: int) -> tuple[list[str], int]:
        plans = iter_plans()
        names = [k["name"] for plan in plans[seen:] for k in plan.kernels()]
        return names, len(plans)

    results: list[GradCheckResult] = []
    seen_plans = 0
    for family in _COMPILED_FAMILIES:
        model = create_model(family, encoder, hidden_dim=8, seed=7)
        model.calibrate_normalization(cards)
        x = Tensor(encodings)
        y = Tensor(model.normalize_log(cards))

        def forward() -> Tensor:
            with _force_compiled():
                loss = _compiled_batch_loss(model, x, y)
            if loss is None:
                raise RuntimeError(
                    f"_compiled_batch_loss declined compilation for {family}"
                )
            return loss

        forward()  # build the plan before enumerating its kernels
        kernels, seen_plans = new_kernels(seen_plans)
        results.append(_check_sampled(
            forward, _named_parameters(model), tolerance,
            f"compiled.{family}.train_step", max_coords, rng, kernels,
        ))

    # Second order: the plan PACE differentiates through — its backward
    # kernels compute d(post-update test error)/d(poison encodings).
    surrogate = create_model("fcn", encoder, hidden_dim=8, seed=7)
    surrogate.calibrate_normalization(cards)
    y_norm = surrogate.normalize_log(cards)
    harness = type("Harness", (), {
        "_compiled_poisoning_objective": _Session._compiled_poisoning_objective,
    })()
    harness.surrogate = surrogate
    harness.test_x = Tensor(encodings)
    harness.test_y = Tensor(y_norm)
    harness.config = type("Cfg", (), {"update_lr": 2.0})()
    poison = Tensor(encodings.copy(), requires_grad=True)
    view = create_model("fcn", encoder, hidden_dim=8, seed=8)
    view.calibrate_normalization(cards)

    def second_order() -> Tensor:
        with _force_compiled():
            objective = harness._compiled_poisoning_objective(
                view, poison, y_norm, 3
            )
        if objective is None:
            raise RuntimeError("poisoning objective declined compilation")
        return objective

    second_order()
    kernels, seen_plans = new_kernels(seen_plans)
    results.append(_check_sampled(
        second_order, [("encodings", poison)], tolerance,
        "compiled.fcn.second_order", max_coords // 2, rng, kernels,
    ))
    return results


def case_names() -> list[str]:
    return (
        [case.name for case in _CASES]
        + [f"compiled.{family}.train_step" for family in _COMPILED_FAMILIES]
        + ["compiled.fcn.second_order"]
    )


def run_gradcheck(tolerance: float = DEFAULT_TOLERANCE) -> list[GradCheckResult]:
    """Sweep every registered layer/loss case plus the compiled plans."""
    results = []
    for case in _CASES:
        forward, wrt = case.build()
        results.append(_check(forward, wrt, tolerance, case.name))
    results.extend(run_compiled_gradcheck(tolerance=tolerance))
    return results


def max_relative_error(results: Sequence[GradCheckResult]) -> float:
    return max(r.max_rel_error for r in results)
