"""Sanitized smoke forward/backward over the PACE-critical autograd path.

``pace-repro analyze`` runs this after the static rules: a small MLP is
driven through the exact graph shape the attack relies on — forward, a
``create_graph=True`` gradient, a functional parameter step via
``clone_with_parameters``, a second forward, and a second-order gradient
back to the input — with the :func:`repro.nn.tensor.sanitize` checker
active on every op and every backward rule. A NaN/Inf anywhere in that
pipeline fails the analysis with the producing op's name, which static
rules alone can never give you.
"""

from __future__ import annotations

import dataclasses

from repro.nn.layers import mlp
from repro.nn.losses import mse_loss
from repro.nn.tensor import (
    SanitizeError,
    Tensor,
    grad,
    is_grad_enabled,
    sanitize,
    sanitize_check_count,
    sanitize_scope,
)
from repro.utils.rng import derive_rng


@dataclasses.dataclass(frozen=True)
class SmokeResult:
    """Outcome of one sanitized end-to-end pass."""

    passed: bool
    checks: int  # sanitizer value/gradient checks that actually ran
    modules: int  # modules traversed in the model under test
    detail: str = ""

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def run_smoke(seed: int = 0) -> SmokeResult:
    """One sanitized forward/backward/second-order pass; never raises."""
    rng = derive_rng(seed)
    with sanitize():
        before = sanitize_check_count()
        if not is_grad_enabled():
            return SmokeResult(False, 0, 0, "gradients are globally disabled")
        try:
            with sanitize_scope("analysis.smoke"):
                model = mlp(6, [8, 8], 1, rng=rng)
                modules = sum(1 for _ in model.named_modules())
                x = Tensor.randn((5, 6), rng, requires_grad=True)
                y = Tensor(rng.normal(size=(5, 1)))

                loss = mse_loss(model(x), y)
                names = [name for name, _ in model.named_parameters()]
                params = [p for _, p in model.named_parameters()]
                grads = grad(loss, params, create_graph=True)
                stepped = model.clone_with_parameters(
                    {n: p - 0.5 * g for n, p, g in zip(names, params, grads)}
                )
                loss2 = mse_loss(stepped(x), y)
                grad(loss2, [x])  # second-order: through the unrolled step
        except SanitizeError as exc:
            return SmokeResult(False, sanitize_check_count() - before, 0, str(exc))
        checks = sanitize_check_count() - before
    if checks == 0:
        return SmokeResult(False, 0, modules, "sanitizer performed no checks")
    return SmokeResult(True, checks, modules)
