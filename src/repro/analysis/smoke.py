"""Sanitized smoke forward/backward over the PACE-critical autograd path.

``pace-repro analyze`` runs this after the static rules: a small MLP is
driven through the exact graph shape the attack relies on — forward, a
``create_graph=True`` gradient, a functional parameter step via
``clone_with_parameters``, a second forward, and a second-order gradient
back to the input — with the :func:`repro.nn.tensor.sanitize` checker
active on every op and every backward rule. A NaN/Inf anywhere in that
pipeline fails the analysis with the producing op's name, which static
rules alone can never give you.

:func:`run_serve_smoke` is the serving-layer counterpart: it drives a
real :class:`~repro.serve.server.EstimatorServer` over a tiny deployed
model under a :class:`~repro.utils.clock.ManualClock` and checks the
dynamic invariants R011 cannot see statically — micro-batched estimates
bitwise-matching the sequential path, deadline shedding, backpressure
rejection, and cache-hit consistency.

Both smokes run everything through the interpreter — compilation is
never forced here. The compiled paths get their own dedicated gates
later in the ``analyze`` pipeline: the equivalence sweep (dynamic,
byte-identical outputs) and the IR verifier (static, R017–R019 over
every plan the sweep built).
"""

from __future__ import annotations

import dataclasses

from repro.nn.layers import mlp
from repro.nn.losses import mse_loss
from repro.nn.tensor import (
    SanitizeError,
    Tensor,
    grad,
    is_grad_enabled,
    sanitize,
    sanitize_check_count,
    sanitize_scope,
)
from repro.utils.rng import derive_rng


@dataclasses.dataclass(frozen=True)
class SmokeResult:
    """Outcome of one sanitized end-to-end pass."""

    passed: bool
    checks: int  # sanitizer value/gradient checks that actually ran
    modules: int  # modules traversed in the model under test
    detail: str = ""

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def run_smoke(seed: int = 0) -> SmokeResult:
    """One sanitized forward/backward/second-order pass; never raises."""
    rng = derive_rng(seed)
    with sanitize():
        before = sanitize_check_count()
        if not is_grad_enabled():
            return SmokeResult(False, 0, 0, "gradients are globally disabled")
        try:
            with sanitize_scope("analysis.smoke"):
                model = mlp(6, [8, 8], 1, rng=rng)
                modules = sum(1 for _ in model.named_modules())
                x = Tensor.randn((5, 6), rng, requires_grad=True)
                y = Tensor(rng.normal(size=(5, 1)))

                loss = mse_loss(model(x), y)
                names = [name for name, _ in model.named_parameters()]
                params = [p for _, p in model.named_parameters()]
                grads = grad(loss, params, create_graph=True)
                stepped = model.clone_with_parameters(
                    {n: p - 0.5 * g for n, p, g in zip(names, params, grads)}
                )
                loss2 = mse_loss(stepped(x), y)
                grad(loss2, [x])  # second-order: through the unrolled step
        except SanitizeError as exc:
            return SmokeResult(False, sanitize_check_count() - before, 0, str(exc))
        checks = sanitize_check_count() - before
    if checks == 0:
        return SmokeResult(False, 0, modules, "sanitizer performed no checks")
    return SmokeResult(True, checks, modules)


@dataclasses.dataclass(frozen=True)
class ServeSmokeResult:
    """Outcome of the serving-layer smoke pass."""

    passed: bool
    requests: int  # estimate requests driven through the server
    checks: int  # dynamic invariants verified
    detail: str = ""

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def run_serve_smoke(seed: int = 0) -> ServeSmokeResult:
    """Drive the serve layer end to end on a tiny model; never raises."""
    import numpy as np

    from repro.ce.deployment import DeployedEstimator
    from repro.ce.registry import create_model
    from repro.datasets.registry import load_dataset
    from repro.db.executor import Executor
    from repro.serve.cache import EstimateCache
    from repro.serve.server import DONE, REJECTED, SHED, EstimatorServer
    from repro.utils.clock import ManualClock, use_clock
    from repro.workload.encoding import QueryEncoder
    from repro.workload.generator import WorkloadGenerator

    try:
        database = load_dataset("dmv", scale="smoke", seed=seed)
        executor = Executor(database)
        encoder = QueryEncoder(database.schema)
        # Untrained weights are fine: the invariants are about the serving
        # loop, not estimate quality.
        model = create_model("fcn", encoder, hidden_dim=8, seed=seed)
        deployed = DeployedEstimator(model, executor)
        generator = WorkloadGenerator(database, executor, seed=seed + 3)
        queries = [generator.random_query() for _ in range(12)]

        checks = 0
        requests = 0
        with use_clock(ManualClock()) as clock:
            server = EstimatorServer(
                deployed, max_queue=8, max_batch=4, cache=EstimateCache(capacity=32)
            )
            # 1) micro-batched estimates == the sequential explain path
            submitted = [server.submit(q) for q in queries[:8]]
            requests += len(submitted)
            done = server.run_until_idle()
            direct = deployed.explain_many([r.query for r in done])
            batched = np.array([r.estimate for r in done])
            if not (len(done) == 8 and all(r.status == DONE for r in done)):
                return ServeSmokeResult(False, requests, checks, "batch did not complete")
            if not np.allclose(batched, direct, rtol=0.0, atol=1e-9):
                worst = float(np.abs(batched - direct).max())
                return ServeSmokeResult(
                    False, requests, checks,
                    f"batched estimates diverge from sequential by {worst:.3e}",
                )
            checks += 1
            # 2) resubmission hits the cache with identical answers
            rerun = [server.submit(q) for q in queries[:8]]
            requests += len(rerun)
            server.run_until_idle()
            if not all(r.from_cache and r.estimate == d.estimate
                       for r, d in zip(rerun, done)):
                return ServeSmokeResult(False, requests, checks, "cache hits inconsistent")
            checks += 1
            # 3) a deadline that lapses while queued is shed, not served
            lapsed = server.submit(queries[8], timeout=0.5)
            requests += 1
            clock.advance(1.0)
            server.run_until_idle()
            if lapsed.status != SHED:
                return ServeSmokeResult(
                    False, requests, checks, f"expired request was {lapsed.status}"
                )
            checks += 1
            # 4) the bounded queue pushes back once full
            flood = [server.submit(queries[i % len(queries)]) for i in range(10)]
            requests += len(flood)
            if not any(r.status == REJECTED for r in flood):
                return ServeSmokeResult(False, requests, checks, "no backpressure at 10/8")
            server.run_until_idle()
            checks += 1
        return ServeSmokeResult(True, requests, checks)
    except Exception as exc:  # noqa: R003 — the gate wants a verdict, not a traceback
        return ServeSmokeResult(False, 0, 0, f"{type(exc).__name__}: {exc}")
