"""The ``pace-repro bench`` runner: smoke-grid timings persisted to JSON.

Runs a small (dataset × model × method) grid through
:func:`repro.perf.profile.profile_scenario` and writes a ``BENCH_*.json``
report containing per-phase wall-clock timings plus, when a recorded
baseline is supplied, per-scenario and overall speedups against it. The
seed baseline for this repo lives at
``benchmarks/baselines/BENCH_SEED.json`` and was produced by this same
tool against the pre-optimization code, so every future PR appends a
comparable point to the perf trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.perf.profile import PHASES, profile_scenario

SCHEMA_VERSION = 1

#: Default location of the recorded pre-optimization baseline.
DEFAULT_BASELINE = Path("benchmarks") / "baselines" / "BENCH_SEED.json"

#: The smoke grid: the paper's two single-table/star datasets crossed with
#: the two most-used model families, attacked with the full PACE pipeline.
SMOKE_GRID: tuple[tuple[str, str, str], ...] = (
    ("dmv", "fcn", "pace"),
    ("dmv", "mscn", "pace"),
    ("tpch", "fcn", "pace"),
)


def run_bench(
    scale: str = "smoke",
    grid: tuple[tuple[str, str, str], ...] | None = None,
    seed: int = 0,
    deterministic_timing: bool = True,
    compile_enabled: bool | None = None,
) -> dict:
    """Execute the grid and return a JSON-ready report (no baseline yet).

    ``compile_enabled`` forces compiled execution on (or off) for every
    cell; ``None`` keeps the process-wide ``REPRO_COMPILE`` setting. The
    report's ``compile`` section records the setting and the plan-cache
    activity aggregated across the grid.
    """
    from repro.nn.compile import compile_stats, is_enabled, stats_delta

    grid = SMOKE_GRID if grid is None else tuple(grid)
    compile_before = compile_stats()
    scenarios = []
    for dataset, model_type, method in grid:
        profile = profile_scenario(
            dataset=dataset,
            model_type=model_type,
            method=method,
            scale=scale,
            seed=seed,
            deterministic_timing=deterministic_timing,
            compile_enabled=compile_enabled,
        )
        scenarios.append(profile.to_json())
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "pace-repro bench",
        "scale": scale,
        "seed": seed,
        "deterministic_timing": deterministic_timing,
        "recorded_unix": time.time(),
        "phases": list(PHASES),
        "compile": {
            "enabled": is_enabled() if compile_enabled is None else bool(compile_enabled),
            "stats": stats_delta(compile_stats(), compile_before),
        },
        "grid": scenarios,
        "total_seconds": float(sum(s["total_seconds"] for s in scenarios)),
    }


def load_report(path: str | Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def write_report(report: dict, path: str | Path) -> Path:
    from repro.store.io import atomic_write_json

    # Bare filenames land under benchmarks/ so reports never accumulate
    # at the repo root; explicit directories are honored as given.
    path = Path(path)
    if path.parent == Path("."):
        path = Path("benchmarks") / path
    path.parent.mkdir(parents=True, exist_ok=True)
    # sort_keys=False keeps the report's authored section order; the
    # atomic write-then-rename means a crash mid-bench never leaves a
    # truncated report where a baseline used to be.
    return atomic_write_json(path, report, sort_keys=False)


def _scenario_key(entry: dict) -> tuple[str, str, str]:
    return (entry["dataset"], entry["model"], entry["method"])


def attach_baseline(report: dict, baseline: dict, baseline_path: str | Path) -> dict:
    """Add ``speedup`` sections comparing ``report`` against ``baseline``.

    Speedups are baseline seconds divided by current seconds (>1 means
    faster now), computed overall, per scenario, and per phase for the
    scenarios both reports share.
    """
    base_by_key = {_scenario_key(e): e for e in baseline.get("grid", [])}
    per_scenario = []
    matched_current = 0.0
    matched_baseline = 0.0
    for entry in report["grid"]:
        base = base_by_key.get(_scenario_key(entry))
        if base is None:
            continue
        matched_current += entry["total_seconds"]
        matched_baseline += base["total_seconds"]
        phase_speedups = {}
        for phase in PHASES:
            now = entry["phases"].get(phase, 0.0)
            then = base["phases"].get(phase, 0.0)
            if now > 0.0 and then > 0.0:
                phase_speedups[phase] = then / now
        per_scenario.append({
            "dataset": entry["dataset"],
            "model": entry["model"],
            "method": entry["method"],
            "baseline_seconds": base["total_seconds"],
            "current_seconds": entry["total_seconds"],
            "speedup": (
                base["total_seconds"] / entry["total_seconds"]
                if entry["total_seconds"] > 0.0 else None
            ),
            "phase_speedups": phase_speedups,
        })
    report["baseline"] = {
        "path": str(baseline_path),
        "recorded_unix": baseline.get("recorded_unix"),
        "total_seconds": matched_baseline,
        "current_seconds": matched_current,
        "speedup": matched_baseline / matched_current if matched_current > 0.0 else None,
        "per_scenario": per_scenario,
    }
    return report


def format_report(report: dict) -> str:
    """Console summary for ``pace-repro bench``."""
    from repro.metrics import render_table

    rows = []
    for entry in report["grid"]:
        rows.append([
            f"{entry['dataset']}/{entry['model']}",
            entry["method"],
            f"{entry['phases'].get('encode', 0.0):.3f}",
            f"{entry['phases'].get('train', 0.0):.3f}",
            f"{entry['phases'].get('attack', 0.0):.3f}",
            f"{entry['phases'].get('update', 0.0):.3f}",
            f"{entry['total_seconds']:.3f}",
        ])
    lines = [render_table(
        ["scenario", "method", "encode", "train", "attack", "update", "total"],
        rows,
        title=f"pace-repro bench · scale={report['scale']} · seed={report['seed']}",
    )]
    lines.append(f"\ngrid total: {report['total_seconds']:.3f}s")
    compile_section = report.get("compile")
    if compile_section:
        stats = compile_section.get("stats", {})
        lines.append(
            f"compile:    enabled={str(compile_section.get('enabled', False)).lower()} "
            f"plans={stats.get('plans_compiled', 0)} hits={stats.get('plan_hits', 0)} "
            f"misses={stats.get('plan_misses', 0)} fallbacks={stats.get('fallback_calls', 0)}"
        )
    baseline = report.get("baseline")
    if baseline:
        speedup = baseline.get("speedup")
        if speedup is not None:
            lines.append(
                f"baseline:   {baseline['total_seconds']:.3f}s "
                f"({baseline['path']}) -> speedup {speedup:.2f}x"
            )
        for entry in baseline.get("per_scenario", []):
            if entry["speedup"] is not None:
                lines.append(
                    f"  {entry['dataset']}/{entry['model']} ({entry['method']}): "
                    f"{entry['baseline_seconds']:.3f}s -> "
                    f"{entry['current_seconds']:.3f}s ({entry['speedup']:.2f}x)"
                )
    return "\n".join(lines)
