"""Per-phase profiling of one attack scenario end to end.

``profile_scenario`` runs the same pipeline as the harness —
setup → encode → train → speculate → attack → update → evaluate — but
drives each phase explicitly under a :data:`~repro.perf.registry.PERF`
span, so the breakdown is exclusive (no phase double-counts another).
``pace-repro profile`` renders the result as a table; ``pace-repro
bench`` aggregates several of these into a ``BENCH_*.json`` report.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.perf.registry import PERF
from repro.utils.clock import FakeClock, use_clock
from repro.utils.config import ScaleConfig, get_scale

#: Phase names in execution order (also the JSON key order).
PHASES: tuple[str, ...] = (
    "setup", "encode", "train", "speculate", "attack", "update", "evaluate"
)

#: Methods that require surrogate acquisition before crafting poison.
_SURROGATE_METHODS = ("lbs", "greedy", "lbg", "pace")


@dataclass
class PhaseProfile:
    """Wall-clock breakdown of one (dataset, model, method) scenario run."""

    dataset: str
    model_type: str
    method: str
    scale: str
    seed: int
    phases: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    spans: dict[str, float] = field(default_factory=dict)
    degradation: float = 0.0
    poison_queries: int = 0
    compile: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.phases.values()))

    def to_json(self) -> dict:
        return {
            "dataset": self.dataset,
            "model": self.model_type,
            "method": self.method,
            "scale": self.scale,
            "seed": self.seed,
            "phases": {name: self.phases.get(name, 0.0) for name in PHASES},
            "total_seconds": self.total_seconds,
            "degradation": self.degradation,
            "poison_queries": self.poison_queries,
            "counters": dict(self.counters),
            "compile": dict(self.compile),
        }


def profile_scenario(
    dataset: str = "dmv",
    model_type: str = "fcn",
    method: str = "pace",
    scale: ScaleConfig | str | None = None,
    seed: int = 0,
    deterministic_timing: bool = False,
    compile_enabled: bool | None = None,
) -> PhaseProfile:
    """Build a fresh scenario and run one attack, timing each phase.

    Unlike :func:`repro.harness.get_scenario` this never reuses a cached
    scenario — the point is to measure the full pipeline. With
    ``deterministic_timing`` a :class:`FakeClock` drives the speculation
    latency probes, pinning the speculated type across runs so successive
    benchmark reports measure the same workload. ``compile_enabled``
    forces compiled execution on (or off) for the run; ``None`` keeps the
    process-wide ``REPRO_COMPILE`` setting. The resulting plan-cache
    activity lands in ``PhaseProfile.compile``.
    """
    # Imported here so the perf layer stays importable even when heavier
    # subsystems are broken — `pace-repro profile` then fails loudly.
    from repro.ce.deployment import DeployedEstimator
    from repro.ce.registry import create_model
    from repro.ce.trainer import TrainConfig, evaluate_q_errors, train_model
    from repro.datasets.registry import load_dataset
    from repro.db.executor import Executor
    from repro.harness.experiments import (
        AttackScenario,
        craft_poison,
        get_detector,
        get_surrogate,
        make_workloads,
    )
    from repro.metrics.divergence import workload_divergence
    from repro.metrics.qerror import degradation_factor
    from repro.nn.compile import compile_stats, compiled_execution, is_enabled, stats_delta
    from repro.workload.encoding import QueryEncoder

    if isinstance(scale, str) or scale is None:
        scale = get_scale(scale)

    was_enabled = PERF.enabled
    PERF.reset()
    PERF.enable()
    clock_scope = use_clock(FakeClock()) if deterministic_timing else nullcontext()
    compile_scope = (
        nullcontext() if compile_enabled is None else compiled_execution(compile_enabled)
    )
    compile_before = compile_stats()
    try:
        with clock_scope, compile_scope:
            compile_active = is_enabled()
            with PERF.span("phase.setup"):
                database = load_dataset(dataset, scale=scale, seed=seed)
                executor = Executor(database)
                train_wl, test_wl = make_workloads(database, executor, scale, seed)
                encoder = QueryEncoder(database.schema)

            with PERF.span("phase.encode"):
                train_wl.encode(encoder)
                test_wl.encode(encoder)

            with PERF.span("phase.train"):
                model = create_model(
                    model_type, encoder, hidden_dim=scale.hidden_dim, seed=seed
                )
                train_model(model, train_wl, TrainConfig(epochs=scale.train_epochs, seed=seed))
                deployed = DeployedEstimator(model, executor, update_steps=scale.update_steps)

            scenario = AttackScenario(
                dataset=dataset,
                model_type=model_type,
                scale=scale,
                seed=seed,
                database=database,
                executor=executor,
                encoder=encoder,
                train_workload=train_wl,
                test_workload=test_wl,
                deployed=deployed,
                clean_state=model.state_dict(),
            )

            with PERF.span("phase.evaluate"):
                before = evaluate_q_errors(model, test_wl)

            with PERF.span("phase.speculate"):
                if method in _SURROGATE_METHODS:
                    get_surrogate(scenario)
                if method == "pace":
                    get_detector(scenario)

            with PERF.span("phase.attack"):
                queries, *_ = craft_poison(scenario, method)

            with PERF.span("phase.update"):
                if queries:
                    history = train_wl.encode(encoder)
                    poison_enc = encoder.encode_many(queries)
                    workload_divergence(poison_enc, history)
                    deployed.execute(queries)

            with PERF.span("phase.evaluate"):
                after = evaluate_q_errors(model, test_wl)
            scenario.reset()

        snapshot = PERF.snapshot()
    finally:
        if not was_enabled:
            PERF.disable()

    phases = {
        name: snapshot["spans"].get(f"phase.{name}", 0.0) for name in PHASES
    }
    other_spans = {
        name: seconds
        for name, seconds in snapshot["spans"].items()
        if not name.startswith("phase.")
    }
    return PhaseProfile(
        dataset=dataset,
        model_type=model_type,
        method=method,
        scale=scale.name,
        seed=seed,
        phases=phases,
        counters=snapshot["counters"],
        spans=other_spans,
        degradation=float(degradation_factor(before, after)),
        poison_queries=len(queries),
        compile={
            "enabled": compile_active,
            "stats": stats_delta(compile_stats(), compile_before),
        },
    )


def format_profile(profile: PhaseProfile) -> str:
    """Human-readable per-phase table for ``pace-repro profile``."""
    from repro.metrics import render_table

    total = profile.total_seconds or 1.0
    rows = [
        [name, f"{profile.phases.get(name, 0.0):.3f}",
         f"{100.0 * profile.phases.get(name, 0.0) / total:.1f}%"]
        for name in PHASES
    ]
    rows.append(["total", f"{profile.total_seconds:.3f}", "100.0%"])
    lines = [
        render_table(
            ["phase", "seconds", "share"],
            rows,
            title=(
                f"{profile.dataset}/{profile.model_type} · {profile.method} "
                f"(scale={profile.scale}, seed={profile.seed})"
            ),
        ),
        "",
        f"degradation: {profile.degradation:.2f}x · "
        f"poison queries: {profile.poison_queries}",
    ]
    if profile.counters:
        counter_rows = [[k, str(v)] for k, v in sorted(profile.counters.items())]
        lines += ["", render_table(["counter", "value"], counter_rows)]
    if profile.compile:
        stats = profile.compile.get("stats", {})
        rows = [
            ["enabled", str(profile.compile.get("enabled", False)).lower()],
            *[
                [name, str(stats.get(name, 0))]
                for name in ("plans_compiled", "plan_hits", "plan_misses", "fallback_calls")
            ],
        ]
        for reason, count in sorted(stats.get("fallback_reasons", {}).items()):
            rows.append([f"fallback: {reason}", str(count)])
        lines += ["", render_table(["plan cache", "value"], rows)]
    return "\n".join(lines)
