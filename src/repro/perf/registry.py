"""Scoped wall-clock timers and op counters for the reproduction.

The module exposes a single process-wide :data:`PERF` registry. Hot paths
guard every interaction behind ``PERF.enabled`` (a plain attribute read),
and :meth:`PerfRegistry.span` returns a shared null context manager when
disabled, so the instrumented code pays near-zero overhead unless a
profiling entry point (``pace-repro profile`` / ``pace-repro bench``)
switched the registry on.

The registry deliberately has no dependencies on the rest of the package
so that even the lowest layers (``repro.nn.tensor``, ``repro.db``) can
import it without cycles.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from contextlib import AbstractContextManager
from typing import Any


class _NullSpan(AbstractContextManager):
    """Shared do-nothing context manager returned when profiling is off."""

    __slots__ = ()

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Times one ``with`` block and folds the result into the registry."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "PerfRegistry", name: str) -> None:
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        registry = self._registry
        name = self._name
        registry.spans[name] = registry.spans.get(name, 0.0) + elapsed
        registry.span_counts[name] = registry.span_counts.get(name, 0) + 1


class PerfRegistry:
    """Aggregates named wall-clock spans, counters, and allocation stats.

    Attributes:
        enabled: master switch; hot paths must check this before touching
            any other attribute.
        spans: cumulative seconds per span name.
        span_counts: number of times each span was entered.
        counters: monotonically increasing named counters.
    """

    __slots__ = ("enabled", "spans", "span_counts", "counters", "_trace_allocations")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.spans: dict[str, float] = {}  # safe: R015 per-process profiling telemetry; workers keep their own spans by design
        self.span_counts: dict[str, int] = {}  # safe: R015 per-process profiling telemetry; workers keep their own spans by design
        self.counters: dict[str, int] = {}  # safe: R015 per-process profiling telemetry; workers keep their own counters by design
        self._trace_allocations = False

    # ------------------------------------------------------------------
    # switching
    # ------------------------------------------------------------------
    def enable(self, trace_allocations: bool = False) -> None:
        self.enabled = True
        self._trace_allocations = trace_allocations
        if trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()

    def disable(self) -> None:
        self.enabled = False
        if self._trace_allocations and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._trace_allocations = False

    def reset(self) -> None:
        self.spans.clear()
        self.span_counts.clear()
        self.counters.clear()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str) -> AbstractContextManager:
        """Scoped timer: ``with PERF.span("phase.train"): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    def incr(self, name: str, amount: int = 1) -> None:
        """Bump a counter; no-op unless profiling is enabled."""
        if self.enabled:
            self.counters[name] = self.counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def allocation_snapshot(self) -> dict[str, int] | None:
        """Current/peak traced allocation sizes in bytes, if tracing."""
        if not (self._trace_allocations and tracemalloc.is_tracing()):
            return None
        current, peak = tracemalloc.get_traced_memory()
        return {"current_bytes": int(current), "peak_bytes": int(peak)}

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready copy of everything recorded so far."""
        out: dict[str, Any] = {
            "spans": {k: self.spans[k] for k in sorted(self.spans)},
            "span_counts": {k: self.span_counts[k] for k in sorted(self.span_counts)},
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }
        allocations = self.allocation_snapshot()
        if allocations is not None:
            out["allocations"] = allocations
        return out


PERF = PerfRegistry(enabled=os.environ.get("REPRO_PERF", "") not in ("", "0"))  # safe: R016 telemetry is per-process; forked workers inherit the switch and never report spans back
