"""Profiling, op-counting, and benchmark persistence for the reproduction.

Three pieces:

* :data:`~repro.perf.registry.PERF` — a process-wide registry of scoped
  wall-clock spans and counters with near-zero overhead while disabled;
* :func:`~repro.perf.profile.profile_scenario` — per-phase breakdown
  (encode / train / speculate / attack / update) of one scenario run;
* :func:`~repro.perf.bench.run_bench` — the smoke-grid benchmark runner
  behind ``pace-repro bench``, persisting ``BENCH_*.json`` reports with
  speedups against the recorded seed baseline.
"""

from repro.perf.bench import (
    DEFAULT_BASELINE,
    SMOKE_GRID,
    attach_baseline,
    format_report,
    load_report,
    run_bench,
    write_report,
)
from repro.perf.profile import PHASES, PhaseProfile, format_profile, profile_scenario
from repro.perf.registry import PERF, PerfRegistry

__all__ = [
    "PERF",
    "PerfRegistry",
    "PHASES",
    "PhaseProfile",
    "profile_scenario",
    "format_profile",
    "run_bench",
    "attach_baseline",
    "format_report",
    "load_report",
    "write_report",
    "SMOKE_GRID",
    "DEFAULT_BASELINE",
]
