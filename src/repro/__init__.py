"""PACE reproduction: poisoning attacks on learned cardinality estimation.

Subpackages:

- ``repro.nn`` -- numpy autodiff / neural-network substrate.
- ``repro.db`` -- in-memory relational engine (ground-truth cardinalities).
- ``repro.datasets`` -- synthetic DMV / IMDB / TPC-H / STATS generators.
- ``repro.workload`` -- SPJ queries, encodings, workload generators.
- ``repro.ce`` -- the six query-driven CE models and their trainer.
- ``repro.planner`` -- cost-based join-order planner + E2E latency simulator.
- ``repro.attack`` -- the PACE attack system and baselines (the paper's
  primary contribution).
- ``repro.metrics`` -- Q-error statistics and distribution divergence.
"""

__version__ = "1.0.0"
