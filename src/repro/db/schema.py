"""Relational schema: columns, tables, foreign-key join graph.

The schema is the only information PACE's threat model grants the attacker
(Section 2.2 of the paper), so it is deliberately a small, self-contained
value object: names, attribute domains, and which key columns join to which.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.utils.errors import SchemaError


@dataclass(frozen=True)
class Column:
    """One table column.

    Attributes:
        name: column name, unique within its table.
        kind: ``"attribute"`` (filterable numeric column) or ``"key"``
            (join key; never filtered by SPJ predicates).
        low/high: inclusive domain bounds used to normalize predicate
            bounds into ``[0, 1]``. Only meaningful for attributes.
    """

    name: str
    kind: str = "attribute"
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("attribute", "key"):
            raise SchemaError(f"column kind must be 'attribute' or 'key', got {self.kind!r}")
        if self.kind == "attribute" and not self.high > self.low:
            raise SchemaError(
                f"column {self.name!r} needs high > low, got [{self.low}, {self.high}]"
            )

    def normalize(self, value):
        """Map a physical value into ``[0, 1]``."""
        return (value - self.low) / (self.high - self.low)

    def denormalize(self, value):
        """Map a normalized value back into the physical domain."""
        return value * (self.high - self.low) + self.low


@dataclass(frozen=True)
class TableSchema:
    """A table definition: an ordered tuple of columns."""

    name: str
    columns: tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}: {names}")

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    @property
    def attributes(self) -> tuple[Column, ...]:
        """Filterable (non-key) columns, in declaration order."""
        return tuple(c for c in self.columns if c.kind == "attribute")

    @property
    def keys(self) -> tuple[Column, ...]:
        return tuple(c for c in self.columns if c.kind == "key")


@dataclass(frozen=True)
class JoinEdge:
    """An equi-join edge ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def touches(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def other(self, table: str) -> str:
        if table == self.left_table:
            return self.right_table
        if table == self.right_table:
            return self.left_table
        raise SchemaError(f"join edge {self} does not touch table {table!r}")

    def column_for(self, table: str) -> str:
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise SchemaError(f"join edge {self} does not touch table {table!r}")


class DatabaseSchema:
    """All tables plus the FK join graph; also fixes the encoding order.

    Table order and per-table attribute order are part of the public
    contract: the query encoder, the generators, and the CE models all index
    into vectors laid out by this schema.
    """

    def __init__(self, name: str, tables: list[TableSchema], joins: list[JoinEdge]) -> None:
        self.name = name
        self.tables: dict[str, TableSchema] = {}
        for table in tables:
            if table.name in self.tables:
                raise SchemaError(f"duplicate table {table.name!r}")
            self.tables[table.name] = table
        self.joins = tuple(joins)
        for edge in self.joins:
            for tbl, col in (
                (edge.left_table, edge.left_column),
                (edge.right_table, edge.right_column),
            ):
                if tbl not in self.tables:
                    raise SchemaError(f"join edge references unknown table {tbl!r}")
                self.tables[tbl].column(col)  # raises if missing

        self.table_names: tuple[str, ...] = tuple(self.tables)
        self._table_index = {t: i for i, t in enumerate(self.table_names)}
        # Global attribute order: tables in declaration order, attributes in
        # column order. This is the layout of the predicate section of a
        # query encoding.
        self.attribute_order: tuple[tuple[str, str], ...] = tuple(
            (t, c.name) for t in self.table_names for c in self.tables[t].attributes
        )
        self._attribute_index = {tc: i for i, tc in enumerate(self.attribute_order)}

        self._graph = nx.Graph()
        self._graph.add_nodes_from(self.table_names)
        for edge in self.joins:
            self._graph.add_edge(edge.left_table, edge.right_table, edge=edge)

        # The schema is immutable after construction, so join-graph queries
        # keyed by table subsets are memoized (the generators and the
        # executor probe the same handful of subsets millions of times).
        self._valid_join_sets: dict[frozenset[str], bool] = {}
        self._tree_edges: dict[frozenset[str], list[JoinEdge]] = {}

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def num_tables(self) -> int:
        return len(self.table_names)

    @property
    def num_attributes(self) -> int:
        return len(self.attribute_order)

    def table(self, name: str) -> TableSchema:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no table {name!r}") from None

    def table_index(self, name: str) -> int:
        self.table(name)
        return self._table_index[name]

    def attribute_index(self, table: str, column: str) -> int:
        try:
            return self._attribute_index[(table, column)]
        except KeyError:
            raise SchemaError(f"no attribute {table}.{column} in schema {self.name!r}") from None

    def attributes_of(self, table: str) -> tuple[tuple[str, str], ...]:
        self.table(table)
        return tuple(tc for tc in self.attribute_order if tc[0] == table)

    # ------------------------------------------------------------------
    # join-graph queries
    # ------------------------------------------------------------------
    def join_graph(self) -> nx.Graph:
        """A copy of the FK join graph (nodes = tables)."""
        return self._graph.copy()

    def is_valid_join_set(self, tables) -> bool:
        """True when ``tables`` is non-empty and connected in the join graph."""
        key = frozenset(tables)
        cached = self._valid_join_sets.get(key)
        if cached is None:
            cached = self._is_valid_join_set(key)
            self._valid_join_sets[key] = cached
        return cached

    def _is_valid_join_set(self, tables: frozenset[str]) -> bool:
        if not tables or not tables <= set(self.table_names):
            return False
        if len(tables) == 1:
            return True
        sub = self._graph.subgraph(tables)
        return nx.is_connected(sub)

    def join_edges_within(self, tables) -> list[JoinEdge]:
        """Edges of a spanning tree over ``tables`` (deterministic BFS order)."""
        key = frozenset(tables)
        cached = self._tree_edges.get(key)
        if cached is None:
            cached = self._join_edges_within(key)
            self._tree_edges[key] = cached
        return list(cached)

    def _join_edges_within(self, tables: frozenset[str]) -> list[JoinEdge]:
        if not self.is_valid_join_set(tables):
            raise SchemaError(f"tables {sorted(tables)} are not a connected join set")
        if len(tables) == 1:
            return []
        sub = self._graph.subgraph(tables)
        start = min(tables, key=self._table_index.get)
        tree_edges = list(nx.bfs_edges(sub, start))
        return [self._graph.edges[u, v]["edge"] for u, v in tree_edges]

    def neighbors(self, table: str) -> tuple[str, ...]:
        self.table(table)
        return tuple(sorted(self._graph.neighbors(table)))

    def connected_join_sets(self, max_size: int) -> list[frozenset[str]]:
        """Enumerate every connected table subset up to ``max_size`` tables."""
        found: set[frozenset[str]] = {frozenset([t]) for t in self.table_names}
        frontier = list(found)
        while frontier:
            current = frontier.pop()
            if len(current) >= max_size:
                continue
            for table in current:
                for neighbor in self._graph.neighbors(table):
                    grown = current | {neighbor}
                    if grown not in found:
                        found.add(grown)
                        frontier.append(grown)
        return sorted(found, key=lambda s: (len(s), sorted(s)))

    def __repr__(self) -> str:
        return (
            f"DatabaseSchema({self.name!r}, tables={len(self.tables)}, "
            f"attributes={self.num_attributes}, joins={len(self.joins)})"
        )
