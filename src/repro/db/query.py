"""SPJ (select-project-join) queries with normalized range predicates.

A query is the unit the whole system trades in: the workload generators
produce them, the relational executor counts them, the CE models estimate
them, and the PACE generator learns to emit poisonous ones. Predicate
bounds are stored *normalized* to ``[0, 1]`` against each column's domain
(the paper's representation, Section 5.2); the executor denormalizes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.schema import DatabaseSchema
from repro.utils.errors import QueryError


@dataclass(frozen=True)
class Query:
    """An SPJ query: a join set plus normalized range predicates.

    Attributes:
        tables: tables in the join (must be a connected set in the schema's
            join graph; joins follow the FK edges).
        predicates: mapping ``(table, column) -> (low, high)`` with
            ``0 <= low <= high <= 1`` in normalized domain space. Attributes
            without an entry are unconstrained (``[0, 1]``).
    """

    tables: frozenset[str]
    predicates: dict[tuple[str, str], tuple[float, float]] = field(default_factory=dict)

    @staticmethod
    def build(
        schema: DatabaseSchema,
        tables,
        predicates: dict[tuple[str, str], tuple[float, float]] | None = None,
    ) -> "Query":
        """Validate against ``schema`` and construct a query.

        Raises:
            QueryError: empty/disconnected join set, predicate on a table
                outside the join set, unknown attribute, or invalid bounds.
        """
        tables = frozenset(tables)
        if not tables:
            raise QueryError("a query needs at least one table")
        if not schema.is_valid_join_set(tables):
            raise QueryError(f"tables {sorted(tables)} are not a connected join set")
        predicates = dict(predicates or {})
        for (tbl, col), (low, high) in predicates.items():
            if tbl not in tables:
                raise QueryError(f"predicate on {tbl}.{col} but {tbl!r} is not joined")
            schema.attribute_index(tbl, col)  # raises SchemaError if unknown
            if not (0.0 <= low <= high <= 1.0):
                raise QueryError(
                    f"predicate bounds for {tbl}.{col} must satisfy "
                    f"0 <= low <= high <= 1, got ({low}, {high})"
                )
        return Query(tables=tables, predicates=predicates)

    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def num_predicates(self) -> int:
        return len(self.predicates)

    def restricted_to(self, tables) -> "Query":
        """The same query narrowed to a table subset (used by the planner)."""
        tables = frozenset(tables)
        if not tables <= self.tables:
            raise QueryError(f"{sorted(tables)} is not a subset of {sorted(self.tables)}")
        kept = {tc: bounds for tc, bounds in self.predicates.items() if tc[0] in tables}
        return Query(tables=tables, predicates=kept)

    def to_sql(self, schema: DatabaseSchema) -> str:
        """A readable SQL rendering (COUNT(*) form, physical bounds)."""
        tables = sorted(self.tables, key=schema.table_index)
        clauses: list[str] = []
        for edge in schema.join_edges_within(self.tables):
            clauses.append(
                f"{edge.left_table}.{edge.left_column} = "
                f"{edge.right_table}.{edge.right_column}"
            )
        for (tbl, col), (low, high) in sorted(self.predicates.items()):
            column = schema.table(tbl).column(col)
            lo = column.denormalize(low)
            hi = column.denormalize(high)
            clauses.append(f"{tbl}.{col} BETWEEN {lo:.4g} AND {hi:.4g}")
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return f"SELECT COUNT(*) FROM {', '.join(tables)}{where};"

    def cache_key(self) -> tuple:
        """Hashable identity used by cardinality caches (memoized)."""
        key = getattr(self, "_cache_key", None)
        if key is None:
            key = (
                tuple(sorted(self.tables)),
                tuple(sorted((tc, bounds) for tc, bounds in self.predicates.items())),
            )
            # frozen dataclass: route around the __setattr__ guard. The
            # memo is derived state, so identity semantics are unchanged.
            object.__setattr__(self, "_cache_key", key)
        return key


@dataclass(frozen=True)
class LabeledQuery:
    """A query together with its true cardinality (a training example)."""

    query: Query
    cardinality: int

    def __post_init__(self) -> None:
        if self.cardinality < 0:
            raise QueryError(f"cardinality must be non-negative, got {self.cardinality}")
