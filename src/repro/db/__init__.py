"""In-memory relational substrate: schemas, tables, SPJ execution."""

from repro.db.executor import Executor, hash_join_pairs
from repro.db.query import LabeledQuery, Query
from repro.db.schema import Column, DatabaseSchema, JoinEdge, TableSchema
from repro.db.table import Database, Table

__all__ = [
    "Column",
    "TableSchema",
    "JoinEdge",
    "DatabaseSchema",
    "Table",
    "Database",
    "Query",
    "LabeledQuery",
    "Executor",
    "hash_join_pairs",
]
