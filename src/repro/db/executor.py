"""Ground-truth SPJ execution: ``COUNT(*)`` over the columnar engine.

This is the substrate that plays PostgreSQL's role in the paper: it gives
the attacker true cardinalities for crafted queries (the threat model grants
``COUNT(*)`` execution) and gives the evaluation harness the true
cardinalities of plan sub-joins.

Joins are FK equi-joins evaluated with sort-based hash joins over numpy
arrays; predicates are pushed down to the scans. Results are memoized by
query identity because the planner probes many overlapping sub-joins.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.db.query import Query
from repro.db.table import Database
from repro.perf.registry import PERF
from repro.utils.errors import ExecutionBudgetError, QueryError


def hash_join_pairs(
    left_vals: np.ndarray,
    right_vals: np.ndarray,
    max_pairs: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """All matching index pairs between two key arrays.

    Returns ``(left_idx, right_idx)`` such that
    ``left_vals[left_idx] == right_vals[right_idx]`` covers every match,
    duplicates included (bag semantics, like SQL).

    Raises:
        ExecutionBudgetError: the match count exceeds ``max_pairs`` — the
            check runs *before* materializing the index arrays, so runaway
            joins abort cheaply instead of exhausting memory.
    """
    left_vals = np.asarray(left_vals)
    right_vals = np.asarray(right_vals)
    if len(left_vals) == 0 or len(right_vals) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(right_vals, kind="stable")
    sorted_right = right_vals[order]
    lo = np.searchsorted(sorted_right, left_vals, side="left")
    hi = np.searchsorted(sorted_right, left_vals, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if max_pairs is not None and total > max_pairs:
        raise ExecutionBudgetError(
            f"join would produce {total} pairs, over the {max_pairs} budget"
        )
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(len(left_vals), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    segment_starts = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - segment_starts
    right_idx = order[starts + within]
    return left_idx, right_idx


class Executor:
    """Counts query results; memoizes by query identity.

    The memo cache is a bounded LRU: at capacity the least-recently-used
    entry is evicted (one per insert). :attr:`cache_hits` and
    :attr:`cache_misses` count lookups; the same counts feed the
    ``db.cache_hits`` / ``db.cache_misses`` perf counters when the perf
    registry is enabled.

    Args:
        database: the data to execute against.
        max_intermediate: abort (raise :class:`ReproError`) if a join's
            intermediate result exceeds this many tuples — a safety net
            against accidentally exploding cross products.
        cache_size: number of distinct queries to memoize.
    """

    def __init__(
        self,
        database: Database,
        max_intermediate: int = 2_000_000,
        cache_size: int = 200_000,
    ) -> None:
        self.database = database
        self.schema = database.schema
        self.max_intermediate = max_intermediate
        self._cache: OrderedDict[tuple, int] = OrderedDict()  # safe: R015 per-process LRU of deterministic counts; racing writers store equal values
        self._cache_size = cache_size
        self.executed_count = 0
        self.cache_hits = 0
        self.cache_misses = 0
        # (table, column) -> (argsort order, sorted values) of the full
        # column; reused whenever a join side has no local predicates.
        self._sorted_columns: dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] = {}  # safe: R015 idempotent memo of a pure sort of immutable column data
        # (table, column) -> dense key->count lookup (or None when the key
        # domain is unsuitable); reused for count-only join edges.
        self._count_tables: dict[tuple[str, str], tuple[int, np.ndarray] | None] = {}  # safe: R015 idempotent memo derived purely from immutable column data

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def count(self, query: Query) -> int:
        """True cardinality of ``query`` (``COUNT(*)``)."""
        key = query.cache_key()
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            if PERF.enabled:
                PERF.incr("db.cache_hits")
            return cached
        self.cache_misses += 1
        if PERF.enabled:
            PERF.incr("db.cache_misses")
        result = self._execute(query)
        if len(self._cache) >= self._cache_size:
            self._cache.popitem(last=False)
        self._cache[key] = result
        self.executed_count += 1
        return result

    def count_many(self, queries) -> np.ndarray:
        """Vector of true cardinalities for an iterable of queries."""
        return np.array([self.count(q) for q in queries], dtype=np.float64)

    def try_count(self, query: Query) -> int | None:
        """Like :meth:`count`, but ``None`` when the budget is exceeded."""
        try:
            return self.count(query)
        except ExecutionBudgetError:
            return None

    def selectivity(self, table: str, predicates: dict) -> float:
        """Fraction of ``table`` rows passing its local predicates."""
        rows = self.database.table(table).num_rows
        if rows == 0:
            return 0.0
        mask = self._scan_mask(table, predicates)
        return float(mask.sum()) / rows

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _scan_mask(self, table_name: str, predicates: dict) -> np.ndarray:
        """Boolean row mask for the local predicates of one table."""
        table = self.database.table(table_name)
        mask = np.ones(table.num_rows, dtype=bool)
        for (tbl, col), (low, high) in predicates.items():
            if tbl != table_name:
                continue
            column = table.schema.column(col)
            values = table.column(col)
            lo = column.denormalize(low)
            hi = column.denormalize(high)
            mask &= (values >= lo) & (values <= hi)
        return mask

    def _sorted_column(self, table: str, column: str) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(argsort order, sorted values)`` of a full column."""
        key = (table, column)
        hit = self._sorted_columns.get(key)
        if hit is None:
            values = self.database.table(table).column(column)
            order = np.argsort(values, kind="stable")
            hit = (order, values[order])
            self._sorted_columns[key] = hit
        return hit

    @staticmethod
    def _build_count_table(keys: np.ndarray) -> tuple[int, np.ndarray] | None:
        """Dense ``key -> multiplicity`` lookup, or None if too sparse.

        The lookup array is padded with a zero slot on both ends so lookups
        can clamp out-of-range keys onto a zero count with one ``take``.
        """
        if keys.size == 0:
            return None
        base = int(keys.min())
        span = int(keys.max()) - base + 1
        if span > 4 * keys.size + 1024:
            return None
        padded = np.zeros(span + 2, dtype=np.int64)
        padded[1:-1] = np.bincount(keys - base, minlength=span)
        return base, padded

    def _match_counts(
        self, table: str, column: str, rows: np.ndarray | None, left_keys: np.ndarray
    ) -> np.ndarray | None:
        """Per-``left_keys`` match counts against a (filtered) column.

        Uses a dense direct-address table — O(len(left)) gather with no
        log factor — when both key dtypes are integral and the right key
        domain is compact. Returns None when inapplicable; callers fall
        back to the sort/searchsorted path.
        """
        values = self.database.table(table).column(column)
        if not (
            np.issubdtype(values.dtype, np.integer)
            and np.issubdtype(left_keys.dtype, np.integer)
        ):
            return None
        if rows is None:
            cache_key = (table, column)
            if cache_key in self._count_tables:
                lookup = self._count_tables[cache_key]
            else:
                lookup = self._build_count_table(values)
                self._count_tables[cache_key] = lookup
        else:
            lookup = self._build_count_table(values[rows])
        if lookup is None:
            return None
        base, padded = lookup
        # +1 for the zero pad slot; mode="clip" maps any out-of-range key
        # onto a padding slot, i.e. a zero count.
        return padded.take(left_keys - (base - 1), mode="clip")

    @staticmethod
    def _orient_edges(tree_edges, root: str) -> list[tuple[str, str, str, str]]:
        """BFS orientation ``(old_table, old_col, new_table, new_col)``."""
        joined = {root}
        oriented: list[tuple[str, str, str, str]] = []
        for edge in tree_edges:
            if edge.left_table in joined and edge.right_table in joined:
                raise QueryError(f"spanning tree revisits edge {edge}")
            if edge.left_table in joined:
                item = (edge.left_table, edge.left_column, edge.right_table, edge.right_column)
            elif edge.right_table in joined:
                item = (edge.right_table, edge.right_column, edge.left_table, edge.left_column)
            else:
                raise QueryError(f"join edge {edge} is disconnected from current join")
            joined.add(item[2])
            oriented.append(item)
        return oriented

    def _execute_counting(
        self,
        oriented: list[tuple[str, str, str, str]],
        filtered: dict[str, np.ndarray | None],
        root: str,
    ) -> int | None:
        """Count by folding per-row multiplicities up the join tree.

        Classic acyclic-join counting: each table carries a weight vector
        over its (filtered) rows, and a child's weights fold onto its parent
        as per-key sums, so arrays never exceed a table's size — unlike the
        materializing path whose intermediates grow to the pair count. After
        edge ``k`` the root weights sum to the size of the partial join of
        the first ``k + 2`` tables, an exact integer identical to the
        materializing loop's running total (weights stay far below 2**53,
        so the float64 arithmetic is exact). Budget checks, zero
        propagation, and the final count therefore match bit-for-bit.
        Returns None when any needed key column is non-integer or its
        domain is not dense enough to bincount (caller falls back).
        """
        database = self.database
        # child table -> (parent table, parent key column, child key column)
        parent: dict[str, tuple[str, str, str]] = {}
        children: dict[str, list[str]] = {root: []}
        # child table -> its subtree multiplicities folded onto parent rows
        fold_vecs: dict[str, np.ndarray] = {}

        def keys_of(table: str, column: str) -> np.ndarray:
            values = database.table(table).column(column)
            rows = filtered[table]
            return values if rows is None else values[rows]

        def weight_of(table: str) -> np.ndarray | None:
            """Product of child folds over the table's rows (None = ones)."""
            weights: np.ndarray | None = None
            for child in children[table]:
                vec = fold_vecs[child]
                weights = vec if weights is None else weights * vec
            return weights

        def fold(child: str) -> np.ndarray | None:
            """Per-parent-row sums of the child subtree's multiplicities."""
            parent_table, parent_col, child_col = parent[child]
            child_keys = keys_of(child, child_col)
            parent_keys = keys_of(parent_table, parent_col)
            if child_keys.size == 0 or not (
                np.issubdtype(child_keys.dtype, np.integer)
                and np.issubdtype(parent_keys.dtype, np.integer)
            ):
                return None
            base = int(child_keys.min())
            span = int(child_keys.max()) - base + 1
            if span > 4 * child_keys.size + 1024:
                return None
            weights = weight_of(child)
            if weights is None:
                grouped = np.bincount(child_keys - base, minlength=span).astype(
                    np.float64
                )
            else:
                grouped = np.bincount(child_keys - base, weights=weights, minlength=span)
            padded = np.zeros(grouped.size + 2)
            padded[1:-1] = grouped
            # +1 for the zero pad slot; mode="clip" maps out-of-range parent
            # keys onto a padding slot, i.e. a zero count.
            return padded.take(parent_keys - (base - 1), mode="clip")

        total = 0
        for old_table, old_col, new_table, new_col in oriented:
            parent[new_table] = (old_table, old_col, new_col)
            children[new_table] = []
            children[old_table].append(new_table)
            # Only subtrees along the attachment path changed; re-fold them
            # bottom-up (unchanged sibling folds are reused from the cache).
            node = new_table
            while node != root:
                vec = fold(node)
                if vec is None:
                    return None
                fold_vecs[node] = vec
                node = parent[node][0]
            root_weights = weight_of(root)
            total = int(root_weights.sum())
            if total > self.max_intermediate:
                raise ExecutionBudgetError(
                    f"join would produce {total} pairs, over the "
                    f"{self.max_intermediate} budget"
                )
            if total == 0:
                return 0
        return total

    def _execute(self, query: Query) -> int:
        tables = sorted(query.tables, key=self.schema.table_index)
        database = self.database
        # Row ids passing local predicates; None means "every row" (no
        # effective predicates), which lets joins reuse cached column sorts.
        filtered: dict[str, np.ndarray | None] = {}
        predicate_tables = {tbl for tbl, _col in query.predicates}
        for name in tables:
            rows: np.ndarray | None = None
            if name in predicate_tables:
                mask = self._scan_mask(name, query.predicates)
                if not mask.all():
                    rows = np.nonzero(mask)[0]
                    if rows.size == 0:
                        return 0
            if rows is None and database.table(name).num_rows == 0:
                return 0
            filtered[name] = rows
        if len(tables) == 1:
            rows = filtered[tables[0]]
            if rows is None:
                return database.table(tables[0]).num_rows
            return int(rows.size)

        # Join order: BFS over the query's join subgraph; each new table is
        # attached with one hash join. Semantics follow the CE-benchmark
        # convention (JOB / STATS-CEB): a query joins along a spanning tree
        # of FK edges, so cyclic FK subsets (e.g. comments referencing both
        # users and posts) do not degenerate into near-empty self-
        # consistency filters.
        #
        # COUNT(*) never needs the final pair arrays, so each edge first
        # computes only the per-row match counts (enough for the budget
        # check and the running size); row ids are materialized solely for
        # tables that later edges still join against.
        tree_edges = self.schema.join_edges_within(query.tables)
        oriented = self._orient_edges(tree_edges, tables[0])
        result = self._execute_counting(oriented, filtered, tables[0])
        if result is not None:
            return result

        # Intermediate state: per joined table, aligned arrays of row ids
        # (None = identity, i.e. position == row id). The BFS spanning tree
        # is rooted at tables[0] (lowest schema index), so its first edge
        # always touches tables[0].
        joined: dict[str, np.ndarray | None] = {tables[0]: filtered[tables[0]]}

        for position, (old_table, old_col, new_table, new_col) in enumerate(oriented):
            old_rows = joined[old_table]
            old_column = database.table(old_table).column(old_col)
            left_keys = old_column if old_rows is None else old_column[old_rows]
            new_rows = filtered[new_table]
            remaining = tree_edges[position + 1 :]
            if remaining:
                needed = {e.left_table for e in remaining} | {
                    e.right_table for e in remaining
                }
            else:
                needed = frozenset()
            counts = None
            if new_table not in needed:
                # Count-only edge: per-key multiplicities suffice.
                counts = self._match_counts(new_table, new_col, new_rows, left_keys)
            if counts is None:
                if new_rows is None:
                    order, sorted_right = self._sorted_column(new_table, new_col)
                else:
                    right_keys = database.table(new_table).column(new_col)[new_rows]
                    order = np.argsort(right_keys, kind="stable")
                    sorted_right = right_keys[order]
                lo = np.searchsorted(sorted_right, left_keys, side="left")
                hi = np.searchsorted(sorted_right, left_keys, side="right")
                counts = hi - lo
            total = int(counts.sum())
            if total > self.max_intermediate:
                raise ExecutionBudgetError(
                    f"join would produce {total} pairs, over the "
                    f"{self.max_intermediate} budget"
                )
            if total == 0:
                return 0
            if not remaining:
                return total
            next_joined: dict[str, np.ndarray | None] = {}
            kept = [name for name in joined if name in needed]
            if kept:
                left_idx = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
                for name in kept:
                    rows = joined[name]
                    # rows is None only for the BFS root before its first
                    # materialization, where position == row id.
                    next_joined[name] = left_idx if rows is None else rows[left_idx]
            if new_table in needed:
                starts = np.repeat(lo, counts)
                segment_starts = np.repeat(np.cumsum(counts) - counts, counts)
                within = np.arange(total, dtype=np.int64) - segment_starts
                right_pos = order[starts + within]
                next_joined[new_table] = right_pos if new_rows is None else new_rows[right_pos]
            joined = next_joined

        return total
