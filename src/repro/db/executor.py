"""Ground-truth SPJ execution: ``COUNT(*)`` over the columnar engine.

This is the substrate that plays PostgreSQL's role in the paper: it gives
the attacker true cardinalities for crafted queries (the threat model grants
``COUNT(*)`` execution) and gives the evaluation harness the true
cardinalities of plan sub-joins.

Joins are FK equi-joins evaluated with sort-based hash joins over numpy
arrays; predicates are pushed down to the scans. Results are memoized by
query identity because the planner probes many overlapping sub-joins.
"""

from __future__ import annotations

import numpy as np

from repro.db.query import Query
from repro.db.table import Database
from repro.utils.errors import ExecutionBudgetError, QueryError


def hash_join_pairs(
    left_vals: np.ndarray,
    right_vals: np.ndarray,
    max_pairs: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """All matching index pairs between two key arrays.

    Returns ``(left_idx, right_idx)`` such that
    ``left_vals[left_idx] == right_vals[right_idx]`` covers every match,
    duplicates included (bag semantics, like SQL).

    Raises:
        ExecutionBudgetError: the match count exceeds ``max_pairs`` — the
            check runs *before* materializing the index arrays, so runaway
            joins abort cheaply instead of exhausting memory.
    """
    left_vals = np.asarray(left_vals)
    right_vals = np.asarray(right_vals)
    if len(left_vals) == 0 or len(right_vals) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(right_vals, kind="stable")
    sorted_right = right_vals[order]
    lo = np.searchsorted(sorted_right, left_vals, side="left")
    hi = np.searchsorted(sorted_right, left_vals, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if max_pairs is not None and total > max_pairs:
        raise ExecutionBudgetError(
            f"join would produce {total} pairs, over the {max_pairs} budget"
        )
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(len(left_vals), dtype=np.int64), counts)
    starts = np.repeat(lo, counts)
    segment_starts = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - segment_starts
    right_idx = order[starts + within]
    return left_idx, right_idx


class Executor:
    """Counts query results; memoizes by query identity.

    Args:
        database: the data to execute against.
        max_intermediate: abort (raise :class:`ReproError`) if a join's
            intermediate result exceeds this many tuples — a safety net
            against accidentally exploding cross products.
        cache_size: number of distinct queries to memoize.
    """

    def __init__(
        self,
        database: Database,
        max_intermediate: int = 2_000_000,
        cache_size: int = 200_000,
    ) -> None:
        self.database = database
        self.schema = database.schema
        self.max_intermediate = max_intermediate
        self._cache: dict[tuple, int] = {}
        self._cache_size = cache_size
        self.executed_count = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def count(self, query: Query) -> int:
        """True cardinality of ``query`` (``COUNT(*)``)."""
        key = query.cache_key()
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        result = self._execute(query)
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[key] = result
        self.executed_count += 1
        return result

    def count_many(self, queries) -> np.ndarray:
        """Vector of true cardinalities for an iterable of queries."""
        return np.array([self.count(q) for q in queries], dtype=np.float64)

    def try_count(self, query: Query) -> int | None:
        """Like :meth:`count`, but ``None`` when the budget is exceeded."""
        try:
            return self.count(query)
        except ExecutionBudgetError:
            return None

    def selectivity(self, table: str, predicates: dict) -> float:
        """Fraction of ``table`` rows passing its local predicates."""
        rows = self.database.table(table).num_rows
        if rows == 0:
            return 0.0
        mask = self._scan_mask(table, predicates)
        return float(mask.sum()) / rows

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _scan_mask(self, table_name: str, predicates: dict) -> np.ndarray:
        """Boolean row mask for the local predicates of one table."""
        table = self.database.table(table_name)
        mask = np.ones(table.num_rows, dtype=bool)
        for (tbl, col), (low, high) in predicates.items():
            if tbl != table_name:
                continue
            column = table.schema.column(col)
            values = table.column(col)
            lo = column.denormalize(low)
            hi = column.denormalize(high)
            mask &= (values >= lo) & (values <= hi)
        return mask

    def _execute(self, query: Query) -> int:
        tables = sorted(query.tables, key=self.schema.table_index)
        filtered: dict[str, np.ndarray] = {}
        for name in tables:
            mask = self._scan_mask(name, query.predicates)
            filtered[name] = np.nonzero(mask)[0]
            if filtered[name].size == 0:
                return 0
        if len(tables) == 1:
            return int(filtered[tables[0]].size)

        # Join order: BFS over the query's join subgraph; each new table is
        # attached with one hash join. Semantics follow the CE-benchmark
        # convention (JOB / STATS-CEB): a query joins along a spanning tree
        # of FK edges, so cyclic FK subsets (e.g. comments referencing both
        # users and posts) do not degenerate into near-empty self-
        # consistency filters.
        tree_edges = self.schema.join_edges_within(query.tables)

        # Intermediate state: per joined table, aligned arrays of row ids.
        # The BFS spanning tree is rooted at tables[0] (lowest schema index),
        # so its first edge always touches tables[0].
        joined: dict[str, np.ndarray] = {tables[0]: filtered[tables[0]]}

        for edge in tree_edges:
            if edge.left_table in joined and edge.right_table in joined:
                raise QueryError(f"spanning tree revisits edge {edge}")
            if edge.left_table in joined:
                old_table, new_table = edge.left_table, edge.right_table
                old_col, new_col = edge.left_column, edge.right_column
            elif edge.right_table in joined:
                old_table, new_table = edge.right_table, edge.left_table
                old_col, new_col = edge.right_column, edge.left_column
            else:
                raise QueryError(f"join edge {edge} is disconnected from current join")
            old_rows = joined[old_table]
            new_rows = filtered[new_table]
            left_keys = self.database.table(old_table).column(old_col)[old_rows]
            right_keys = self.database.table(new_table).column(new_col)[new_rows]
            left_idx, right_idx = hash_join_pairs(
                left_keys, right_keys, max_pairs=self.max_intermediate
            )
            joined = {name: rows[left_idx] for name, rows in joined.items()}
            joined[new_table] = new_rows[right_idx]
            if next(iter(joined.values())).size == 0:
                return 0

        return int(next(iter(joined.values())).size)
