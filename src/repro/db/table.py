"""Columnar in-memory tables and the database container."""

from __future__ import annotations

import numpy as np

from repro.db.schema import DatabaseSchema, TableSchema
from repro.utils.errors import SchemaError


class Table:
    """A columnar table: one numpy array per column, equal lengths."""

    def __init__(self, schema: TableSchema, columns: dict[str, np.ndarray]) -> None:
        expected = {c.name for c in schema.columns}
        provided = set(columns)
        if expected != provided:
            raise SchemaError(
                f"table {schema.name!r} columns mismatch: "
                f"missing={sorted(expected - provided)}, extra={sorted(provided - expected)}"
            )
        lengths = {name: len(arr) for name, arr in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"table {schema.name!r} has ragged columns: {lengths}")
        self.schema = schema
        self.columns = {name: np.asarray(arr) for name, arr in columns.items()}
        self.num_rows = next(iter(lengths.values())) if lengths else 0

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(f"table {self.schema.name!r} has no column {name!r}") from None

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={self.num_rows})"


class Database:
    """A schema plus one :class:`Table` per schema table."""

    def __init__(self, schema: DatabaseSchema, tables: dict[str, Table]) -> None:
        missing = set(schema.table_names) - set(tables)
        extra = set(tables) - set(schema.table_names)
        if missing or extra:
            raise SchemaError(
                f"database tables mismatch: missing={sorted(missing)}, extra={sorted(extra)}"
            )
        self.schema = schema
        self.tables = dict(tables)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"database has no table {name!r}") from None

    @property
    def name(self) -> str:
        return self.schema.name

    def total_rows(self) -> int:
        return sum(t.num_rows for t in self.tables.values())

    def __repr__(self) -> str:
        return f"Database({self.name!r}, tables={len(self.tables)}, rows={self.total_rows()})"
