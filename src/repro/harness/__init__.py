"""Experiment harness shared by the benchmark scripts and integration tests."""

from repro.harness.experiments import (
    METHOD_LABELS,
    METHODS,
    AttackOutcome,
    AttackScenario,
    build_scenario,
    craft_poison,
    e2e_join_queries,
    get_detector,
    get_scenario,
    get_surrogate,
    GridJob,
    make_workloads,
    run_attack,
    run_e2e,
    run_grid,
)

__all__ = [
    "METHODS",
    "METHOD_LABELS",
    "AttackScenario",
    "AttackOutcome",
    "build_scenario",
    "get_scenario",
    "make_workloads",
    "craft_poison",
    "run_attack",
    "run_e2e",
    "e2e_join_queries",
    "get_surrogate",
    "get_detector",
    "GridJob",
    "run_grid",
]
