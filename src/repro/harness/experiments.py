"""Shared experiment harness for the paper's evaluation (Section 7).

Builds attack scenarios (dataset + trained black-box CE model + workloads)
and runs each poisoning method against them, producing the quantities every
table and figure reports: Q-error samples before/after, E2E latencies,
divergences, and timings. The benchmark scripts in ``benchmarks/`` are thin
wrappers over this module so the logic is unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.attack.algorithms import (
    GeneratorTrainConfig,
    rehearsal_value,
    train_generator_accelerated,
    train_generator_basic,
)
from repro.attack.baselines import (
    greedy_search,
    loss_based_selection,
    random_poison,
    train_generator_loss_based,
)
from repro.attack.detector import VAEAnomalyDetector
from repro.attack.generator import PoisonQueryGenerator
from repro.attack.pace import PaceAttack, PaceConfig
from repro.attack.surrogate import SurrogateConfig
from repro.ce.base import CardinalityEstimator
from repro.ce.deployment import DeployedEstimator
from repro.ce.registry import create_model
from repro.ce.trainer import TrainConfig, evaluate_q_errors, train_model
from repro.datasets.registry import load_dataset
from repro.db.executor import Executor
from repro.db.query import Query
from repro.db.table import Database
from repro.metrics.divergence import workload_divergence
from repro.metrics.qerror import QErrorSummary, degradation_factor
from repro.utils.config import ScaleConfig, get_scale
from repro.utils.errors import ReproError
from repro.utils.rng import derive_rng
from repro.utils.timer import timed
from repro.workload.encoding import QueryEncoder
from repro.workload.generator import WorkloadGenerator
from repro.workload.templates import template_workload
from repro.workload.workload import Workload

#: The attack methods compared throughout Section 7, in the paper's order.
METHODS: tuple[str, ...] = ("clean", "random", "lbs", "greedy", "lbg", "pace")

METHOD_LABELS: dict[str, str] = {
    "clean": "Clean",
    "random": "Random",
    "lbs": "Lb-S",
    "greedy": "Greedy",
    "lbg": "Lb-G",
    "pace": "PACE",
}

#: Datasets whose workloads come from templates (IMDB-JOB / STATS-CEB style).
_TEMPLATE_DATASETS = ("imdb", "stats")


@dataclass
class AttackScenario:
    """A dataset with a deployed black-box CE model and fixed workloads."""

    dataset: str
    model_type: str
    scale: ScaleConfig
    seed: int
    database: Database
    executor: Executor
    encoder: QueryEncoder
    train_workload: Workload
    test_workload: Workload
    deployed: DeployedEstimator
    clean_state: dict[str, np.ndarray]
    _surrogate: CardinalityEstimator | None = None
    _detector: VAEAnomalyDetector | None = None
    _speculation: object | None = None

    @property
    def model(self) -> CardinalityEstimator:
        return self.deployed.inspect_model()

    def clean_q_errors(self) -> np.ndarray:
        self.deployed.restore(self.clean_state)
        return evaluate_q_errors(self.model, self.test_workload)

    def reset(self) -> None:
        """Restore the deployed model to its never-attacked parameters."""
        self.deployed.restore(self.clean_state)


@dataclass
class AttackOutcome:
    """One method's attack result on one scenario."""

    method: str
    before: np.ndarray
    after: np.ndarray
    poison_queries: list[Query] = field(default_factory=list)
    divergence: float = 0.0
    train_seconds: float = 0.0
    generate_seconds: float = 0.0
    attack_seconds: float = 0.0
    objective_curve: list[float] = field(default_factory=list)

    @property
    def degradation(self) -> float:
        return degradation_factor(self.before, self.after)

    def summary(self) -> QErrorSummary:
        return QErrorSummary.from_errors(self.after)


def make_workloads(
    database: Database, executor: Executor, scale: ScaleConfig, seed: int
) -> tuple[Workload, Workload]:
    """Training/testing workloads per the paper's per-dataset recipe."""
    if database.name in _TEMPLATE_DATASETS:
        train = template_workload(
            database, scale.train_queries, executor=executor, seed=seed
        )
        test = template_workload(
            database, scale.test_queries, executor=executor, seed=seed + 1
        )
    else:
        generator = WorkloadGenerator(database, executor, seed=seed)
        train = generator.generate(scale.train_queries)
        test = generator.generate(scale.test_queries)
    return train, test


def build_scenario(
    dataset: str,
    model_type: str,
    scale: ScaleConfig | str | None = None,
    seed: int = 0,
    update_steps: int | None = None,
) -> AttackScenario:
    """Build (train) a fresh attack scenario."""
    if isinstance(scale, str) or scale is None:
        scale = get_scale(scale)
    database = load_dataset(dataset, scale=scale, seed=seed)
    executor = Executor(database)
    train_wl, test_wl = make_workloads(database, executor, scale, seed)
    encoder = QueryEncoder(database.schema)
    model = create_model(model_type, encoder, hidden_dim=scale.hidden_dim, seed=seed)
    train_model(model, train_wl, TrainConfig(epochs=scale.train_epochs, seed=seed))
    deployed = DeployedEstimator(
        model, executor, update_steps=update_steps or scale.update_steps
    )
    return AttackScenario(
        dataset=dataset,
        model_type=model_type,
        scale=scale,
        seed=seed,
        database=database,
        executor=executor,
        encoder=encoder,
        train_workload=train_wl,
        test_workload=test_wl,
        deployed=deployed,
        clean_state=model.state_dict(),
    )


@lru_cache(maxsize=64)
def _cached_scenario(dataset: str, model_type: str, scale_name: str, seed: int) -> AttackScenario:  # safe: R015 per-process memo is intended; scenarios are pure functions of the arguments
    return build_scenario(dataset, model_type, scale=scale_name, seed=seed)


def get_scenario(
    dataset: str, model_type: str, scale: ScaleConfig | str | None = None, seed: int = 0
) -> AttackScenario:
    """Cached scenario (reset before each attack run)."""
    if isinstance(scale, ScaleConfig):
        scale_name = scale.name
    else:
        scale_name = scale or get_scale().name
    scenario = _cached_scenario(dataset, model_type, scale_name, seed)
    scenario.reset()
    return scenario


# ----------------------------------------------------------------------
# shared attack ingredients
# ----------------------------------------------------------------------
def get_surrogate(scenario: AttackScenario, model_type: str | None = None):
    """Speculate + train the surrogate once per scenario (shared by methods).

    ``model_type`` skips probing and forces the surrogate family through
    the ``speculate=False`` path (the Table 7 known-type machinery).
    Deterministic test setups use it to decouple the end-to-end attack
    assertions from type speculation, whose accuracy/latency similarity
    signal (Section 4.1) is too weak at smoke scale to gamble them on.
    """
    if scenario._surrogate is None:
        scenario.reset()
        overrides = (
            {} if model_type is None
            else {"speculate": False, "forced_model_type": model_type}
        )
        attack = PaceAttack(
            scenario.database,
            scenario.deployed,
            scenario.test_workload,
            _pace_config(scenario, **overrides),
        )
        speculation, surrogate = attack.acquire_surrogate()
        scenario._surrogate = surrogate
        scenario._speculation = speculation
    return scenario._surrogate


def get_detector(scenario: AttackScenario) -> VAEAnomalyDetector:
    if scenario._detector is None:
        detector = VAEAnomalyDetector(scenario.encoder.dim, seed=scenario.seed)
        detector.fit(
            scenario.train_workload.encode(scenario.encoder),
            epochs=40,
            seed=scenario.seed,
        )
        scenario._detector = detector
    return scenario._detector


def _pace_config(scenario: AttackScenario, **overrides) -> PaceConfig:
    scale = scenario.scale
    generator = GeneratorTrainConfig(
        poison_batch=min(scale.poison_queries, 64),
        update_steps=scale.update_steps,
        iterations=overrides.pop("iterations", max(scale.generator_steps * 2, 16)),
        seed=scenario.seed,
    )
    config = PaceConfig(
        poison_queries=scale.poison_queries,
        attacker_queries=scale.train_queries,
        probe_queries_per_group=scale.probe_queries_per_group,
        surrogate=SurrogateConfig(hidden_dim=scale.hidden_dim, seed=scenario.seed),
        candidate_train=TrainConfig(epochs=max(scale.train_epochs // 2, 10), seed=scenario.seed),
        generator=generator,
        seed=scenario.seed,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def craft_poison(
    scenario: AttackScenario,
    method: str,
    count: int | None = None,
    algorithm: str = "accelerated",
    use_detector: bool = True,
    seed: int | None = None,
) -> tuple[list[Query], float, float, list[float]]:
    """Craft poisoning queries with one method.

    Returns ``(queries, train_seconds, generate_seconds, objective_curve)``.
    """
    count = count or scenario.scale.poison_queries
    seed = scenario.seed if seed is None else seed
    rng = derive_rng(seed + 17)
    if method == "clean":
        return [], 0.0, 0.0, []
    if method == "random":
        with timed() as elapsed:
            queries = random_poison(scenario.database, scenario.executor, count, seed=seed)
        return queries, 0.0, elapsed(), []

    surrogate = get_surrogate(scenario)
    if method == "lbs":
        with timed() as elapsed:
            queries = loss_based_selection(
                scenario.database, scenario.executor, surrogate, count, seed=seed
            )
        return queries, 0.0, elapsed(), []
    if method == "greedy":
        with timed() as elapsed:
            queries = greedy_search(
                scenario.database, scenario.executor, surrogate, count, seed=seed
            )
        return queries, 0.0, elapsed(), []

    detector = get_detector(scenario) if use_detector and method == "pace" else None
    if method == "lbg":
        trainer = train_generator_loss_based
        restarts = 1
    elif method == "pace":
        trainer = (
            train_generator_accelerated if algorithm == "accelerated" else train_generator_basic
        )
        # Two independent restarts, kept by dress rehearsal: the bivariate
        # objective's landscape is multi-modal and a single run can stall.
        restarts = 2 if algorithm == "accelerated" else 1
    else:
        raise ReproError(f"unknown attack method {method!r}; expected one of {METHODS}")

    best = None
    best_value = -np.inf
    train_seconds = 0.0
    with timed() as train_elapsed:
        for restart in range(restarts):
            gen_config = GeneratorTrainConfig(
                poison_batch=min(count, 64),
                update_steps=scenario.scale.update_steps,
                iterations=max(scenario.scale.generator_steps * 2, 16),
                detector=detector,
                seed=seed + restart * 101,
            )
            generator = PoisonQueryGenerator(scenario.encoder, seed=seed + restart * 101)
            result = trainer(
                generator, surrogate, scenario.executor, scenario.test_workload, gen_config
            )
            value = rehearsal_value(
                generator, surrogate, scenario.executor, scenario.test_workload, gen_config
            )
            if value > best_value:
                best_value = value
                best = (generator, result)
    train_seconds = train_elapsed()
    generator, result = best
    with timed() as gen_elapsed:
        queries = generator.generate_usable_queries(count, rng, scenario.executor)
    return queries, train_seconds, gen_elapsed(), result.objective_curve


def run_attack(
    scenario: AttackScenario,
    method: str,
    count: int | None = None,
    algorithm: str = "accelerated",
    use_detector: bool = True,
    seed: int | None = None,
) -> AttackOutcome:
    """Run one method end to end; leaves the scenario reset afterwards."""
    scenario.reset()
    before = evaluate_q_errors(scenario.model, scenario.test_workload)
    queries, train_seconds, generate_seconds, curve = craft_poison(
        scenario, method, count=count, algorithm=algorithm,
        use_detector=use_detector, seed=seed,
    )
    attack_seconds = 0.0
    divergence = 0.0
    if queries:
        history = scenario.train_workload.encode(scenario.encoder)
        poison_enc = scenario.encoder.encode_many(queries)
        divergence = workload_divergence(poison_enc, history)
        with timed() as elapsed:
            scenario.deployed.execute(queries)
        attack_seconds = elapsed()
    after = evaluate_q_errors(scenario.model, scenario.test_workload)
    scenario.reset()
    return AttackOutcome(
        method=method,
        before=before,
        after=after,
        poison_queries=queries,
        divergence=divergence,
        train_seconds=train_seconds,
        generate_seconds=generate_seconds,
        attack_seconds=attack_seconds,
        objective_curve=curve,
    )


# ----------------------------------------------------------------------
# experiment grids (the Section 7 sweep shape)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridJob:
    """One (scenario, method) cell of an experiment grid."""

    dataset: str
    model_type: str
    method: str
    scale: str = "smoke"
    seed: int = 0
    count: int | None = None


def _grid_worker_init(deterministic_timing: bool) -> None:
    """Per-worker setup: optionally pin the clock for timing determinism."""
    if deterministic_timing:
        from repro.utils.clock import FakeClock, install_clock

        install_clock(FakeClock())


def _run_grid_job(job: GridJob) -> AttackOutcome:
    """Execute one grid cell (also the unit of work in worker processes)."""
    scenario = get_scenario(job.dataset, job.model_type, scale=job.scale, seed=job.seed)
    return run_attack(scenario, job.method, count=job.count, seed=job.seed)


def run_grid(
    jobs,
    workers: int | None = None,
    deterministic_timing: bool = False,
    start_method: str = "fork",
) -> list[AttackOutcome]:
    """Run a grid of attack jobs, optionally across worker processes.

    Results come back in input-job order regardless of which worker
    finished first, and every random decision derives from each job's own
    seed, so a parallel run is reproducible job-for-job. Wall-clock fields
    (``train_seconds`` etc.) still measure real time; pass
    ``deterministic_timing=True`` to also pin the speculation clock
    (:class:`~repro.utils.clock.FakeClock` in every worker and in the
    serial path), which makes outcomes bit-identical between serial and
    parallel runs up to those wall-clock fields.

    Args:
        jobs: iterable of :class:`GridJob`.
        workers: process count; ``None``/``0``/``1`` runs serially in this
            process (reusing its scenario cache).
        deterministic_timing: pin latency measurements with a fake clock.
        start_method: multiprocessing start method (``"fork"`` shares the
            parent's loaded datasets copy-on-write; ``"spawn"`` gives
            pristine workers at the cost of re-importing).
    """
    jobs = list(jobs)
    if workers is None or workers <= 1 or len(jobs) <= 1:
        if deterministic_timing:
            from repro.utils.clock import FakeClock, use_clock

            with use_clock(FakeClock()):
                return [_run_grid_job(job) for job in jobs]
        return [_run_grid_job(job) for job in jobs]

    import multiprocessing as mp

    context = mp.get_context(start_method)
    with context.Pool(
        processes=min(workers, len(jobs)),
        initializer=_grid_worker_init,
        initargs=(deterministic_timing,),
    ) as pool:
        # Pool.map preserves input order: the merge is deterministic even
        # when jobs complete out of order.
        return pool.map(_run_grid_job, jobs)


# ----------------------------------------------------------------------
# end-to-end latency (Table 5)
# ----------------------------------------------------------------------
def e2e_join_queries(scenario: AttackScenario, count: int = 20, min_tables: int = 2):
    """Multi-table join queries for the E2E experiment (paper uses 20)."""
    queries = [
        ex.query for ex in scenario.test_workload if ex.query.num_tables >= min_tables
    ]
    if len(queries) < count:
        generator = WorkloadGenerator(
            scenario.database, scenario.executor, seed=scenario.seed + 99
        )
        attempts = 0
        while len(queries) < count and attempts < count * 30:
            attempts += 1
            query = generator.random_query(max_tables=4)
            if query.num_tables >= min_tables and scenario.executor.count(query) > 0:
                queries.append(query)
    if len(queries) < count:
        raise ReproError(
            f"could not assemble {count} multi-table join queries for {scenario.dataset}"
        )
    return queries[:count]


def run_e2e(scenario: AttackScenario, method: str, num_queries: int = 20,
            count: int | None = None, seed: int | None = None) -> float:
    """Simulated E2E seconds of the join workload after attacking with ``method``."""
    from repro.planner.simulator import E2ESimulator

    scenario.reset()
    queries, *_ = craft_poison(scenario, method, count=count, seed=seed)
    if queries:
        scenario.deployed.execute(queries)
    simulator = E2ESimulator(scenario.executor)
    result = simulator.run(e2e_join_queries(scenario, num_queries), scenario.model)
    scenario.reset()
    return result.total_seconds
