"""Durable, resumable experiment pipelines over the attack harness.

The Section-7 attack grid (:func:`repro.harness.experiments.run_grid`)
recast as a checkpointed step DAG in the artifact store:

* one ``surrogate:<dataset>/<model>`` step per scenario that any
  surrogate-based method needs — the trained surrogate's full state is
  persisted as a ``checkpoint`` artifact and becomes the lineage parent
  of every attack cell that consumed it;
* one ``cell:<dataset>/<model>/<method>`` step per grid cell, producing
  the cell's Q-error/divergence payload as a ``json`` artifact;
* a final ``report`` step merging every cell into one canonical JSON
  document (the byte-comparison target of the crash-recovery tests).

Every cell runs under a fresh :class:`~repro.utils.clock.FakeClock` and
derives all randomness from the run seed, so a run killed at any step
boundary and resumed produces a final report byte-identical to an
uninterrupted run — while completed cells replay from their checkpoints
instead of re-attacking.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.ce.registry import create_model
from repro.harness.experiments import (
    METHODS,
    AttackOutcome,
    AttackScenario,
    get_scenario,
    get_surrogate,
    run_attack,
)
from repro.metrics.qerror import QErrorSummary
from repro.store.pipeline import Pipeline, PipelineResult, Step, register_pipeline
from repro.store.store import ArtifactStore
from repro.utils.clock import FakeClock, use_clock
from repro.utils.errors import ReproError

SCHEMA_VERSION = 1

#: Builder name under which the grid pipeline is registered (and the
#: ``pipeline`` field of its run manifests).
GRID_PIPELINE = "attack-grid"

#: Name of the final merge step whose artifact is the run's report.
REPORT_STEP = "report"

#: Methods that never touch a surrogate (no checkpoint dependency).
_SURROGATE_FREE = ("clean", "random")


def surrogate_step_name(dataset: str, model_type: str) -> str:
    return f"surrogate:{dataset}/{model_type}"


def cell_step_name(dataset: str, model_type: str, method: str) -> str:
    return f"cell:{dataset}/{model_type}/{method}"


def outcome_payload(outcome: AttackOutcome) -> dict:
    """A deterministic, JSON-ready summary of one attack outcome."""
    return {
        "method": outcome.method,
        "degradation": float(outcome.degradation),
        "divergence": float(outcome.divergence),
        "poison_queries": len(outcome.poison_queries),
        "before": asdict(QErrorSummary.from_errors(outcome.before)),
        "after": asdict(QErrorSummary.from_errors(outcome.after)),
        "train_seconds": float(outcome.train_seconds),
        "generate_seconds": float(outcome.generate_seconds),
        "attack_seconds": float(outcome.attack_seconds),
        "objective_curve": [float(v) for v in outcome.objective_curve],
    }


def _seat_surrogate(scenario: AttackScenario, state, seed: int) -> None:
    """Install a checkpointed surrogate so the cell never re-trains it.

    Architecture mirrors :func:`repro.harness.experiments._pace_config`:
    the surrogate family is the scenario's own model type (the forced
    known-type path) at the scale's hidden width.
    """
    if scenario._surrogate is not None:
        return
    surrogate = create_model(
        scenario.model_type,
        scenario.encoder,
        hidden_dim=scenario.scale.hidden_dim,
        seed=seed,
    )
    surrogate.load_full_state_dict(state)
    scenario._surrogate = surrogate


def _surrogate_step_fn(dataset: str, model_type: str, scale: str, seed: int):
    def fn(_ctx):
        with use_clock(FakeClock()):
            scenario = get_scenario(dataset, model_type, scale=scale, seed=seed)
            surrogate = get_surrogate(scenario, model_type=model_type)
        return surrogate.full_state_dict()

    return fn


def _cell_step_fn(
    dataset: str,
    model_type: str,
    method: str,
    scale: str,
    seed: int,
    count: int | None,
    surrogate_dep: str | None,
):
    def fn(ctx):
        # A fresh FakeClock per cell: wall-clock fields become a pure
        # function of the cell's work, independent of which steps ran
        # before — a resumed suffix times identically to a cold run.
        with use_clock(FakeClock()):
            scenario = get_scenario(dataset, model_type, scale=scale, seed=seed)
            if surrogate_dep is not None:
                _seat_surrogate(scenario, ctx.inputs[surrogate_dep], seed)
            outcome = run_attack(scenario, method, count=count, seed=seed)
        payload = {"dataset": dataset, "model": model_type}
        payload.update(outcome_payload(outcome))
        return payload

    return fn


def _report_step_fn(params: dict, cell_names: list[str]):
    def fn(ctx):
        return {
            "schema_version": SCHEMA_VERSION,
            "tool": "pace-repro grid",
            "pipeline": GRID_PIPELINE,
            "datasets": list(params["datasets"]),
            "models": list(params["models"]),
            "methods": list(params["methods"]),
            "scale": params["scale"],
            "count": params["count"],
            "seed": ctx.run.manifest["seed"],
            "cells": len(cell_names),
            "grid": [ctx.inputs[name] for name in cell_names],
        }

    return fn


@register_pipeline(GRID_PIPELINE)
def build_attack_grid(params: dict, seed: int) -> Pipeline:
    """Build the grid pipeline from (JSON-round-trippable) params."""
    datasets = list(params.get("datasets") or ("dmv",))
    models = list(params.get("models") or ("fcn",))
    methods = list(params.get("methods") or _SURROGATE_FREE)
    scale = params.get("scale") or "smoke"
    count = params.get("count")
    unknown = sorted(set(methods) - set(METHODS))
    if unknown:
        raise ReproError(f"unknown attack methods {unknown}; expected among {METHODS}")
    canonical = {
        "datasets": datasets,
        "models": models,
        "methods": methods,
        "scale": scale,
        "count": count,
    }
    steps: list[Step] = []
    cell_names: list[str] = []
    for dataset in datasets:
        for model_type in models:
            needs_surrogate = any(m not in _SURROGATE_FREE for m in methods)
            surrogate_dep = None
            if needs_surrogate:
                surrogate_dep = surrogate_step_name(dataset, model_type)
                steps.append(Step(
                    name=surrogate_dep,
                    fn=_surrogate_step_fn(dataset, model_type, scale, seed),
                    kind="checkpoint",
                ))
            for method in methods:
                dep = surrogate_dep if method not in _SURROGATE_FREE else None
                name = cell_step_name(dataset, model_type, method)
                steps.append(Step(
                    name=name,
                    fn=_cell_step_fn(dataset, model_type, method, scale, seed,
                                     count, dep),
                    deps=(dep,) if dep else (),
                ))
                cell_names.append(name)
    steps.append(Step(
        name=REPORT_STEP,
        fn=_report_step_fn(canonical, cell_names),
        deps=tuple(cell_names),
        kind="report",
    ))
    return Pipeline(GRID_PIPELINE, steps, params=canonical, seed=seed)


def run_grid_durable(
    store: ArtifactStore,
    datasets=("dmv",),
    models=("fcn",),
    methods=_SURROGATE_FREE,
    scale: str = "smoke",
    seed: int = 0,
    count: int | None = None,
    run_id: str | None = None,
    resume: bool = False,
) -> PipelineResult:
    """Run (or resume) a durable attack grid in ``store``."""
    pipeline = build_attack_grid(
        {
            "datasets": list(datasets),
            "models": list(models),
            "methods": list(methods),
            "scale": scale,
            "count": count,
        },
        seed,
    )
    return pipeline.run(store, run_id=run_id, resume=resume)
