"""Streaming anomaly detectors over TSDB metric streams.

Three detector families, mirroring DBMind's anomaly-detection plane:

* :class:`SpikeDetector` — the newest value jumps by a ratio against the
  trailing median (direction ``"up"`` or ``"down"``);
* :class:`CusumDetector` — CUSUM level-shift: the cumulative relative
  excursion above a calibrated reference drifts past a threshold;
* :class:`ForecastResidualDetector` — an EWMA one-step forecast whose
  residual leaves its own trailing scale by a ratio.

Every detector is a pure function of the points it has been fed — no
RNG, no wall clock — so identical metric streams produce byte-identical
alarm sequences in any process (the determinism contract ``ops-sim``'s
scenario digest rests on). A :class:`DetectorBank` wires detectors to
named streams and replays only never-seen points on each sweep.

This module is on the ops hot path (swept every controller tick), so
flow rule R011 bans ground-truth execution and retraining here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.ops.tsdb import OpsError, TimeSeriesDB

#: Alarm severities, mild to severe.
SEVERITIES = ("warning", "critical")


@dataclass(frozen=True)
class Alarm:
    """One detector firing: which stream, when, how far out of band."""

    metric: str
    detector: str
    at: float
    value: float
    score: float
    severity: str
    detail: str

    def as_dict(self) -> dict:
        return {
            "metric": self.metric,
            "detector": self.detector,
            "at": self.at,
            "value": self.value,
            "score": self.score,
            "severity": self.severity,
            "detail": self.detail,
        }


def _median(values: list[float]) -> float:
    ranked = sorted(values)
    mid = len(ranked) // 2
    if len(ranked) % 2 == 1:
        return ranked[mid]
    return 0.5 * (ranked[mid - 1] + ranked[mid])


class Detector:
    """Base streaming detector: feed points, maybe get an alarm back."""

    name = "detector"

    def update(self, t: float, value: float) -> Alarm | None:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget learned state (called after a corrective action)."""
        raise NotImplementedError

    def _alarm(
        self, metric_hint: str, t: float, value: float, score: float, detail: str,
        severity: str = "critical",
    ) -> Alarm:
        return Alarm(
            metric=metric_hint,
            detector=self.name,
            at=t,
            value=value,
            score=score,
            severity=severity,
            detail=detail,
        )


class SpikeDetector(Detector):
    """The newest value jumps by ``ratio`` against the trailing median.

    ``direction="up"`` fires on ``value > ratio * median``;
    ``direction="down"`` fires on ``value < median / ratio``. ``floor``
    suppresses alarms while the trailing median is still tiny (a 3x jump
    from 1e-6 is noise, not a spike).
    """

    name = "spike"

    def __init__(
        self,
        ratio: float = 1.3,
        window: int = 8,
        min_points: int = 2,
        direction: str = "up",
        floor: float = 0.0,
    ) -> None:
        if ratio <= 1.0:
            raise OpsError(f"spike ratio must exceed 1, got {ratio}")
        if direction not in ("up", "down"):
            raise OpsError(f"direction must be 'up' or 'down', got {direction!r}")
        self.ratio = float(ratio)
        self.window = int(window)
        self.min_points = int(min_points)
        self.direction = direction
        self.floor = float(floor)
        self._trail: deque[float] = deque(maxlen=self.window)

    def reset(self) -> None:
        self._trail.clear()

    def update(self, t: float, value: float) -> Alarm | None:
        alarm = None
        if len(self._trail) >= self.min_points:
            reference = _median(list(self._trail))
            if reference >= self.floor:
                if self.direction == "up" and value > self.ratio * reference:
                    score = value / reference if reference > 0.0 else float("inf")
                    alarm = self._alarm(
                        "", t, value, score,
                        f"value {value:.6g} is {score:.2f}x the trailing "
                        f"median {reference:.6g} (ratio {self.ratio:g})",
                    )
                elif self.direction == "down" and value * self.ratio < reference:
                    score = reference / value if value > 0.0 else float("inf")
                    alarm = self._alarm(
                        "", t, value, score,
                        f"value {value:.6g} fell to 1/{score:.2f} of the "
                        f"trailing median {reference:.6g} (ratio {self.ratio:g})",
                    )
        self._trail.append(float(value))
        return alarm


class CusumDetector(Detector):
    """CUSUM level-shift detection on relative excursions.

    Calibrates a reference level from the first ``calibrate`` points,
    then accumulates ``max(0, S + (value - ref)/scale - slack)`` (or the
    mirrored sum for ``direction="down"``) and fires once ``S`` crosses
    ``threshold`` — the standard one-sided CUSUM, robust to single-point
    noise that a spike detector would have to ignore.
    """

    name = "cusum"

    def __init__(
        self,
        slack: float = 0.05,
        threshold: float = 0.25,
        calibrate: int = 3,
        direction: str = "up",
    ) -> None:
        if threshold <= 0.0:
            raise OpsError(f"cusum threshold must be positive, got {threshold}")
        if calibrate < 1:
            raise OpsError(f"cusum needs >=1 calibration points, got {calibrate}")
        if direction not in ("up", "down"):
            raise OpsError(f"direction must be 'up' or 'down', got {direction!r}")
        self.slack = float(slack)
        self.threshold = float(threshold)
        self.calibrate = int(calibrate)
        self.direction = direction
        self._samples: list[float] = []
        self._reference: float | None = None
        self._sum = 0.0

    def reset(self) -> None:
        self._samples = []
        self._reference = None
        self._sum = 0.0

    @property
    def reference(self) -> float | None:
        return self._reference

    def update(self, t: float, value: float) -> Alarm | None:
        if self._reference is None:
            self._samples.append(float(value))
            if len(self._samples) >= self.calibrate:
                self._reference = sum(self._samples) / len(self._samples)
                self._samples = []
            return None
        scale = abs(self._reference) if abs(self._reference) > 1e-12 else 1.0
        excursion = (value - self._reference) / scale
        if self.direction == "down":
            excursion = -excursion
        self._sum = max(0.0, self._sum + excursion - self.slack)
        if self._sum > self.threshold:
            alarm = self._alarm(
                "", t, value, self._sum / self.threshold,
                f"cusum sum {self._sum:.4f} crossed threshold "
                f"{self.threshold:g} (reference {self._reference:.6g}, "
                f"direction {self.direction})",
            )
            self._sum = 0.0  # re-arm; the controller handles dedup/cooldown
            return alarm
        return None


class ForecastResidualDetector(Detector):
    """EWMA forecast; alarm when the residual leaves its trailing scale.

    Forecasts the next value with an exponentially weighted moving
    average, tracks the EWMA of absolute residuals as the noise scale,
    and fires when ``|value - forecast| > ratio * scale`` (after a
    warm-up of ``min_points`` observations). ``floor`` is the smallest
    residual worth alarming on regardless of how quiet the stream was.
    """

    name = "forecast"

    def __init__(
        self,
        alpha: float = 0.5,
        ratio: float = 4.0,
        min_points: int = 4,
        floor: float = 0.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise OpsError(f"alpha must be in (0, 1], got {alpha}")
        if ratio <= 1.0:
            raise OpsError(f"forecast ratio must exceed 1, got {ratio}")
        self.alpha = float(alpha)
        self.ratio = float(ratio)
        self.min_points = int(min_points)
        self.floor = float(floor)
        self._forecast: float | None = None
        self._scale: float | None = None
        self._seen = 0

    def reset(self) -> None:
        self._forecast = None
        self._scale = None
        self._seen = 0

    def update(self, t: float, value: float) -> Alarm | None:
        alarm = None
        if self._forecast is not None:
            residual = value - self._forecast
            scale = self._scale if self._scale is not None else abs(residual)
            band = max(self.ratio * scale, self.floor)
            if self._seen >= self.min_points and abs(residual) > band > 0.0:
                score = abs(residual) / band
                alarm = self._alarm(
                    "", t, value, score,
                    f"residual {residual:+.6g} left the forecast band "
                    f"±{band:.6g} (forecast {self._forecast:.6g})",
                )
            self._scale = (
                abs(residual) if self._scale is None
                else (1.0 - self.alpha) * self._scale + self.alpha * abs(residual)
            )
            self._forecast = (
                (1.0 - self.alpha) * self._forecast + self.alpha * value
            )
        else:
            self._forecast = float(value)
        self._seen += 1
        return alarm


class DetectorBank:
    """Detectors wired to named streams; sweeps replay only new points."""

    def __init__(self, wiring: list[tuple[str, Detector]]) -> None:
        self._wiring = list(wiring)
        self._cursor: dict[int, int] = {}
        self.alarms: list[Alarm] = []

    def wiring(self) -> list[tuple[str, str]]:
        """(metric, detector-name) pairs, in sweep order."""
        return [(metric, det.name) for metric, det in self._wiring]

    def sweep(self, tsdb: TimeSeriesDB) -> list[Alarm]:
        """Feed every never-seen point to its detectors; new alarms out."""
        fresh: list[Alarm] = []
        for index, (metric, detector) in enumerate(self._wiring):
            points = tsdb.series(metric).points()
            start = self._cursor.get(index, 0)
            for t, value in points[start:]:
                alarm = detector.update(t, value)
                if alarm is not None:
                    fresh.append(
                        Alarm(**{**alarm.as_dict(), "metric": metric})
                    )
            self._cursor[index] = len(points)
        self.alarms.extend(fresh)
        return fresh

    def rearm(self) -> None:
        """Reset every detector's learned state (post-action re-baseline).

        Cursors are kept: already-swept points are never replayed, the
        detectors simply re-calibrate on whatever the plant looks like
        after the corrective action.
        """
        for _, detector in self._wiring:
            detector.reset()


def default_bank(
    qerror_metric: str = "serve.canary_qerror",
    spike_ratio: float = 1.25,
    cusum_threshold: float = 0.25,
) -> DetectorBank:
    """The standard wiring ``ops-sim`` and the controller deploy.

    Q-error gets all three families (it is the signal poisoning moves);
    latency and shed rate get spike detection; the cache hit rate gets a
    *downward* spike detector (a miss storm is a falling hit rate).
    """
    return DetectorBank([
        (qerror_metric, SpikeDetector(ratio=spike_ratio, floor=1.0)),
        (qerror_metric, CusumDetector(threshold=cusum_threshold)),
        (qerror_metric, ForecastResidualDetector(floor=1.0)),
        ("serve.p99_latency", SpikeDetector(ratio=2.0, floor=1e-4)),
        ("serve.shed_rate", SpikeDetector(ratio=2.0, floor=0.05)),
        ("serve.cache_hit_rate",
         SpikeDetector(ratio=2.0, direction="down", floor=0.05)),
    ])
