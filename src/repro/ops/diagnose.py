"""Root-cause classification: alarm combinations → named causes.

The detectors say *that* a stream left its band; this module says *why*,
by combining which streams alarmed with context the serve/cluster layers
already expose (did a promotion land since the last sweep? are any shard
workers unreachable?). The mapping is a deliberately small rule table —
auditable, deterministic, and exactly as strong as the telemetry:

========================  ==============================================
cause                     evidence pattern
========================  ==============================================
``dead_shard``            unreachable workers reported by the router
``poisoning``             quality (Q-error) alarm *and* a model
                          promotion landed since the previous sweep —
                          the serving model changed and got worse
``model_drift``           quality alarm with *no* recent promotion —
                          the model is stale against moving data
``cache_miss_storm``      cache-hit-rate / latency / shed alarms with
                          the quality streams quiet
``unknown``               alarms that match no pattern above
========================  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ops.detect import Alarm
from repro.ops.tsdb import OpsError

#: Every cause the classifier can emit, in priority order: when several
#: patterns match at once the earliest wins (a dead shard explains the
#: latency spike it causes; poisoning explains the drift it looks like).
CAUSES: tuple[str, ...] = (
    "dead_shard",
    "poisoning",
    "model_drift",
    "cache_miss_storm",
    "unknown",
)

#: Streams that measure estimate *quality* (vs. traffic/health).
_QUALITY_SUBSTRINGS = ("qerror", "q_error")
_CACHE_SUBSTRINGS = ("cache_hit_rate",)
_PRESSURE_SUBSTRINGS = ("latency", "shed_rate", "reject_rate")


@dataclass(frozen=True)
class Diagnosis:
    """One classified incident: the cause and the evidence behind it."""

    cause: str
    confidence: float
    detail: str
    alarms: tuple[Alarm, ...] = field(default_factory=tuple)

    def as_dict(self) -> dict:
        return {
            "cause": self.cause,
            "confidence": self.confidence,
            "detail": self.detail,
            "alarms": [alarm.as_dict() for alarm in self.alarms],
        }


def _is_quality(alarm: Alarm) -> bool:
    return any(tag in alarm.metric for tag in _QUALITY_SUBSTRINGS)


def _is_cache(alarm: Alarm) -> bool:
    return any(tag in alarm.metric for tag in _CACHE_SUBSTRINGS)


def _is_pressure(alarm: Alarm) -> bool:
    return any(tag in alarm.metric for tag in _PRESSURE_SUBSTRINGS)


class RootCauseClassifier:
    """Map one sweep's fresh alarms (plus plant context) to a cause."""

    def __init__(self, min_quality_alarms: int = 1) -> None:
        if min_quality_alarms < 1:
            raise OpsError(
                f"min_quality_alarms must be >= 1, got {min_quality_alarms}"
            )
        self.min_quality_alarms = int(min_quality_alarms)
        self.history: list[Diagnosis] = []

    def classify(
        self,
        alarms: list[Alarm],
        promotions_since_last: int = 0,
        unreachable_workers: int = 0,
    ) -> Diagnosis | None:
        """One diagnosis for this sweep, or ``None`` when all is quiet.

        ``promotions_since_last`` is how many model promotions landed
        since the previous sweep (from the ``serve.promotions`` delta
        stream or the retrain loop's counters); ``unreachable_workers``
        comes from the cluster router's worker stats.
        """
        diagnosis = self._classify(
            list(alarms), int(promotions_since_last), int(unreachable_workers)
        )
        if diagnosis is not None:
            self.history.append(diagnosis)
        return diagnosis

    def _classify(
        self, alarms: list[Alarm], promotions: int, unreachable: int
    ) -> Diagnosis | None:
        if unreachable > 0:
            return Diagnosis(
                cause="dead_shard",
                confidence=1.0,
                detail=(
                    f"{unreachable} shard worker(s) unreachable per router "
                    f"stats ({len(alarms)} concurrent alarm(s))"
                ),
                alarms=tuple(alarms),
            )
        if not alarms:
            return None
        quality = [a for a in alarms if _is_quality(a)]
        cache = [a for a in alarms if _is_cache(a)]
        pressure = [a for a in alarms if _is_pressure(a)]
        if len(quality) >= self.min_quality_alarms:
            detectors = sorted({a.detector for a in quality})
            if promotions > 0:
                return Diagnosis(
                    cause="poisoning",
                    confidence=min(1.0, 0.5 + 0.25 * len(quality)),
                    detail=(
                        f"quality regression flagged by {'+'.join(detectors)} "
                        f"right after {promotions} model promotion(s) — the "
                        f"update stream moved the model the wrong way"
                    ),
                    alarms=tuple(quality),
                )
            return Diagnosis(
                cause="model_drift",
                confidence=min(1.0, 0.4 + 0.2 * len(quality)),
                detail=(
                    f"quality regression flagged by {'+'.join(detectors)} "
                    f"with no recent promotion — the serving model went "
                    f"stale against the data"
                ),
                alarms=tuple(quality),
            )
        if cache or pressure:
            flagged = sorted({a.metric for a in cache + pressure})
            return Diagnosis(
                cause="cache_miss_storm",
                confidence=min(1.0, 0.4 + 0.2 * len(cache + pressure)),
                detail=(
                    f"traffic-side pressure on {', '.join(flagged)} while "
                    f"quality streams stayed in band"
                ),
                alarms=tuple(cache + pressure),
            )
        return Diagnosis(
            cause="unknown",
            confidence=0.25,
            detail=(
                "alarms on "
                + ", ".join(sorted({a.metric for a in alarms}))
                + " match no known cause pattern"
            ),
            alarms=tuple(alarms),
        )
