"""``pace-repro ops-sim``: unannounced poisoning vs the autonomic loop.

One seeded world (dataset + trained model + crafted poison pool) is
served twice over the identical chaos traffic trace — benign arrivals
that silently turn 50% poisoned at ``chaos_round``:

* **no_ops** — the plain serving stack: unguarded retrain promotes
  whatever the update stream produces, exactly the paper's threat model;
* **ops** — the same stack watched by an :class:`~repro.ops.loop.
  OpsController` that is *not told about the attack*: it only sees the
  TSDB streams (ServeStats snapshots + a held-out canary probe). It must
  detect the quality regression, diagnose poisoning, roll back bitwise
  to the last known-good promoted digest, and arm a promotion guard so
  later poisoned updates stay out.

Everything runs under a :class:`~repro.utils.clock.ManualClock`, so each
arm collapses into one *scenario digest* (SHA-256 over the canonical
JSON of its deterministic core: config coordinates, Q-error/canary
trajectories, the full alarm and action log, retrain events, final
checkpoint digest). ``run_ops_sim`` replays the ops arm a second time at
the same seed and embeds the digest equality — detection *and* recovery,
byte-reproducible, in one report. The ``verdict`` block is the CI gate:
detection fired, lineage recorded, ops arm within ``recovery_factor`` of
clean baseline, no-ops arm degraded past ``degrade_factor``, digests
stable.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.ce.deployment import DeployedEstimator
from repro.ce.trainer import evaluate_q_errors
from repro.cluster.sim import scenario_digest
from repro.harness.experiments import (
    AttackScenario,
    craft_poison,
    get_scenario,
    get_surrogate,
)
from repro.ops.chaos import CanaryProbe, ChaosTraffic
from repro.ops.loop import OpsController
from repro.ops.actions import ServePlant
from repro.serve.cache import EstimateCache
from repro.serve.replay import ReplayConfig
from repro.serve.retrain import RetrainLoop
from repro.serve.server import EstimatorServer
from repro.serve.stats import ServeStats
from repro.store.store import ArtifactStore
from repro.utils.clock import ManualClock, use_clock
from repro.workload.workload import Workload

SCHEMA_VERSION = 1

#: Default on-disk location of the ops-sim lineage store.
DEFAULT_OPS_STORE = "ops-store"


@dataclass(frozen=True)
class OpsSimConfig:
    """Everything one ops-sim run depends on (and nothing else)."""

    dataset: str = "dmv"
    model_type: str = "mscn"
    scale: str = "smoke"
    seed: int = 0
    rounds: int = 5
    #: First round whose arrivals include the attacker (unannounced).
    chaos_round: int = 2
    #: Large enough that *clean* incremental updates stay representative
    #: (small rounds overfit the observed queries and the clean canary
    #: gets as noisy as the attack signal it must be separated from).
    requests_per_round: int = 192
    qps: float = 256.0
    service_hz: float = 32.0
    poison_fraction: float = 0.5
    attack_method: str = "pace"
    timeout: float = 0.5
    max_queue: int = 128
    max_batch: int = 16
    #: Envelope the controller's installed guard enforces post-recovery.
    guard_factor: float = 1.1
    cache_capacity: int = 512
    cooldown_ticks: int = 1
    #: Acceptance: ops arm's final held-out Q-error vs clean baseline.
    recovery_factor: float = 1.1
    #: Acceptance: no-ops arm must degrade at least this far.
    degrade_factor: float = 1.5
    store_root: str = DEFAULT_OPS_STORE


def _digest_config(config: OpsSimConfig) -> dict:
    """Config coordinates for the scenario digest (paths stay out)."""
    core = asdict(config)
    core.pop("store_root")
    return core


def _fresh_run(store: ArtifactStore, run_id: str, params: dict, seed: int):
    if store.has_run(run_id):
        store.delete_run(run_id)
    return store.create_run("ops-sim", run_id, params=params, seed=seed)


def _run_ops_arm(
    scenario: AttackScenario,
    poison,
    validation: Workload,
    canary: Workload,
    evaluation: Workload,
    config: OpsSimConfig,
    store: ArtifactStore,
    ops_enabled: bool,
    run_id: str,
) -> dict:
    """Serve the full chaos session from clean parameters; one arm."""
    scenario.reset()
    model = scenario.model
    deployed = DeployedEstimator(
        model, scenario.executor, update_steps=scenario.scale.update_steps
    )
    stats = ServeStats()
    cache = EstimateCache(capacity=config.cache_capacity)
    run = _fresh_run(store, run_id, params=_digest_config(config), seed=config.seed)
    # Both arms start UNGUARDED: installing the guard is the controller's
    # job, and only after it has diagnosed why quality regressed.
    retrain = RetrainLoop(
        deployed,
        retrain_every=config.requests_per_round,
        guard=None,
        on_promote=cache.invalidate,
        stats=stats,
        run=run,
    )
    server = EstimatorServer(
        deployed,
        max_queue=config.max_queue,
        max_batch=config.max_batch,
        cache=cache,
        retrain=retrain,
        stats=stats,
        default_timeout=config.timeout,
    )
    plant = ServePlant(
        deployed,
        retrain,
        cache=cache,
        run=run,
        validation=validation,
        guard_factor=config.guard_factor,
    )
    controller = (
        OpsController(plant, cooldown_ticks=config.cooldown_ticks)
        if ops_enabled
        else None
    )
    traffic = ChaosTraffic(
        scenario.train_workload.queries,
        list(poison),
        ReplayConfig(
            qps=config.qps,
            poison_fraction=config.poison_fraction if poison else 0.0,
            timeout=config.timeout,
            service_hz=config.service_hz,
            seed=config.seed,
        ),
        start_round=config.chaos_round,
    )
    probe = CanaryProbe(canary)
    rounds: list[dict] = []
    with use_clock(ManualClock()) as clock:
        baseline = float(evaluate_q_errors(model, evaluation).mean())
        canary_value = probe.sample(model)
        if controller is not None:
            # Tick 0 baselines the detectors and marks the clean model
            # known-good before any traffic arrives.
            controller.ingest(stats.to_json(), at=clock())
            controller.observe_canary(canary_value, at=clock())
            controller.tick(at=clock())
        for index in range(config.rounds):
            traffic.set_round(index)
            result = traffic.drive(server, config.requests_per_round, clock=clock)
            event = retrain.flush()
            canary_value = probe.sample(model)
            tick = None
            if controller is not None:
                controller.ingest(stats.to_json(), at=clock())
                controller.observe_canary(canary_value, at=clock())
                tick = controller.tick(at=clock())
                if any(r.ok and r.action in ("rollback", "guarded_retrain")
                       for r in tick.results):
                    # Re-probe after a repair so the trajectory records
                    # what the *recovered* model serves.
                    canary_value = probe.sample(model)
            mean_qerror = float(evaluate_q_errors(model, evaluation).mean())
            rounds.append({
                "round": index,
                "chaos_active": traffic.chaos_active,
                "arrivals": result.arrivals,
                "benign": result.benign,
                "attacker": result.attacker,
                "mean_qerror": mean_qerror,
                "canary_qerror": canary_value,
                "promoted": bool(event.promoted) if event else False,
                "rolled_back": bool(event.rolled_back) if event else False,
                "update_rejected": event.rejected if event else 0,
                "tick": None if tick is None else tick.as_dict(),
            })
        session_seconds = clock()
        final_checkpoint = store.put_checkpoint(model.full_state_dict()).digest
        run.set_status("done")
        run.commit()
    final = rounds[-1]["mean_qerror"] if rounds else baseline
    alarms = [] if controller is None else [a.as_dict() for a in controller.bank.alarms]
    actions = []
    if controller is not None:
        for tick_result in controller.state.ticks:
            actions.extend(result.as_dict() for result in tick_result.results)
    core = {
        "config": _digest_config(config),
        "ops_enabled": ops_enabled,
        "baseline_qerror": baseline,
        "qerror_trajectory": [r["mean_qerror"] for r in rounds],
        "canary_trajectory": [r["canary_qerror"] for r in rounds],
        "alarms": alarms,
        "actions": actions,
        "retrain_events": [e.as_dict() for e in retrain.events],
        "final_checkpoint": final_checkpoint,
    }
    return {
        "ops_enabled": ops_enabled,
        "digest": scenario_digest(core),
        "run_id": run_id,
        "baseline_qerror": baseline,
        "final_qerror": final,
        "degradation": final / baseline if baseline > 0.0 else None,
        "qerror_trajectory": core["qerror_trajectory"],
        "canary_trajectory": core["canary_trajectory"],
        "rounds": rounds,
        "session_seconds": session_seconds,
        "final_checkpoint": final_checkpoint,
        "stats": stats.to_json(),
        "retrain_events": core["retrain_events"],
        "controller": None if controller is None else controller.as_dict(),
        "lineage": {
            "ops_alarm": len(run.events("ops_alarm")),
            "ops_action": len(run.events("ops_action")),
            "promotion": len(run.events("promotion")),
            "rollback": len(run.events("rollback")),
        },
    }


def _build_world(config: OpsSimConfig):
    scenario = get_scenario(
        config.dataset, config.model_type, scale=config.scale, seed=config.seed
    )
    poison = []
    if config.poison_fraction > 0.0 and config.attack_method != "clean":
        # Pre-seat the true-family surrogate so crafting never gambles the
        # simulation on smoke-scale type speculation (as serve-sim does).
        get_surrogate(scenario, model_type=scenario.model_type)
        poison, *_ = craft_poison(scenario, config.attack_method, use_detector=False)
    validation, held_out = scenario.test_workload.split(0.5, seed=config.seed + 23)
    canary, evaluation = held_out.split(0.5, seed=config.seed + 29)
    return scenario, poison, validation, canary, evaluation


def run_ops_sim(config: OpsSimConfig | None = None, stability: bool = True) -> dict:
    """Run the chaos scenario: no-ops vs ops arms + a digest-stability replay."""
    config = config or OpsSimConfig()
    scenario, poison, validation, canary, evaluation = _build_world(config)
    store = ArtifactStore(config.store_root)
    no_ops = _run_ops_arm(
        scenario, poison, validation, canary, evaluation, config, store,
        ops_enabled=False, run_id=f"ops-noops-seed{config.seed}",
    )
    ops = _run_ops_arm(
        scenario, poison, validation, canary, evaluation, config, store,
        ops_enabled=True, run_id=f"ops-ctrl-seed{config.seed}",
    )
    repeat_digest = None
    if stability:
        repeat = _run_ops_arm(
            scenario, poison, validation, canary, evaluation, config, store,
            ops_enabled=True, run_id=f"ops-ctrl-repeat-seed{config.seed}",
        )
        repeat_digest = repeat["digest"]
    scenario.reset()
    recovery_ratio = (
        ops["final_qerror"] / ops["baseline_qerror"]
        if ops["baseline_qerror"] > 0.0 else None
    )
    noops_ratio = (
        no_ops["final_qerror"] / no_ops["baseline_qerror"]
        if no_ops["baseline_qerror"] > 0.0 else None
    )
    detected = ops["lineage"]["ops_alarm"] > 0
    acted = ops["lineage"]["ops_action"] > 0
    recovered = recovery_ratio is not None and recovery_ratio <= config.recovery_factor
    degraded = noops_ratio is not None and noops_ratio >= config.degrade_factor
    digest_stable = repeat_digest is None or ops["digest"] == repeat_digest
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "pace-repro ops-sim",
        "config": asdict(config),
        "poison_pool": len(poison),
        "validation_queries": len(validation),
        "canary_queries": len(canary),
        "evaluation_queries": len(evaluation),
        "arms": {"no_ops": no_ops, "ops": ops},
        "repeat_digest": repeat_digest,
        "verdict": {
            "detected": detected,
            "lineage_recorded": acted,
            "recovery_ratio": recovery_ratio,
            "recovered": recovered,
            "noops_ratio": noops_ratio,
            "noops_degraded": degraded,
            "digest_stable": digest_stable,
            "ok": bool(
                detected and acted and recovered and degraded and digest_stable
            ),
        },
    }


def format_ops_report(report: dict) -> str:
    """Console summary for ``pace-repro ops-sim``."""
    from repro.metrics import render_table

    config = report["config"]
    rows = []
    for arm_name in ("no_ops", "ops"):
        arm = report["arms"][arm_name]
        stats = arm["stats"]
        controller = arm["controller"]
        rows.append([
            arm_name,
            f"{arm['baseline_qerror']:.3f}",
            f"{arm['final_qerror']:.3f}",
            f"{arm['degradation']:.2f}x" if arm["degradation"] is not None else "-",
            f"{stats['promotions']}/{stats['rollbacks']}",
            "-" if controller is None else str(controller["alarms_total"]),
            "-" if controller is None else str(controller["actions_taken"]),
            arm["digest"][:12],
        ])
    verdict = report["verdict"]
    lines = [render_table(
        ["arm", "clean q-err", "final q-err", "degradation",
         "promote/rollback", "alarms", "actions", "digest"],
        rows,
        title=(
            f"pace-repro ops-sim · {config['dataset']}/{config['model_type']} · "
            f"{config['attack_method']} @ poison={config['poison_fraction']:.0%} "
            f"from round {config['chaos_round']} · seed={config['seed']}"
        ),
    )]
    ratio = verdict["recovery_ratio"]
    noops = verdict["noops_ratio"]
    lines.append(
        f"\nchaos verdict: detected={verdict['detected']} "
        f"lineage={verdict['lineage_recorded']} "
        f"recovery={ratio:.3f}x (<= {config['recovery_factor']:g}x: "
        f"{verdict['recovered']}) "
        f"no-ops={noops:.3f}x (>= {config['degrade_factor']:g}x: "
        f"{verdict['noops_degraded']}) "
        f"digest_stable={verdict['digest_stable']}"
    )
    lines.append(f"ops-sim: {'ok' if verdict['ok'] else 'FAIL'}")
    return "\n".join(lines)
