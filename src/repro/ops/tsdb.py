"""In-memory time-series store for serving telemetry.

One :class:`TimeSeriesDB` holds named metric streams as bounded ring
buffers of ``(t, value)`` points. Time always comes from the caller (or
the ambient :func:`repro.utils.clock.get_clock`), never from the wall
directly, so every ingest/query sequence is a deterministic function of
the clock the session installed — ``ops-sim`` runs under a
:class:`~repro.utils.clock.ManualClock` and digests byte-identically.

The store understands the schema-versioned
:meth:`~repro.serve.stats.ServeStats.to_json` snapshot shared by
serve-sim and cluster-sim: :meth:`TimeSeriesDB.ingest_stats` turns one
snapshot into the per-interval metric catalog below, deriving rates from
cumulative counter deltas against the previously ingested snapshot.

This module is on the ops hot path (the controller ticks it every
monitoring interval), so flow rule R011 bans ground-truth execution and
retraining here exactly as it does in ``serve/server.py``.
"""

from __future__ import annotations

from collections import deque

from repro.serve.stats import STATS_SCHEMA_VERSION
from repro.utils.clock import get_clock
from repro.utils.errors import ReproError


class OpsError(ReproError):
    """The ops plane was fed something it cannot monitor."""


#: Metric streams :meth:`TimeSeriesDB.ingest_stats` derives from one
#: ServeStats snapshot. Counter-backed streams are per-interval deltas
#: (promotions this interval, not since boot); rate streams are ratios
#: over the interval's deltas; gauge streams are read as-is.
STATS_METRICS: tuple[str, ...] = (
    "serve.completed",       # requests completed this interval (delta)
    "serve.shed_rate",       # shed / submitted over the interval
    "serve.reject_rate",     # rejected / submitted over the interval
    "serve.cache_hit_rate",  # hits / lookups over the interval
    "serve.p99_latency",     # cumulative p99 seconds (gauge)
    "serve.promotions",      # promotions this interval (delta)
    "serve.rollbacks",       # rollbacks this interval (delta)
)

#: Counter fields whose per-interval deltas feed the derived streams.
_COUNTER_FIELDS = (
    "submitted", "completed", "rejected", "shed",
    "cache_hits", "cache_misses", "promotions", "rollbacks",
)


class MetricSeries:
    """One named stream: a bounded ring buffer of ``(t, value)`` points."""

    def __init__(self, name: str, retention: int = 1024) -> None:
        if retention <= 0:
            raise OpsError(f"retention must be positive, got {retention}")
        self.name = name
        self.retention = int(retention)
        self._points: deque[tuple[float, float]] = deque(maxlen=self.retention)

    def __len__(self) -> int:
        return len(self._points)

    def append(self, t: float, value: float) -> None:
        """Record one observation; time must not move backwards."""
        t = float(t)
        if self._points and t < self._points[-1][0]:
            raise OpsError(
                f"series {self.name!r} cannot go back in time: "
                f"{t} < {self._points[-1][0]}"
            )
        self._points.append((t, float(value)))

    def points(self) -> list[tuple[float, float]]:
        """Every retained point, oldest first."""
        return list(self._points)

    def values(self) -> list[float]:
        return [v for _, v in self._points]

    def latest(self) -> tuple[float, float] | None:
        return self._points[-1] if self._points else None

    def window(self, start: float, end: float) -> list[tuple[float, float]]:
        """Points with ``start <= t <= end`` (inclusive both ends)."""
        return [(t, v) for t, v in self._points if start <= t <= end]

    def window_sum(self, start: float, end: float) -> float:
        return sum(v for _, v in self.window(start, end))

    def window_mean(self, start: float, end: float) -> float | None:
        window = self.window(start, end)
        if not window:
            return None
        return sum(v for _, v in window) / len(window)


class TimeSeriesDB:
    """Named metric streams plus the ServeStats snapshot ingester."""

    def __init__(self, retention: int = 1024) -> None:
        self.retention = int(retention)
        self._series: dict[str, MetricSeries] = {}
        # Previous cumulative counters per source, for delta derivation.
        self._last_counters: dict[str, dict[str, float]] = {}
        self.ingested_snapshots = 0
        self.ingested_points = 0

    def names(self) -> list[str]:
        return sorted(self._series)

    def series(self, name: str) -> MetricSeries:
        """The stream called ``name`` (created empty on first use)."""
        found = self._series.get(name)
        if found is None:
            found = MetricSeries(name, retention=self.retention)
            self._series[name] = found
        return found

    def ingest(self, name: str, value: float, at: float | None = None) -> None:
        """Append one point to ``name`` (``at=None`` reads the clock)."""
        at = get_clock()() if at is None else float(at)
        self.series(name).append(at, float(value))
        self.ingested_points += 1

    def latest(self, name: str) -> float | None:
        """The newest value of ``name`` (None for an empty stream)."""
        point = self.series(name).latest()
        return None if point is None else point[1]

    def window(self, name: str, start: float, end: float) -> list[tuple[float, float]]:
        return self.series(name).window(start, end)

    # ------------------------------------------------------------------
    # the ServeStats ingester
    # ------------------------------------------------------------------
    def ingest_stats(
        self, snapshot: dict, at: float | None = None, source: str = "serve"
    ) -> dict[str, float]:
        """Turn one ``ServeStats.to_json()`` snapshot into metric points.

        Counter-backed streams record per-interval deltas against the
        previous snapshot from the same ``source``; the first snapshot
        seeds the baseline (deltas measured from zero). Returns the
        values ingested, keyed by metric name.
        """
        version = snapshot.get("schema_version")
        if version != STATS_SCHEMA_VERSION:
            raise OpsError(
                f"stats snapshot schema_version {version!r} from {source!r} "
                f"is not the supported {STATS_SCHEMA_VERSION}"
            )
        at = get_clock()() if at is None else float(at)
        previous = self._last_counters.get(source, {})
        current = {field: float(snapshot[field]) for field in _COUNTER_FIELDS}
        delta = {
            field: current[field] - previous.get(field, 0.0)
            for field in _COUNTER_FIELDS
        }
        self._last_counters[source] = current

        lookups = delta["cache_hits"] + delta["cache_misses"]
        arrived = delta["submitted"]
        values = {
            "serve.completed": delta["completed"],
            "serve.shed_rate": delta["shed"] / arrived if arrived > 0.0 else 0.0,
            "serve.reject_rate": (
                delta["rejected"] / arrived if arrived > 0.0 else 0.0
            ),
            "serve.cache_hit_rate": (
                delta["cache_hits"] / lookups if lookups > 0.0 else 0.0
            ),
            "serve.p99_latency": float(snapshot["latency"]["p99"]),
            "serve.promotions": delta["promotions"],
            "serve.rollbacks": delta["rollbacks"],
        }
        for name, value in values.items():
            self.ingest(name, value, at=at)
        self.ingested_snapshots += 1
        return values

    def as_dict(self) -> dict:
        """JSON-ready dump of every stream (oldest point first)."""
        return {
            name: [[t, v] for t, v in self._series[name].points()]
            for name in self.names()
        }
