"""Chaos traffic: unannounced, round-gated poisoning + a canary probe.

The whole point of ``ops-sim`` is that the controller is **not told**
about the attack: :class:`ChaosTraffic` replays the exact seeded arrival
process of :class:`~repro.serve.replay.TrafficReplay`, but the attacker
only goes live from ``start_round`` on. Every arrival consumes the same
three RNG draws (interarrival, attacker coin, pool index) whether or not
chaos is active, so two arms replaying the same seed see one
byte-identical arrival trace, and a run with a later ``start_round``
matches it exactly up to the round where their gating first differs.

:class:`CanaryProbe` is the monitoring side: a small held-out labeled
workload re-evaluated against the *live serving model* between rounds.
Its mean Q-error is what feeds the ops TSDB's quality stream — this is
legitimate telemetry (the operator owns the probe queries and their
truths), not attack knowledge.
"""

from __future__ import annotations

from repro.ce.base import CardinalityEstimator
from repro.ce.trainer import evaluate_q_errors
from repro.ops.tsdb import OpsError
from repro.serve.replay import Arrival, TrafficReplay
from repro.workload.workload import Workload


class ChaosTraffic(TrafficReplay):
    """A traffic replay whose attacker only acts from ``start_round`` on."""

    def __init__(self, *args, start_round: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if start_round < 0:
            raise OpsError(f"start_round must be >= 0, got {start_round}")
        self.start_round = int(start_round)
        self._round = 0

    @property
    def chaos_active(self) -> bool:
        return self._round >= self.start_round

    def set_round(self, index: int) -> None:
        """Tell the replay which scenario round the next arrivals belong to."""
        self._round = int(index)

    def arrivals(self, n: int, start: float = 0.0) -> list[Arrival]:
        """Identical RNG consumption to the base replay; gated attacker.

        The attacker coin is always flipped — only its *interpretation*
        depends on the round — so traces with different ``start_round``
        (or none at all) agree byte-for-byte up to the first round where
        their gating differs.
        """
        out: list[Arrival] = []
        now = float(start)
        active = self.chaos_active
        for _ in range(n):
            now += float(self._rng.exponential(1.0 / self.config.qps))
            coin = float(self._rng.random())
            attacker = (
                active
                and bool(self.poison_pool)
                and coin < self.config.poison_fraction
            )
            pool = self.poison_pool if attacker else self.benign_pool
            query = pool[int(self._rng.integers(len(pool)))]
            out.append(Arrival(
                at=now, query=query, client="attacker" if attacker else "benign"
            ))
        return out


class CanaryProbe:
    """Held-out labeled probes evaluated against the live serving model."""

    def __init__(self, workload: Workload) -> None:
        if len(workload) == 0:
            raise OpsError("the canary probe needs a non-empty labeled workload")
        self.workload = workload
        self.samples = 0

    def sample(self, model: CardinalityEstimator) -> float:
        """Mean held-out Q-error of ``model`` on the probe workload."""
        self.samples += 1
        return float(evaluate_q_errors(model, self.workload).mean())
