"""Guarded repair actuators the closed loop can fire.

This is the ops plane's *background* module — like ``serve/retrain.py``
it is exempt from flow rule R011 and may do unbounded work (checkpoint
IO, held-out evaluation through the promotion guard, a forced retrain
round). The per-tick monitoring path (:mod:`repro.ops.loop`) only ever
calls into it when a diagnosis demands repair.

:class:`ServePlant` is the actuator surface over one serving stack
(deployed estimator + retrain loop + cache, optionally a cluster router
and an artifact-store run). The actions are small verbs on top of it:

* :class:`RollbackAction` — bitwise restore of the last known-good
  promoted checkpoint digest + cache invalidation;
* :class:`GuardedRetrainAction` — install/tighten a calibrated
  :class:`~repro.serve.retrain.PromotionGuard` so every later update
  must pass held-out validation, then force one guarded retrain round;
* :class:`QuarantineAction` — drain unreachable shard workers out of the
  ring via :meth:`~repro.cluster.router.ClusterRouter.quarantine`;
* :class:`AdvisoryAction` — record the incident without actuating.

Every alarm/diagnosis/action is committed into the plant's store run as
lineage events (``ops_alarm`` / ``ops_action``), so a post-mortem can
replay exactly what the controller saw and did.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ce.deployment import DeployedEstimator
from repro.ops.diagnose import Diagnosis
from repro.ops.tsdb import OpsError
from repro.serve.cache import EstimateCache
from repro.serve.retrain import PromotionGuard, RetrainLoop
from repro.store.store import RunHandle
from repro.workload.workload import Workload


@dataclass(frozen=True)
class ActionResult:
    """What one actuator did (and whether it worked)."""

    action: str
    ok: bool
    detail: str
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "action": self.action,
            "ok": self.ok,
            "detail": self.detail,
            "data": dict(self.data),
        }


class ServePlant:
    """The actuator surface over one serving stack.

    Args:
        deployed: the serving facade whose model the actions repair.
        retrain: the background retrain loop (guard installation target).
        cache: optional estimate cache, invalidated on every restore.
        router: optional cluster router for shard quarantine.
        run: optional artifact-store run; known-good checkpoints are
            content-addressed into its store and every alarm/action is
            committed as a lineage event.
        validation: held-out workload the installed guard validates
            against (required for :class:`GuardedRetrainAction`).
        guard_factor: envelope the installed guard enforces — candidate
            mean Q-error must stay within ``factor x`` its calibrated
            baseline.
    """

    def __init__(
        self,
        deployed: DeployedEstimator,
        retrain: RetrainLoop,
        cache: EstimateCache | None = None,
        router=None,
        run: RunHandle | None = None,
        validation: Workload | None = None,
        guard_factor: float = 1.1,
    ) -> None:
        if guard_factor <= 1.0:
            raise OpsError(f"guard_factor must exceed 1, got {guard_factor}")
        self.deployed = deployed
        self.retrain = retrain
        self.cache = cache
        self.router = router
        self.run = run
        self.validation = validation
        self.guard_factor = float(guard_factor)
        self.good_digest: str | None = None
        self._good_state: dict | None = None
        self.marks = 0
        self.restores = 0

    # ------------------------------------------------------------------
    # health signals the controller polls
    # ------------------------------------------------------------------
    def promotions_total(self) -> int:
        """Model promotions since boot (for promotion-vs-drift diagnosis)."""
        if self.retrain.stats is not None:
            return int(self.retrain.stats.promotions)
        return sum(1 for event in self.retrain.events if event.promoted)

    def unreachable_ids(self) -> tuple[int, ...]:
        """Shard workers whose stats frame went unanswered (dead shards)."""
        if self.router is None:
            return ()
        return tuple(
            wid
            for wid, snapshot in sorted(self.router.worker_stats().items())
            if snapshot.get("unreachable")
        )

    # ------------------------------------------------------------------
    # known-good lineage
    # ------------------------------------------------------------------
    def mark_good(self) -> str | None:
        """Checkpoint the *current* serving parameters as known-good.

        With a store run attached the state is content-addressed (so
        repeated marks of an unchanged model dedup to one blob) and the
        digest returned; without one an in-memory bitwise copy is kept
        and ``None`` returned.
        """
        state = self.deployed.inspect_model().full_state_dict()
        if self.run is not None:
            artifact = self.run.store.put_checkpoint(state)
            self.good_digest = artifact.digest
        else:
            self._good_state = {
                key: value.copy() if hasattr(value, "copy") else value
                for key, value in state.items()
            }
        self.marks += 1
        return self.good_digest

    def restore_good(self) -> str | None:
        """Bitwise-restore the last known-good checkpoint; flush the cache."""
        if self.good_digest is None and self._good_state is None:
            raise OpsError("no known-good checkpoint marked yet — cannot roll back")
        if self.good_digest is not None:
            state = self.run.store.get_checkpoint(self.good_digest)
        else:
            state = self._good_state
        self.deployed.inspect_model().load_full_state_dict(state)
        if self.cache is not None:
            self.cache.invalidate()
        self.restores += 1
        return self.good_digest

    # ------------------------------------------------------------------
    # guard installation
    # ------------------------------------------------------------------
    def install_guard(self) -> PromotionGuard:
        """Install (or tighten) a promotion guard calibrated on the
        *current* model, wiring it into both the gate stack and the
        retrain loop."""
        if self.validation is None:
            raise OpsError("the plant has no validation workload to calibrate a guard")
        guard = self.retrain.guard
        if guard is None:
            guard = PromotionGuard(self.validation, factor=self.guard_factor)
            self.retrain.guard = guard
        else:
            guard.factor = min(guard.factor, self.guard_factor)
        guard.calibrate(self.deployed.inspect_model())
        if guard not in self.deployed.gates:
            self.deployed.add_gate(guard)
        return guard

    # ------------------------------------------------------------------
    # cluster repair
    # ------------------------------------------------------------------
    def quarantine_workers(self, worker_ids: tuple[int, ...]) -> list[dict]:
        """Drain the listed workers out of the ring (planned removal)."""
        if self.router is None:
            raise OpsError("the plant has no cluster router to quarantine workers on")
        return [self.router.quarantine(wid) for wid in worker_ids]

    # ------------------------------------------------------------------
    # lineage
    # ------------------------------------------------------------------
    def record(self, diagnosis: Diagnosis, results: tuple[ActionResult, ...]) -> None:
        """Commit the incident — alarms, cause, actions — into the run."""
        if self.run is None:
            return
        for alarm in diagnosis.alarms:
            self.run.record_event("ops_alarm", **alarm.as_dict())
        for result in results:
            self.run.record_event(
                "ops_action",
                cause=diagnosis.cause,
                confidence=diagnosis.confidence,
                **result.as_dict(),
            )
        self.run.commit()


class Action:
    """One repair verb the controller's policy can name."""

    name = "action"

    def apply(self, plant: ServePlant, diagnosis: Diagnosis) -> ActionResult:
        raise NotImplementedError


class RollbackAction(Action):
    """Bitwise rollback to the last known-good promoted digest."""

    name = "rollback"

    def apply(self, plant: ServePlant, diagnosis: Diagnosis) -> ActionResult:
        try:
            digest = plant.restore_good()
        except OpsError as exc:
            return ActionResult(self.name, False, str(exc))
        where = (
            f"store checkpoint {digest[:12]}…"
            if digest is not None
            else "in-memory known-good snapshot"
        )
        return ActionResult(
            self.name,
            True,
            f"restored {where} and invalidated the estimate cache "
            f"(cause: {diagnosis.cause})",
            {"digest": digest},
        )


class GuardedRetrainAction(Action):
    """Install a calibrated promotion guard, then retrain through it."""

    name = "guarded_retrain"

    def apply(self, plant: ServePlant, diagnosis: Diagnosis) -> ActionResult:
        try:
            guard = plant.install_guard()
        except OpsError as exc:
            return ActionResult(self.name, False, str(exc))
        event = plant.retrain.flush()
        data = {
            "guard_factor": guard.factor,
            "guard_baseline_qerror": guard.baseline_qerror,
            "flushed": event is not None,
            "promoted": bool(event.promoted) if event is not None else False,
            "rolled_back": bool(event.rolled_back) if event is not None else False,
        }
        outcome = (
            "no buffered workload to retrain on"
            if event is None
            else ("update promoted" if event.promoted else "update vetoed/rolled back")
        )
        return ActionResult(
            self.name,
            True,
            f"promotion guard armed at {guard.factor:g}x "
            f"(baseline {guard.baseline_qerror:.4g}); {outcome}",
            data,
        )


class QuarantineAction(Action):
    """Drain every unreachable shard worker out of the ring."""

    name = "quarantine"

    def apply(self, plant: ServePlant, diagnosis: Diagnosis) -> ActionResult:
        dead = plant.unreachable_ids()
        if not dead:
            return ActionResult(
                self.name, False, "no unreachable workers left to quarantine"
            )
        try:
            reports = plant.quarantine_workers(dead)
        except OpsError as exc:
            return ActionResult(self.name, False, str(exc))
        requeued = sum(int(r.get("requeued", 0)) for r in reports)
        return ActionResult(
            self.name,
            True,
            f"quarantined worker(s) {list(dead)}; re-keyed {requeued} "
            f"queued request(s) through the ring",
            {"workers": list(dead), "requeued": requeued},
        )


class AdvisoryAction(Action):
    """Record the incident; no actuator is safe/configured for it."""

    name = "advisory"

    def __init__(self, note: str = "no automated repair configured for this cause") -> None:
        self.note = note

    def apply(self, plant: ServePlant, diagnosis: Diagnosis) -> ActionResult:
        return ActionResult(
            self.name, True, f"{self.note} (cause: {diagnosis.cause})"
        )
