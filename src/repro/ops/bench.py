"""``pace-repro ops-bench``: what the monitoring plane costs.

The ops plane rides on the serving box, so its overhead budget is the
serve hot path's latency headroom. This bench measures the three per-tick
costs on seeded synthetic streams — raw point ingest into the TSDB,
``ServeStats`` snapshot ingestion (schema check + counter deltas), and a
full :func:`~repro.ops.detect.default_bank` sweep — and folds them into a
per-tick overhead estimate against the serve loop's service period.

Timings use ``time.perf_counter`` (best-of-``repeats``), so the report's
numbers vary run to run; the *workload* driving them is seed-derived and
fixed.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.ops.detect import default_bank
from repro.ops.tsdb import STATS_METRICS, TimeSeriesDB
from repro.serve.stats import ServeStats
from repro.utils.rng import derive_rng

SCHEMA_VERSION = 1

DEFAULT_REPORT = Path("benchmarks") / "BENCH_PR10.json"


@dataclass(frozen=True)
class OpsBenchConfig:
    """Workload knobs for one ops-bench run."""

    seed: int = 0
    #: Raw points pushed per series in the ingest measurement.
    points: int = 20_000
    #: Distinct metric series in the ingest measurement.
    series: int = 8
    #: ServeStats snapshots pushed through ``ingest_stats``.
    snapshots: int = 2_000
    #: Detector-bank sweeps (each over one fresh batch of points).
    sweeps: int = 500
    #: Canary points per sweep batch.
    batch: int = 4
    #: Best-of-N wall-clock repetitions per measurement.
    repeats: int = 3
    #: Serve-loop service rate the overhead is judged against.
    service_hz: float = 32.0


def _best_of(repeats: int, measure) -> tuple[float, dict]:
    best = None
    extra: dict = {}
    for _ in range(max(1, repeats)):
        seconds, info = measure()
        if best is None or seconds < best:
            best, extra = seconds, info
    return best, extra


def _measure_ingest(config: OpsBenchConfig) -> tuple[float, dict]:
    rng = derive_rng(config.seed)
    names = [f"bench.metric_{i}" for i in range(config.series)]
    values = rng.random(config.points * config.series)
    tsdb = TimeSeriesDB(retention=4096)
    start = time.perf_counter()
    at = 0.0
    cursor = 0
    for _ in range(config.points):
        at += 1.0
        for name in names:
            tsdb.ingest(name, float(values[cursor]), at=at)
            cursor += 1
    seconds = time.perf_counter() - start
    return seconds, {"points": cursor, "series": config.series}


def _measure_snapshots(config: OpsBenchConfig) -> tuple[float, dict]:
    stats = ServeStats()
    tsdb = TimeSeriesDB(retention=4096)
    start = time.perf_counter()
    for index in range(config.snapshots):
        stats.record_submitted()
        stats.record_cache(index % 2, (index + 1) % 2)
        stats.record_completed(0.001)
        tsdb.ingest_stats(stats.to_json(), at=float(index))
    seconds = time.perf_counter() - start
    return seconds, {
        "snapshots": config.snapshots,
        "metrics_per_snapshot": len(STATS_METRICS),
    }


def _measure_sweeps(config: OpsBenchConfig) -> tuple[float, dict]:
    rng = derive_rng(config.seed + 1)
    tsdb = TimeSeriesDB(retention=8192)
    bank = default_bank()
    metrics = [metric for metric, _ in bank.wiring()]
    noise = rng.random(config.sweeps * config.batch * len(metrics))
    cursor = 0
    at = 0.0
    start = time.perf_counter()
    for _ in range(config.sweeps):
        for _ in range(config.batch):
            at += 1.0
            for metric in metrics:
                # Calm values: measure the sweep, not alarm bookkeeping.
                tsdb.ingest(metric, 1.0 + 0.01 * float(noise[cursor]), at=at)
                cursor += 1
        bank.sweep(tsdb)
    seconds = time.perf_counter() - start
    return seconds, {
        "sweeps": config.sweeps,
        "points_swept": cursor,
        "alarms": len(bank.alarms),
        "detectors": len(metrics),
    }


def run_ops_bench(config: OpsBenchConfig | None = None) -> dict:
    """Measure ops-plane overhead; returns the JSON-ready report."""
    config = config or OpsBenchConfig()
    ingest_s, ingest_info = _best_of(config.repeats, lambda: _measure_ingest(config))
    snap_s, snap_info = _best_of(config.repeats, lambda: _measure_snapshots(config))
    sweep_s, sweep_info = _best_of(config.repeats, lambda: _measure_sweeps(config))
    ingest_rate = ingest_info["points"] / ingest_s if ingest_s > 0.0 else None
    snap_rate = snap_info["snapshots"] / snap_s if snap_s > 0.0 else None
    sweep_rate = sweep_info["sweeps"] / sweep_s if sweep_s > 0.0 else None
    # One controller tick ingests one snapshot and sweeps one batch.
    tick_seconds = (
        (snap_s / snap_info["snapshots"]) + (sweep_s / sweep_info["sweeps"])
        if snap_s > 0.0 and sweep_s > 0.0
        else None
    )
    service_period = 1.0 / config.service_hz
    return {
        "schema_version": SCHEMA_VERSION,
        "tool": "pace-repro ops-bench",
        "config": asdict(config),
        "ingest": {**ingest_info, "seconds": ingest_s, "points_per_second": ingest_rate},
        "snapshots": {**snap_info, "seconds": snap_s, "snapshots_per_second": snap_rate},
        "sweeps": {**sweep_info, "seconds": sweep_s, "sweeps_per_second": sweep_rate},
        "tick": {
            "seconds": tick_seconds,
            "service_period_seconds": service_period,
            "overhead_fraction": (
                tick_seconds / service_period if tick_seconds is not None else None
            ),
        },
    }


def format_ops_bench(report: dict) -> str:
    """Console summary for ``pace-repro ops-bench``."""
    from repro.metrics import render_table

    ingest = report["ingest"]
    snapshots = report["snapshots"]
    sweeps = report["sweeps"]
    tick = report["tick"]
    rows = [
        ["tsdb ingest", f"{ingest['points']}", f"{ingest['seconds'] * 1e3:.1f}ms",
         f"{ingest['points_per_second']:,.0f} pts/s"],
        ["stats snapshots", f"{snapshots['snapshots']}",
         f"{snapshots['seconds'] * 1e3:.1f}ms",
         f"{snapshots['snapshots_per_second']:,.0f} snap/s"],
        ["detector sweeps", f"{sweeps['sweeps']}", f"{sweeps['seconds'] * 1e3:.1f}ms",
         f"{sweeps['sweeps_per_second']:,.0f} sweep/s"],
    ]
    lines = [render_table(
        ["stage", "units", "wall", "rate"],
        rows,
        title="pace-repro ops-bench · monitoring-plane overhead",
    )]
    if tick["seconds"] is not None:
        lines.append(
            f"\nper-tick overhead: {tick['seconds'] * 1e6:.1f}us "
            f"({tick['overhead_fraction']:.2%} of one "
            f"{tick['service_period_seconds'] * 1e3:.1f}ms service period)"
        )
    return "\n".join(lines)
