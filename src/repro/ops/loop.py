"""The closed loop: ingest telemetry → detect → diagnose → repair.

:class:`OpsController` is the autonomic manager gluing the ops plane
together. Each :meth:`~OpsController.tick`:

1. sweeps the :class:`~repro.ops.detect.DetectorBank` over the TSDB
   (only never-seen points are replayed);
2. classifies any fresh alarms (plus plant context: promotions since the
   previous tick, unreachable shard workers) into one diagnosis;
3. fires the policy's actions for that cause through the plant, commits
   the incident as store-run lineage, re-arms the detectors, and starts
   a cooldown so one incident yields one repair, not a retrigger storm;
4. when healthy, marks the current serving parameters known-good — the
   restore point the next rollback returns to — but only while the
   canary Q-error stream sits inside its own baseline envelope, so a
   poisoned model that detection has not caught *yet* is never blessed.

This module is the per-tick monitoring hot path: flow rule R011 bans
ground-truth execution and retraining here. All unbounded repair work
lives behind the action verbs in :mod:`repro.ops.actions` (exempt, like
``serve/retrain.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ops.actions import (
    Action,
    ActionResult,
    AdvisoryAction,
    GuardedRetrainAction,
    QuarantineAction,
    RollbackAction,
    ServePlant,
)
from repro.ops.detect import Alarm, DetectorBank, default_bank
from repro.ops.diagnose import CAUSES, Diagnosis, RootCauseClassifier
from repro.ops.tsdb import OpsError, TimeSeriesDB
from repro.utils.clock import get_clock

#: Metric stream the canary probe feeds (held-out Q-error of the live
#: serving model) — both the quality detectors' input and the gate on
#: marking checkpoints known-good.
CANARY_METRIC = "serve.canary_qerror"

#: cause → ordered action names. ``poisoning`` rolls back *then* arms
#: the guard: the rollback restores a clean model for the guard to
#: calibrate against, and the guard keeps later poisoned updates out.
DEFAULT_POLICY: dict[str, tuple[str, ...]] = {
    "poisoning": ("rollback", "guarded_retrain"),
    "model_drift": ("guarded_retrain",),
    "dead_shard": ("quarantine",),
    "cache_miss_storm": ("advisory",),
    "unknown": ("advisory",),
}


@dataclass(frozen=True)
class TickResult:
    """Everything one controller tick observed and did."""

    at: float
    alarms: tuple[Alarm, ...]
    diagnosis: Diagnosis | None
    results: tuple[ActionResult, ...]
    marked_good: bool
    cooling: bool

    def as_dict(self) -> dict:
        return {
            "at": self.at,
            "alarms": [alarm.as_dict() for alarm in self.alarms],
            "diagnosis": None if self.diagnosis is None else self.diagnosis.as_dict(),
            "actions": [result.as_dict() for result in self.results],
            "marked_good": self.marked_good,
            "cooling": self.cooling,
        }


@dataclass
class _ControllerState:
    """Mutable loop state, kept separate so ticks stay auditable."""

    cooldown: int = 0
    last_promotions: int = 0
    canary_baseline: float | None = None
    actions_taken: int = 0
    incidents: int = 0
    ticks: list[TickResult] = field(default_factory=list)


class OpsController:
    """Deterministic autonomic manager over one :class:`ServePlant`.

    Args:
        plant: the actuator surface (and context source) to manage.
        tsdb: metric store; a fresh one by default.
        bank: detector wiring; :func:`~repro.ops.detect.default_bank`
            by default (which watches :data:`CANARY_METRIC`).
        classifier: alarm → cause mapper.
        policy: cause → ordered action-name tuple; unknown causes fall
            back to an advisory record.
        cooldown_ticks: ticks to stay passive after a corrective action,
            letting the re-armed detectors re-baseline on the repaired
            plant before they may fire again.
        mark_factor: known-good marking envelope — the newest canary
            Q-error must be within ``mark_factor x`` the first observed
            canary value (no canary stream → always eligible).
    """

    def __init__(
        self,
        plant: ServePlant,
        tsdb: TimeSeriesDB | None = None,
        bank: DetectorBank | None = None,
        classifier: RootCauseClassifier | None = None,
        policy: dict[str, tuple[str, ...]] | None = None,
        cooldown_ticks: int = 1,
        mark_factor: float = 1.1,
    ) -> None:
        if cooldown_ticks < 0:
            raise OpsError(f"cooldown_ticks must be >= 0, got {cooldown_ticks}")
        if mark_factor <= 1.0:
            raise OpsError(f"mark_factor must exceed 1, got {mark_factor}")
        self.plant = plant
        self.tsdb = tsdb if tsdb is not None else TimeSeriesDB()
        self.bank = bank if bank is not None else default_bank(CANARY_METRIC)
        self.classifier = classifier if classifier is not None else RootCauseClassifier()
        self.policy = dict(DEFAULT_POLICY if policy is None else policy)
        for cause, names in self.policy.items():
            if cause not in CAUSES:
                raise OpsError(f"policy names unknown cause {cause!r}")
            if not names:
                raise OpsError(f"policy for {cause!r} must name at least one action")
        self.cooldown_ticks = int(cooldown_ticks)
        self.mark_factor = float(mark_factor)
        self.actions: dict[str, Action] = {
            action.name: action
            for action in (
                RollbackAction(),
                GuardedRetrainAction(),
                QuarantineAction(),
                AdvisoryAction(),
            )
        }
        self.state = _ControllerState(last_promotions=plant.promotions_total())

    # ------------------------------------------------------------------
    # telemetry intake (thin shims over the TSDB)
    # ------------------------------------------------------------------
    def ingest(self, snapshot: dict, at: float | None = None, source: str = "serve") -> dict:
        """Feed one ``ServeStats.to_json()`` snapshot into the TSDB."""
        return self.tsdb.ingest_stats(snapshot, at=at, source=source)

    def observe_canary(self, qerror: float, at: float | None = None) -> None:
        """Feed one canary-probe held-out Q-error observation."""
        self.tsdb.ingest(CANARY_METRIC, float(qerror), at=at)

    # ------------------------------------------------------------------
    # the loop body
    # ------------------------------------------------------------------
    def tick(self, at: float | None = None) -> TickResult:
        """One monitoring interval: sweep, diagnose, repair, re-baseline."""
        at = get_clock()() if at is None else float(at)
        state = self.state
        alarms = tuple(self.bank.sweep(self.tsdb))
        promotions = self.plant.promotions_total()
        promotions_since = promotions - state.last_promotions
        state.last_promotions = promotions
        unreachable = self.plant.unreachable_ids()

        cooling = state.cooldown > 0
        diagnosis: Diagnosis | None = None
        results: tuple[ActionResult, ...] = ()
        if cooling:
            state.cooldown -= 1
        elif alarms or unreachable:
            diagnosis = self.classifier.classify(
                list(alarms),
                promotions_since_last=promotions_since,
                unreachable_workers=len(unreachable),
            )
            if diagnosis is not None:
                results = self._repair(diagnosis)
                state.incidents += 1
                state.actions_taken += len(results)

        marked = False
        healthy = not alarms and not unreachable and not cooling and diagnosis is None
        if healthy and self._canary_in_band():
            self.plant.mark_good()
            marked = True

        result = TickResult(
            at=at,
            alarms=alarms,
            diagnosis=diagnosis,
            results=results,
            marked_good=marked,
            cooling=cooling,
        )
        state.ticks.append(result)
        return result

    def _repair(self, diagnosis: Diagnosis) -> tuple[ActionResult, ...]:
        names = self.policy.get(diagnosis.cause, ("advisory",))
        results = tuple(
            self.actions[name].apply(self.plant, diagnosis) for name in names
        )
        self.plant.record(diagnosis, results)
        if any(r.ok and r.action != "advisory" for r in results):
            # The plant just changed under the detectors: drop learned
            # baselines and sit out the cooldown so one incident maps to
            # one repair.
            self.bank.rearm()
            self.state.cooldown = self.cooldown_ticks
        return results

    def _canary_in_band(self) -> bool:
        points = self.tsdb.series(CANARY_METRIC).values()
        if not points:
            return True
        if self.state.canary_baseline is None:
            self.state.canary_baseline = points[0]
        return points[-1] <= self.mark_factor * self.state.canary_baseline

    # ------------------------------------------------------------------
    # report surface
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-ready controller history (alarm/action/tick log)."""
        return {
            "ticks": [tick.as_dict() for tick in self.state.ticks],
            "incidents": self.state.incidents,
            "actions_taken": self.state.actions_taken,
            "alarms_total": len(self.bank.alarms),
            "marks": self.plant.marks,
            "restores": self.plant.restores,
            "canary_baseline": self.state.canary_baseline,
            "wiring": [list(pair) for pair in self.bank.wiring()],
        }
