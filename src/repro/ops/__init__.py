"""Autonomous ops plane: monitoring, anomaly detection, self-healing.

The serve/cluster layers recover from failures they are *told* about
(heartbeats, closed pipes). This package closes the remaining gap — the
paper's central finding is that learned estimators degrade *silently*
under drift and poisoning — by watching the telemetry the serving layers
already export and acting on what it finds:

* :mod:`repro.ops.tsdb` — a small in-memory time-series store ingesting
  :meth:`~repro.serve.stats.ServeStats.to_json` snapshots as named
  metric streams (ring-buffer retention, windowed queries), driven
  entirely by :mod:`repro.utils.clock`;
* :mod:`repro.ops.detect` — spike, CUSUM level-shift, and
  forecast-residual detectors over those streams, byte-deterministic;
* :mod:`repro.ops.diagnose` — a root-cause classifier mapping alarm
  combinations to causes (poisoning vs. model drift vs. cache-miss
  storm vs. dead shard);
* :mod:`repro.ops.actions` — guarded actuators: bitwise rollback to the
  last known-good promoted digest, guard installation on the retrain
  loop, shard quarantine, each committed as run-lineage events;
* :mod:`repro.ops.loop` — the closed-loop controller gluing the above;
* :mod:`repro.ops.chaos` / :mod:`repro.ops.sim` — ``ops-sim`` replays
  attack traffic the controller is *not told about* and proves
  detection + recovery in one scenario digest;
* :mod:`repro.ops.bench` — ``ops-bench`` overhead report.
"""

from repro.ops.actions import (
    ActionResult,
    AdvisoryAction,
    GuardedRetrainAction,
    QuarantineAction,
    RollbackAction,
    ServePlant,
)
from repro.ops.detect import (
    Alarm,
    CusumDetector,
    DetectorBank,
    ForecastResidualDetector,
    SpikeDetector,
    default_bank,
)
from repro.ops.diagnose import CAUSES, Diagnosis, RootCauseClassifier
from repro.ops.loop import OpsController, TickResult
from repro.ops.tsdb import MetricSeries, TimeSeriesDB

__all__ = [
    "ActionResult",
    "AdvisoryAction",
    "Alarm",
    "CAUSES",
    "CusumDetector",
    "DetectorBank",
    "Diagnosis",
    "ForecastResidualDetector",
    "GuardedRetrainAction",
    "MetricSeries",
    "OpsController",
    "QuarantineAction",
    "RollbackAction",
    "RootCauseClassifier",
    "ServePlant",
    "SpikeDetector",
    "TickResult",
    "TimeSeriesDB",
    "default_bank",
]
