"""Command-line interface: run attacks and experiments without code.

Examples::

    python -m repro attack --dataset dmv --model fcn --method pace
    python -m repro attack --dataset tpch --model mscn --method lbg --count 48
    python -m repro speculate --dataset dmv --model lstm
    python -m repro serve-sim --dataset dmv --model mscn --rounds 3
    python -m repro serve-bench --requests 512
    python -m repro ops-sim --chaos --output OPS_SIM.json
    python -m repro ops-bench --sweeps 500
    python -m repro lint --format json
    python -m repro analyze
    python -m repro analyze --changed
    python -m repro verify-ir --format sarif --output ir-verify.sarif
    python -m repro gradcheck --format json
    python -m repro info
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.ce.registry import MODEL_TYPES
from repro.datasets.registry import DATASET_NAMES
from repro.harness import METHODS, get_scenario, run_attack
from repro.metrics import QErrorSummary, render_table
from repro.utils.config import available_scales, get_scale


#: Default on-disk location of the durable artifact/run store.
DEFAULT_STORE = "runs-store"


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=DATASET_NAMES, default="dmv")
    parser.add_argument("--model", choices=MODEL_TYPES, default="fcn")
    parser.add_argument("--scale", choices=available_scales(), default=None)
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PACE: poisoning attacks on learned cardinality estimation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    attack = sub.add_parser("attack", help="run one poisoning attack end to end")
    _add_common(attack)
    attack.add_argument("--method", choices=METHODS, default="pace")
    attack.add_argument("--count", type=int, default=None,
                        help="number of poisoning queries (default: scale's)")
    attack.add_argument("--algorithm", choices=("accelerated", "basic"),
                        default="accelerated")
    attack.add_argument("--no-detector", action="store_true",
                        help="train the generator without the VAE adversary")

    speculate = sub.add_parser(
        "speculate", help="probe a deployed model and speculate its type"
    )
    _add_common(speculate)

    profile = sub.add_parser(
        "profile", help="per-phase wall-clock breakdown of one scenario"
    )
    _add_common(profile)
    profile.add_argument("--method", choices=METHODS, default="pace")
    profile.add_argument("--real-timing", action="store_true",
                         help="use the real clock for speculation latency "
                              "probes (default: deterministic fake clock)")
    profile.add_argument("--compile", action="store_true",
                         help="force compiled execution on for the run "
                              "(default: honor REPRO_COMPILE)")

    bench = sub.add_parser(
        "bench", help="run the smoke benchmark grid and write BENCH_*.json"
    )
    bench.add_argument("--scale", choices=available_scales(), default="smoke")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--output", default="BENCH_PR7.json",
                       help="report path; bare filenames land under benchmarks/ "
                            "(default: BENCH_PR7.json)")
    bench.add_argument("--baseline", default=None,
                       help="baseline BENCH_*.json to compute speedups against "
                            "(default: benchmarks/baselines/BENCH_SEED.json if present)")
    bench.add_argument("--no-baseline", action="store_true",
                       help="skip the baseline comparison even if one exists")
    bench.add_argument("--real-timing", action="store_true",
                       help="use the real clock for speculation latency probes")
    bench.add_argument("--compile", action="store_true",
                       help="force compiled execution on for every cell and "
                            "record the equivalence-sweep verdict in the report "
                            "(default: honor REPRO_COMPILE)")

    lint = sub.add_parser(
        "lint", help="run the repo-specific per-file static-analysis rules (R001-R006)"
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint (default: the repro package)")
    lint.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    lint.add_argument("--fix-hints", action="store_true",
                      help="show an autofix hint under each finding")
    lint.add_argument("--select", default=None, metavar="IDS",
                      help="comma-separated rule ids to run (e.g. R001,R004)")
    lint.add_argument("--ignore", default=None, metavar="IDS",
                      help="comma-separated rule ids to skip")

    analyze = sub.add_parser(
        "analyze",
        help="full audit: lint + whole-program flow rules (R007-R012) "
             "+ concurrency rules (R013-R016) + compile-site coverage (R020) "
             "+ gradient audit + sanitized autograd/serve smoke passes "
             "+ dynamic context-label trace smoke "
             "+ compiled-vs-interpreted equivalence sweep "
             "+ IR verification of the compiled plans (R017-R019)",
    )
    analyze.add_argument("paths", nargs="*", metavar="PATH",
                         help="files/directories to analyze (default: the repro package)")
    analyze.add_argument("--format", choices=("text", "json", "sarif"), default="text")
    analyze.add_argument("--fix-hints", action="store_true",
                         help="show an autofix hint under each finding")
    analyze.add_argument("--fast", action="store_true",
                         help="static rules only: skip the gradient audit and "
                              "every dynamic smoke pass")
    analyze.add_argument("--select", default=None, metavar="IDS",
                         help="comma-separated flow rule ids to run "
                              "(e.g. R013,R015); per-file lint rules always run")
    analyze.add_argument("--no-cache", action="store_true",
                         help="bypass the per-file parse cache "
                              "(.pace-analyze-cache)")
    analyze.add_argument("--skip-gradcheck", action="store_true",
                         help="skip the finite-difference gradient audit")
    analyze.add_argument("--skip-smoke", action="store_true",
                         help="skip the sanitized autograd, serve, and "
                              "context-trace smoke passes and the "
                              "compiled-vs-interpreted equivalence sweep")
    analyze.add_argument("--seed", type=int, default=0,
                         help="seed for the sanitized smoke pass")
    analyze.add_argument("--changed", action="store_true",
                         help="scope the static pass to files modified in the "
                              "git working tree (diff vs HEAD + untracked); "
                              "runs lint + flow rules only — the concurrency "
                              "layer, IR verification, and dynamic passes are "
                              "skipped (they need the whole program)")

    verify_ir = sub.add_parser(
        "verify-ir",
        help="static IR verifier + translation validator for compiled plans "
             "(R017 shape/dtype, R018 buffer safety, R019 translation); "
             "verifies every plan the equivalence sweep builds, plus the "
             "deterministic fixture plans — no kernel is executed",
    )
    verify_ir.add_argument("--fast", action="store_true",
                           help="verify only the fixture plans (skip the "
                                "equivalence sweep that builds the real ones)")
    verify_ir.add_argument("--seed", type=int, default=0,
                           help="seed for the plan-building sweep")
    verify_ir.add_argument("--format", choices=("text", "json", "sarif"),
                           default="text")
    verify_ir.add_argument("--output", default=None, metavar="PATH",
                           help="also write the report to this path "
                                "(atomic write)")

    serve_sim = sub.add_parser(
        "serve-sim",
        help="online serving simulation: benign + PACE attacker traffic over "
             "N retrain rounds, guarded vs unguarded promotion",
    )
    _add_common(serve_sim)
    serve_sim.add_argument("--rounds", type=int, default=3,
                           help="retrain rounds per arm (default: 3)")
    serve_sim.add_argument("--requests", type=int, default=64,
                           help="arrivals per round (default: 64)")
    serve_sim.add_argument("--qps", type=float, default=256.0,
                           help="mean arrival rate (default: 256)")
    serve_sim.add_argument("--poison-fraction", type=float, default=0.5,
                           help="probability an arrival is the attacker's "
                                "(default: 0.5)")
    serve_sim.add_argument("--method", choices=METHODS, default="pace",
                           help="attack crafting the poison pool (default: pace)")
    serve_sim.add_argument("--guard-factor", type=float, default=1.5,
                           help="promotion envelope: candidate mean q-error may "
                                "be at most factor x clean baseline (default: 1.5)")
    serve_sim.add_argument("--compile", action="store_true",
                           help="force compiled execution on for both arms "
                                "(default: inherit the process-wide toggle)")
    serve_sim.add_argument("--output", default=None,
                           help="also write the JSON report to this path")

    serve_bench = sub.add_parser(
        "serve-bench",
        help="micro-batched serving vs sequential explain throughput; "
             "writes BENCH_PR4.json",
    )
    _add_common(serve_bench)
    serve_bench.add_argument("--requests", type=int, default=512,
                             help="request-stream length (default: 512)")
    serve_bench.add_argument("--max-batch", type=int, default=32,
                             help="micro-batch size cap (default: 32)")
    serve_bench.add_argument("--repeats", type=int, default=3,
                             help="timing repeats, best kept (default: 3)")
    serve_bench.add_argument("--compile", action="store_true",
                             help="force compiled execution on for both paths "
                                  "(default: inherit the process-wide toggle)")
    serve_bench.add_argument("--output", default=None,
                             help="report path (default: benchmarks/BENCH_PR4.json)")

    cluster_sim = sub.add_parser(
        "cluster-sim",
        help="sharded multi-worker serving simulation: consistent-hash "
             "router, replicated promotion, deterministic failure drills",
    )
    _add_common(cluster_sim)
    cluster_sim.add_argument("--workers", type=int, default=2,
                             help="shard workers (default: 2)")
    cluster_sim.add_argument("--tenants", type=int, default=4,
                             help="tenant estimator families (default: 4)")
    cluster_sim.add_argument("--rounds", type=int, default=2,
                             help="retrain rounds per arm (default: 2)")
    cluster_sim.add_argument("--requests", type=int, default=48,
                             help="arrivals per round (default: 48)")
    cluster_sim.add_argument("--qps", type=float, default=512.0,
                             help="mean arrival rate (default: 512)")
    cluster_sim.add_argument("--poison-fraction", type=float, default=0.5,
                             help="probability an arrival is the attacker's "
                                  "(default: 0.5)")
    cluster_sim.add_argument("--method", choices=METHODS, default="pace",
                             help="attack crafting the poison pool "
                                  "(default: pace)")
    cluster_sim.add_argument("--guard-factor", type=float, default=1.5,
                             help="promotion envelope for the guarded arm "
                                  "(default: 1.5)")
    cluster_sim.add_argument("--transport", choices=("inline", "process"),
                             default="inline",
                             help="worker transport: deterministic in-process "
                                  "or real spawned processes (default: inline)")
    cluster_sim.add_argument("--store", default="cluster-store",
                             help="shared promotion store root "
                                  "(default: cluster-store)")
    cluster_sim.add_argument("--drill", action="store_true",
                             help="kill-a-worker drill: run the session "
                                  "undisturbed and with a mid-traffic worker "
                                  "crash, compare scenario digests; exits 1 "
                                  "on divergence")
    cluster_sim.add_argument("--drill-worker", type=int, default=0,
                             help="worker the drill kills (default: 0)")
    cluster_sim.add_argument("--output", default=None,
                             help="also write the JSON report to this path")

    cluster_bench = sub.add_parser(
        "cluster-bench",
        help="QPS scaling across 1/2/4/8 workers + the kill-a-worker "
             "digest drill; writes BENCH_PR9.json",
    )
    _add_common(cluster_bench)
    cluster_bench.add_argument("--workers", type=int, nargs="+",
                               default=[1, 2, 4, 8],
                               help="worker counts to sweep (default: 1 2 4 8)")
    cluster_bench.add_argument("--tenants", type=int, default=64,
                               help="tenant estimator families (default: 64)")
    cluster_bench.add_argument("--requests", type=int, default=512,
                               help="request-trace length (default: 512)")
    cluster_bench.add_argument("--transport", choices=("inline", "process"),
                               default="inline",
                               help="worker transport (default: inline)")
    cluster_bench.add_argument("--store", default="cluster-store",
                               help="shared promotion store root "
                                    "(default: cluster-store)")
    cluster_bench.add_argument("--no-drill", action="store_true",
                               help="skip the embedded kill-a-worker drill")
    cluster_bench.add_argument("--output", default=None,
                               help="report path "
                                    "(default: benchmarks/BENCH_PR9.json)")

    ops_sim = sub.add_parser(
        "ops-sim",
        help="autonomous-ops simulation: unannounced mid-session poisoning, "
             "detect -> diagnose -> rollback/guard, with and without the "
             "ops controller; digests byte-identical per seed",
    )
    _add_common(ops_sim)
    ops_sim.add_argument("--rounds", type=int, default=5,
                         help="retrain rounds per arm (default: 5)")
    ops_sim.add_argument("--requests", type=int, default=192,
                         help="arrivals per round (default: 192)")
    ops_sim.add_argument("--qps", type=float, default=256.0,
                         help="mean arrival rate (default: 256)")
    ops_sim.add_argument("--poison-fraction", type=float, default=0.5,
                         help="attacker share of arrivals once chaos starts "
                              "(default: 0.5)")
    ops_sim.add_argument("--method", choices=METHODS, default="pace",
                         help="attack crafting the poison pool (default: pace)")
    ops_sim.add_argument("--chaos-round", type=int, default=2,
                         help="first round whose arrivals include the attacker "
                              "(default: 2)")
    ops_sim.add_argument("--guard-factor", type=float, default=1.1,
                         help="envelope of the guard the controller installs "
                              "on recovery (default: 1.1)")
    ops_sim.add_argument("--store", default="ops-store",
                         help="lineage store root (default: ops-store)")
    ops_sim.add_argument("--chaos", action="store_true",
                         help="gate mode: exit 1 unless the controller "
                              "detected the attack, recovered within the "
                              "envelope, recorded lineage, and the repeated "
                              "run's scenario digest matched byte-for-byte")
    ops_sim.add_argument("--no-stability", action="store_true",
                         help="skip the repeated ops arm (faster; digest "
                              "stability is then not checked)")
    ops_sim.add_argument("--output", default=None,
                         help="also write the JSON report to this path")

    ops_bench = sub.add_parser(
        "ops-bench",
        help="monitoring-plane overhead: TSDB ingest, stats snapshots, "
             "detector sweeps; writes BENCH_PR10.json",
    )
    ops_bench.add_argument("--seed", type=int, default=0)
    ops_bench.add_argument("--points", type=int, default=20000,
                           help="raw points per series in the ingest stage "
                                "(default: 20000)")
    ops_bench.add_argument("--snapshots", type=int, default=2000,
                           help="ServeStats snapshots ingested (default: 2000)")
    ops_bench.add_argument("--sweeps", type=int, default=500,
                           help="detector-bank sweeps (default: 500)")
    ops_bench.add_argument("--repeats", type=int, default=3,
                           help="timing repeats, best kept (default: 3)")
    ops_bench.add_argument("--output", default=None,
                           help="report path (default: benchmarks/BENCH_PR10.json)")

    gradcheck = sub.add_parser(
        "gradcheck",
        help="audit repro.nn gradients against finite differences",
    )
    gradcheck.add_argument("--tolerance", type=float, default=None,
                           help="max relative error allowed (default: 1e-4)")
    gradcheck.add_argument("--format", choices=("text", "json"), default="text")

    grid = sub.add_parser(
        "grid",
        help="durable attack grid: every step checkpointed in a run store, "
             "resumable after a crash",
    )
    grid.add_argument("--datasets", nargs="+", choices=DATASET_NAMES,
                      default=["dmv"])
    grid.add_argument("--models", nargs="+", choices=MODEL_TYPES,
                      default=["fcn"])
    grid.add_argument("--methods", nargs="+", choices=METHODS,
                      default=["clean", "random"])
    grid.add_argument("--scale", choices=available_scales(), default=None)
    grid.add_argument("--seed", type=int, default=0)
    grid.add_argument("--count", type=int, default=None,
                      help="poisoning queries per cell (default: scale's)")
    grid.add_argument("--store", default=DEFAULT_STORE,
                      help=f"artifact store root (default: {DEFAULT_STORE})")
    grid.add_argument("--run-id", default=None,
                      help="run id (default: derived from pipeline+seed+params)")
    grid.add_argument("--resume", action="store_true",
                      help="resume this run if it already exists")
    grid.add_argument("--crash-at", default=None, metavar="SITE",
                      help="inject a deterministic crash at this fault site "
                           "(fnmatch glob, e.g. 'step:cell:*:pre-commit'); "
                           "exits 3 — used by the CI crash-resume smoke")

    runs = sub.add_parser("runs", help="inspect and resume durable runs")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="one summary row per run")
    runs_show = runs_sub.add_parser(
        "show", help="steps, artifacts, lineage, and events of one run"
    )
    runs_show.add_argument("run_id")
    runs_resume = runs_sub.add_parser(
        "resume", help="finish an interrupted run (completed steps replay "
                       "from their verified checkpoints)"
    )
    runs_resume.add_argument("run_id")
    runs_gc = runs_sub.add_parser(
        "gc", help="drop unreferenced blobs and stray temp files"
    )
    for sp in (runs_list, runs_show, runs_resume, runs_gc):
        sp.add_argument("--store", default=DEFAULT_STORE,
                        help=f"artifact store root (default: {DEFAULT_STORE})")

    resume_bench = sub.add_parser(
        "resume-bench",
        help="measure warm-resume speedup (crash mid-grid, resume, compare "
             "digests); writes BENCH_PR5.json",
    )
    resume_bench.add_argument("--methods", nargs="+", choices=METHODS,
                              default=["clean", "random", "lbs"])
    resume_bench.add_argument("--scale", choices=available_scales(), default=None)
    resume_bench.add_argument("--seed", type=int, default=0)
    resume_bench.add_argument("--output", default=None,
                              help="report path (default: benchmarks/BENCH_PR5.json)")

    sub.add_parser("info", help="list datasets, model types, methods, scales")
    return parser


def cmd_attack(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.dataset, args.model, scale=args.scale, seed=args.seed)
    outcome = run_attack(
        scenario,
        args.method,
        count=args.count,
        algorithm=args.algorithm,
        use_detector=not args.no_detector,
    )
    before = QErrorSummary.from_errors(outcome.before)
    after = QErrorSummary.from_errors(outcome.after)
    rows = [
        ["clean", before.mean, before.p90, before.p95, before.p99, before.max],
        [args.method, after.mean, after.p90, after.p95, after.p99, after.max],
    ]
    print(render_table(
        ["state", "mean", "90th", "95th", "99th", "max"],
        rows,
        title=f"{args.dataset}/{args.model}: Q-error before/after {args.method}",
    ))
    print(f"\ndegradation factor: {outcome.degradation:.2f}x")
    print(f"poisoning queries:  {len(outcome.poison_queries)}")
    print(f"JS divergence:      {outcome.divergence:.4f}")
    print(f"timings: train {outcome.train_seconds:.2f}s, "
          f"generate {outcome.generate_seconds:.3f}s, "
          f"attack {outcome.attack_seconds:.3f}s")
    return 0


def cmd_speculate(args: argparse.Namespace) -> int:
    from repro.attack import speculate_model_type, train_candidates
    from repro.ce import TrainConfig
    from repro.workload import WorkloadGenerator

    scale = get_scale(args.scale)
    scenario = get_scenario(args.dataset, args.model, scale=scale, seed=args.seed)
    candidates = train_candidates(
        scenario.encoder,
        scenario.train_workload,
        hidden_dim=scale.hidden_dim,
        train_config=TrainConfig(epochs=max(scale.train_epochs // 2, 10)),
        seed=args.seed,
    )
    probes = WorkloadGenerator(
        scenario.database, scenario.executor, seed=args.seed + 5
    ).probe_workloads(queries_per_group=scale.probe_queries_per_group)
    result = speculate_model_type(scenario.deployed, candidates, probes)
    rows = sorted(result.similarities.items(), key=lambda kv: -kv[1])
    print(render_table(
        ["candidate type", "cosine similarity"],
        [[name, sim] for name, sim in rows],
        title=f"deployed: {args.model} -> speculated: {result.speculated_type}",
    ))
    return 0 if result.speculated_type == args.model else 1


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.perf import format_profile, profile_scenario

    profile = profile_scenario(
        dataset=args.dataset,
        model_type=args.model,
        method=args.method,
        scale=args.scale,
        seed=args.seed,
        deterministic_timing=not args.real_timing,
        compile_enabled=True if args.compile else None,
    )
    print(format_profile(profile))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        DEFAULT_BASELINE,
        attach_baseline,
        format_report,
        load_report,
        run_bench,
        write_report,
    )

    report = run_bench(
        scale=args.scale,
        seed=args.seed,
        deterministic_timing=not args.real_timing,
        compile_enabled=True if args.compile else None,
    )
    if report["compile"]["enabled"]:
        # A compiled bench is only publishable alongside proof that the
        # compiled numerics match the interpreter, so run the sweep and
        # stamp its verdict into the report.
        from repro.analysis.equivalence import run_equivalence

        equivalence = run_equivalence(seed=args.seed)
        report["compile"]["byte_identical_equivalence"] = bool(
            equivalence["byte_identical"]
        )
        report["compile"]["equivalence_max_abs_diff"] = float(
            equivalence["max_abs_diff"]
        )
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline and DEFAULT_BASELINE.exists():
        baseline_path = str(DEFAULT_BASELINE)
    if baseline_path and not args.no_baseline:
        attach_baseline(report, load_report(baseline_path), baseline_path)
    out = write_report(report, args.output)
    print(format_report(report))
    print(f"\nreport written to {out}")
    return 0


def cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.serve import ServeSimConfig, format_serve_report, run_serve_sim
    from repro.store.io import atomic_write_json

    config = ServeSimConfig(
        dataset=args.dataset,
        model_type=args.model,
        scale=args.scale or "smoke",
        seed=args.seed,
        rounds=args.rounds,
        requests_per_round=args.requests,
        qps=args.qps,
        poison_fraction=args.poison_fraction,
        attack_method=args.method,
        guard_factor=args.guard_factor,
        compile_enabled=True if args.compile else None,
    )
    report = run_serve_sim(config)
    print(format_serve_report(report))
    if args.output:
        # sort_keys makes equal-seed runs byte-identical on disk.
        out = atomic_write_json(Path(args.output), report, sort_keys=True)
        print(f"\nreport written to {out}")
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.perf import write_report
    from repro.serve.bench import DEFAULT_REPORT, format_serve_bench, run_serve_bench

    report = run_serve_bench(
        dataset=args.dataset,
        model_type=args.model,
        scale=args.scale or "smoke",
        seed=args.seed,
        requests=args.requests,
        max_batch=args.max_batch,
        repeats=args.repeats,
        compile_enabled=True if args.compile else None,
    )
    out = write_report(report, args.output or DEFAULT_REPORT)
    print(format_serve_bench(report))
    print(f"\nreport written to {out}")
    return 0


def cmd_cluster_sim(args: argparse.Namespace) -> int:
    from repro.cluster.sim import (
        ClusterSimConfig,
        format_cluster_report,
        format_drill_report,
        run_cluster_drill,
        run_cluster_sim,
    )
    from repro.store.io import atomic_write_json

    config = ClusterSimConfig(
        dataset=args.dataset,
        model_type=args.model,
        scale=args.scale or "smoke",
        seed=args.seed,
        workers=args.workers,
        tenants=args.tenants,
        rounds=args.rounds,
        requests_per_round=args.requests,
        qps=args.qps,
        poison_fraction=args.poison_fraction,
        attack_method=args.method,
        guard_factor=args.guard_factor,
        transport=args.transport,
        store_root=args.store,
        drill_worker=args.drill_worker,
    )
    if args.drill:
        report = run_cluster_drill(config)
        print(format_drill_report(report))
        ok = report["identical"] and report["drill"]["fired"]
    else:
        report = run_cluster_sim(config)
        print(format_cluster_report(report))
        ok = True
    if args.output:
        # sort_keys makes equal-seed runs byte-identical on disk.
        out = atomic_write_json(Path(args.output), report, sort_keys=True)
        print(f"\nreport written to {out}")
    return 0 if ok else 1


def cmd_cluster_bench(args: argparse.Namespace) -> int:
    from repro.cluster.bench import (
        DEFAULT_REPORT,
        ClusterBenchConfig,
        format_cluster_bench,
        run_cluster_bench,
    )
    from repro.perf import write_report

    config = ClusterBenchConfig(
        dataset=args.dataset,
        model_type=args.model,
        scale=args.scale or "smoke",
        seed=args.seed,
        worker_counts=tuple(args.workers),
        tenants=args.tenants,
        requests=args.requests,
        transport=args.transport,
        store_root=args.store,
        drill=not args.no_drill,
    )
    report = run_cluster_bench(config)
    out = write_report(report, args.output or DEFAULT_REPORT)
    print(format_cluster_bench(report))
    print(f"\nreport written to {out}")
    if "drill" in report and not (
        report["drill"]["identical"] and report["drill"]["fired"]
    ):
        return 1
    if "reroute_drill" in report and not report["reroute_drill"]["ok"]:
        return 1
    return 0


def cmd_ops_sim(args: argparse.Namespace) -> int:
    from repro.ops.sim import OpsSimConfig, format_ops_report, run_ops_sim
    from repro.store.io import atomic_write_json

    config = OpsSimConfig(
        dataset=args.dataset,
        model_type=args.model,
        scale=args.scale or "smoke",
        seed=args.seed,
        rounds=args.rounds,
        chaos_round=args.chaos_round,
        requests_per_round=args.requests,
        qps=args.qps,
        poison_fraction=args.poison_fraction,
        attack_method=args.method,
        guard_factor=args.guard_factor,
        store_root=args.store,
    )
    report = run_ops_sim(config, stability=not args.no_stability)
    print(format_ops_report(report))
    if args.output:
        # sort_keys makes equal-seed runs byte-identical on disk.
        out = atomic_write_json(Path(args.output), report, sort_keys=True)
        print(f"\nreport written to {out}")
    if args.chaos and not report["verdict"]["ok"]:
        return 1
    return 0


def cmd_ops_bench(args: argparse.Namespace) -> int:
    from repro.ops.bench import (
        DEFAULT_REPORT,
        OpsBenchConfig,
        format_ops_bench,
        run_ops_bench,
    )
    from repro.perf import write_report

    config = OpsBenchConfig(
        seed=args.seed,
        points=args.points,
        snapshots=args.snapshots,
        sweeps=args.sweeps,
        repeats=args.repeats,
    )
    report = run_ops_bench(config)
    out = write_report(report, args.output or DEFAULT_REPORT)
    print(format_ops_bench(report))
    print(f"\nreport written to {out}")
    return 0


def _default_analysis_targets(paths: list[str]) -> list[Path]:
    if paths:
        return [Path(p) for p in paths]
    # Analyze the installed package source itself.
    return [Path(__file__).resolve().parent]


def _changed_python_files(targets: list[Path]) -> list[Path] | None:
    """Modified/untracked ``.py`` files under ``targets``, None off-git.

    "Modified" is the union of ``git diff --name-only HEAD`` (staged or
    not) and untracked non-ignored files; deleted files drop out because
    there is nothing left to analyze.
    """
    import subprocess

    def _git(*argv: str) -> list[str]:
        proc = subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=True
        )
        return [line.strip() for line in proc.stdout.splitlines() if line.strip()]

    try:
        top = Path(_git("rev-parse", "--show-toplevel")[0])
        names = set(_git("diff", "--name-only", "HEAD"))
        names.update(_git("ls-files", "--others", "--exclude-standard"))
    except (OSError, IndexError, subprocess.CalledProcessError):
        return None
    roots = [t.resolve() for t in targets]
    changed: list[Path] = []
    for name in sorted(names):
        path = top / name
        if path.suffix != ".py" or not path.exists():
            continue
        resolved = path.resolve()
        if any(resolved == root or root in resolved.parents for root in roots):
            changed.append(path)
    return changed


def _analyze_changed(
    args: argparse.Namespace,
    targets: list[Path],
    reference_roots: list[Path],
    select: list[str] | None,
) -> int:
    """The diff-scoped static pass behind ``analyze --changed``."""
    import json

    from repro.analysis import (
        Finding,
        findings_payload,
        flow_rule_ids,
        render_text,
        run_flow,
        run_lint,
    )
    from repro.analysis.concurrency.safe import CONCURRENCY_RULE_IDS

    changed = _changed_python_files(targets)
    if changed is None:
        print("analyze: error: --changed requires a git work tree",
              file=sys.stderr)
        return 2
    if not changed:
        print("analyze --changed: no modified python files under the targets")
        return 0
    if select is None:
        # The concurrency rules (R013-R016) and compile-site coverage
        # (R020) judge a file against context that lives mostly in
        # *unchanged* files; a diff-scoped run of them would produce
        # verdicts the full pass might contradict, so they only run in
        # the whole-program mode.
        select = sorted(
            set(flow_rule_ids()) - set(CONCURRENCY_RULE_IDS) - {"R020"}
        )
    try:
        findings = run_lint(changed)
        # The unchanged source plus the usual test/benchmark roots stay
        # visible as references so e.g. dead-code verdicts don't flip.
        findings += run_flow(
            changed,
            reference_paths=[*targets, *reference_roots],
            select=select,
        )
    except (KeyError, FileNotFoundError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"analyze: error: {message}", file=sys.stderr)
        return 2
    findings.sort(key=Finding.sort_key)
    if args.format == "json":
        print(json.dumps({
            "ok": not findings,
            "changed": [str(path) for path in changed],
            "findings": findings_payload(findings),
        }, indent=2))
    elif args.format == "sarif":
        from repro.analysis import render_sarif

        print(render_sarif(findings))
    else:
        print(f"analyze --changed: {len(changed)} modified file(s)")
        print(render_text(findings, show_hints=args.fix_hints))
    return 1 if findings else 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import flow_rule_ids, render_json, render_text, run_lint

    targets = _default_analysis_targets(args.paths)
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    try:
        findings = run_lint(targets, select=select, ignore=ignore)
    except (KeyError, FileNotFoundError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        requested = [s.strip().upper() for s in (select or []) + (ignore or [])]
        flow_ids = set(flow_rule_ids())
        if any(r in flow_ids for r in requested):
            message += (
                "; R007-R011 are whole-program rules — run 'pace-repro analyze'"
            )
        print(f"lint: error: {message}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        from repro.analysis import render_sarif

        print(render_sarif(findings))
    else:
        print(render_text(findings, show_hints=args.fix_hints))
    return 1 if findings else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import (
        Finding,
        findings_payload,
        gradcheck_payload,
        max_relative_error,
        render_text,
        run_equivalence,
        run_flow,
        run_gradcheck,
        run_lint,
        run_serve_smoke,
        run_smoke,
        run_trace_smoke,
    )
    from repro.analysis.flow.cache import ProgramCache
    from repro.analysis.flow.program import build_program

    targets = _default_analysis_targets(args.paths)
    # Tests/benchmarks/examples are parsed as callers (a helper used only
    # by a test is not dead code) but never flagged themselves.
    reference_roots = [
        candidate
        for name in ("tests", "benchmarks", "examples", "setup.py")
        if (candidate := Path.cwd() / name).exists()
    ]
    select = args.select.split(",") if args.select else None
    if args.changed:
        return _analyze_changed(args, targets, reference_roots, select)
    cache = None if args.no_cache else ProgramCache()
    try:
        findings = run_lint(targets)
        program = build_program(targets, reference_paths=reference_roots, cache=cache)
        findings += run_flow(
            targets, reference_paths=reference_roots, select=select, program=program
        )
    except (KeyError, FileNotFoundError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"analyze: error: {message}", file=sys.stderr)
        return 2
    findings.sort(key=Finding.sort_key)

    run_dynamic = not args.fast
    skip_smoke = args.skip_smoke or not run_dynamic
    gradcheck_results = (
        None if (args.skip_gradcheck or not run_dynamic) else run_gradcheck()
    )
    smoke = None if skip_smoke else run_smoke(seed=args.seed)
    serve_smoke = None if skip_smoke else run_serve_smoke(seed=args.seed)
    trace_smoke = None if skip_smoke else run_trace_smoke(seed=args.seed)
    equivalence = None if skip_smoke else run_equivalence(seed=args.seed)

    # IR verification always runs: over every plan the sweep just built
    # (plus the fixtures) normally, or over the fixture plans alone when
    # the sweep was skipped — the static layers stay exercised even under
    # --fast.
    from repro.analysis.ir import fixture_plans, verify_plans

    if equivalence is None:
        verify_ir = verify_plans(fixture_plans(), "fixtures")
    else:
        from repro.nn.compile import iter_plans

        declined = [c.name for c in equivalence.cases if "declined" in c.detail]
        verify_ir = verify_plans(
            [*iter_plans(), *fixture_plans()], "sweep+fixtures", declined
        )
    findings += verify_ir.findings
    findings.sort(key=Finding.sort_key)

    gradcheck_ok = gradcheck_results is None or all(r.passed for r in gradcheck_results)
    smoke_ok = smoke is None or smoke.passed
    serve_ok = serve_smoke is None or serve_smoke.passed
    trace_ok = trace_smoke is None or trace_smoke.passed
    equivalence_ok = equivalence is None or equivalence.passed
    ok = (not findings and gradcheck_ok and smoke_ok and serve_ok and trace_ok
          and equivalence_ok and verify_ir.passed)

    if args.format == "json":
        payload = {
            "ok": ok,
            "findings": findings_payload(findings),
            "gradcheck": None if gradcheck_results is None
            else gradcheck_payload(gradcheck_results),
            "smoke": None if smoke is None else smoke.as_dict(),
            "serve_smoke": None if serve_smoke is None else serve_smoke.as_dict(),
            "trace_smoke": None if trace_smoke is None else trace_smoke.as_dict(),
            "equivalence": None if equivalence is None else equivalence.as_dict(),
            "verify_ir": verify_ir.as_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0 if ok else 1

    if args.format == "sarif":
        from repro.analysis import render_sarif

        print(render_sarif(findings))
        return 0 if ok else 1

    print(render_text(findings, show_hints=args.fix_hints))
    if gradcheck_results is not None:
        worst = max_relative_error(gradcheck_results)
        status = "ok" if gradcheck_ok else "FAIL"
        print(f"gradcheck: {status} (max relative error {worst:.3e}, "
              f"{len(gradcheck_results)} cases)")
    if smoke is not None:
        if smoke.passed:
            print(f"smoke: ok ({smoke.checks} sanitizer checks over "
                  f"{smoke.modules} modules)")
        else:
            print(f"smoke: FAIL — {smoke.detail}")
    if serve_smoke is not None:
        if serve_smoke.passed:
            print(f"serve-smoke: ok ({serve_smoke.checks} invariants over "
                  f"{serve_smoke.requests} requests)")
        else:
            print(f"serve-smoke: FAIL — {serve_smoke.detail}")
    if trace_smoke is not None:
        if trace_smoke.passed:
            print(f"trace-smoke: ok ({trace_smoke.observed} write sites "
                  f"observed across {trace_smoke.workers} workers, all "
                  "statically labeled)")
        else:
            print(f"trace-smoke: FAIL — {trace_smoke.detail}")
    if equivalence is not None:
        if equivalence.passed:
            identical = "byte-identical" if equivalence.byte_identical else (
                f"max |diff| {equivalence.max_abs_diff:.3e}"
            )
            print(f"equivalence: ok ({len(equivalence.cases)} compiled-vs-"
                  f"interpreted cases, {identical})")
        else:
            failing = [c.name for c in equivalence.cases if not c.passed]
            print(f"equivalence: FAIL — {', '.join(failing)}")
    if verify_ir.passed:
        checks = sum(sum(r.checks.values()) for r in verify_ir.reports)
        print(f"verify-ir: ok ({len(verify_ir.reports)} plans, "
              f"{checks} static checks, source {verify_ir.source})")
    else:
        failing = [r.label for r in verify_ir.reports if not r.passed]
        failing += [f"{name} (declined)" for name in verify_ir.declined]
        print(f"verify-ir: FAIL — {', '.join(failing)}")
    print(f"analyze: {'ok' if ok else 'FAIL'}")
    return 0 if ok else 1


def cmd_verify_ir(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.ir import run_ir_verification

    result = run_ir_verification(seed=args.seed, fast=args.fast)
    if args.format == "json":
        text = json.dumps(result.as_dict(), indent=2)
    elif args.format == "sarif":
        from repro.analysis import render_sarif

        text = render_sarif(result.findings)
    else:
        lines = []
        for report in result.reports:
            checks = sum(report.checks.values())
            status = "ok" if report.passed else "FAIL"
            lines.append(
                f"{report.label}: {status} ({report.nodes} nodes, "
                f"{report.kernels} kernels, {checks} checks)"
            )
            for finding in report.findings:
                lines.append(
                    f"  {finding.rule_id} [{finding.severity}] {finding.message}"
                )
        for name in result.declined:
            lines.append(
                f"declined: {name} — the site never compiled, so no plan "
                f"exists to verify"
            )
        verdict = "ok" if result.passed else "FAIL"
        lines.append(
            f"verify-ir: {verdict} ({len(result.reports)} plans, "
            f"source {result.source})"
        )
        text = "\n".join(lines)
    if args.output:
        from repro.store.io import atomic_write_bytes

        out = atomic_write_bytes(
            Path(args.output), (text + "\n").encode("utf-8")
        )
        print(f"report written to {out}", file=sys.stderr)
    else:
        print(text)
    return 0 if result.passed else 1


def cmd_gradcheck(args: argparse.Namespace) -> int:
    from repro.analysis import (
        DEFAULT_TOLERANCE,
        max_relative_error,
        render_gradcheck_json,
        run_gradcheck,
    )

    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    results = run_gradcheck(tolerance=tolerance)
    if args.format == "json":
        print(render_gradcheck_json(results))
        return 0 if all(r.passed for r in results) else 1
    rows = [
        [r.name, f"{r.max_rel_error:.3e}", str(r.checked), "ok" if r.passed else "FAIL"]
        for r in results
    ]
    print(render_table(
        ["layer / loss", "max rel error", "grads", "status"],
        rows,
        title="repro.nn gradient audit (analytic vs central finite differences)",
    ))
    compiled = [r for r in results if r.kernels]
    if compiled:
        print("\nfused kernels audited:")
        for r in compiled:
            print(f"  {r.name}: {', '.join(r.kernels)}")
    worst = max_relative_error(results)
    print(f"\nmax relative error: {worst:.3e} (tolerance {tolerance:g})")
    return 0 if all(r.passed for r in results) else 1


def _print_grid_result(store, result) -> None:
    print(f"run:      {result.run_id}")
    print(f"executed: {len(result.executed)}  skipped: {len(result.skipped)}")
    report = result.final
    for cell in report.get("grid", []):
        print(f"  {cell['dataset']}/{cell['model']}/{cell['method']}: "
              f"degradation x{cell['degradation']:.2f} "
              f"divergence {cell['divergence']:.3f}")
    digest = store.open_run(result.run_id).step("report")["artifact"]
    print(f"report:   {digest}")


def cmd_grid(args: argparse.Namespace) -> int:
    from repro.harness.pipelines import run_grid_durable
    from repro.store import ArtifactStore, CrashPoint, FaultInjector, FaultSpec, inject

    store = ArtifactStore(args.store)
    injector = FaultInjector(
        [FaultSpec(site=args.crash_at, kind="crash")] if args.crash_at else []
    )
    try:
        with inject(injector):
            result = run_grid_durable(
                store,
                datasets=args.datasets,
                models=args.models,
                methods=args.methods,
                scale=args.scale or "smoke",
                seed=args.seed,
                count=args.count,
                run_id=args.run_id,
                resume=args.resume,
            )
    except CrashPoint as crash:
        run_id = next(iter(store.run_ids()), "<run-id>")
        print(f"crashed (injected) at {crash.site!r}")
        print(f"resume with: pace-repro runs resume {run_id} --store {args.store}")
        return 3
    _print_grid_result(store, result)
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    from repro.store import ArtifactStore, resume_run

    store = ArtifactStore(args.store)
    if args.runs_command == "list":
        rows = store.list_runs()
        if not rows:
            print(f"no runs in {args.store}")
            return 0
        for row in rows:
            print(f"{row['run_id']}: {row['status']} "
                  f"({row['steps_done']}/{row['steps_total']} steps, "
                  f"{row['events']} events, pipeline {row['pipeline']}, "
                  f"seed {row['seed']})")
        return 0
    if args.runs_command == "show":
        manifest = store.open_run(args.run_id).manifest
        print(f"run:      {manifest['run_id']}")
        print(f"pipeline: {manifest['pipeline']}  seed {manifest['seed']}  "
              f"status {manifest['status']}")
        for name in manifest["step_order"]:
            entry = manifest["steps"][name]
            artifact = entry.get("artifact") or "-"
            seconds = entry.get("seconds")
            timing = f" {seconds:.2f}s" if seconds is not None else ""
            print(f"  [{entry['status']}] {name}{timing} -> {artifact[:12]}")
            for parent in entry.get("parents", []):
                print(f"      parent {parent[:12]}")
        for event in manifest.get("events", []):
            digest = event.get("digest")
            suffix = f" -> {digest[:12]}" if digest else ""
            print(f"  event {event['index']}: {event['kind']}{suffix}")
        return 0
    if args.runs_command == "resume":
        import repro.harness.pipelines  # noqa: F401  (registers builders)

        result = resume_run(store, args.run_id)
        print(f"resumed {args.run_id}: executed {len(result.executed)}, "
              f"replayed {len(result.skipped)} from checkpoints")
        final = store.open_run(args.run_id).step(result.final_step)
        print(f"final artifact: {final['artifact']}")
        return 0
    from repro.utils.errors import StoreError

    try:
        report = store.gc()
    except StoreError as exc:
        # Live manifest locks: a concurrent writer is mid-commit and
        # sweeping now could free blobs its manifest still references.
        print(f"gc declined: {exc}")
        return 1
    print(f"gc: removed {report['removed_objects']} objects "
          f"({report['bytes_freed']} bytes), kept {report['kept_objects']}, "
          f"swept {report['stray_tmp_removed']} temp files "
          f"and {report['stale_locks_removed']} stale locks "
          f"across {report['runs']} runs")
    return 0


def cmd_resume_bench(args: argparse.Namespace) -> int:
    from repro.store.bench import DEFAULT_REPORT, format_resume_bench, run_resume_bench
    from repro.store.io import atomic_write_json

    report = run_resume_bench(
        methods=tuple(args.methods),
        scale=args.scale or "smoke",
        seed=args.seed,
    )
    out = atomic_write_json(Path(args.output or DEFAULT_REPORT), report,
                            sort_keys=False)
    print(format_resume_bench(report))
    print(f"\nreport written to {out}")
    return 0


def cmd_info(_args: argparse.Namespace) -> int:
    print("datasets:   ", ", ".join(DATASET_NAMES))
    print("model types:", ", ".join(MODEL_TYPES))
    print("methods:    ", ", ".join(METHODS))
    print("scales:     ", ", ".join(available_scales()),
          f"(active: {get_scale().name})")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "attack": cmd_attack,
        "speculate": cmd_speculate,
        "profile": cmd_profile,
        "bench": cmd_bench,
        "serve-sim": cmd_serve_sim,
        "serve-bench": cmd_serve_bench,
        "cluster-sim": cmd_cluster_sim,
        "cluster-bench": cmd_cluster_bench,
        "ops-sim": cmd_ops_sim,
        "ops-bench": cmd_ops_bench,
        "lint": cmd_lint,
        "analyze": cmd_analyze,
        "verify-ir": cmd_verify_ir,
        "gradcheck": cmd_gradcheck,
        "grid": cmd_grid,
        "runs": cmd_runs,
        "resume-bench": cmd_resume_bench,
        "info": cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
