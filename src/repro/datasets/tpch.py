"""Synthetic TPC-H: the 8-table decision-support schema shape.

Follows the TPC-H FK chain (region <- nation <- {supplier, customer};
part/supplier <- partsupp; customer <- orders <- lineitem -> part/supplier)
with the benchmark's characteristic row-count ratios (lineitem ~ 4x orders,
orders ~ 10x customer, ...). Numeric measures use skewed distributions so
range predicates produce selectivities spanning orders of magnitude.
"""

from __future__ import annotations

from repro.datasets.base import ColumnSpec, ForeignKeySpec, TableSpec, build_database
from repro.db.table import Database

TABLE_SPECS = [
    TableSpec(
        name="region",
        row_weight=0.005,
        columns=(ColumnSpec("r_comment_len", "uniform", 0, 100),),
    ),
    TableSpec(
        name="nation",
        row_weight=0.01,
        foreign_keys=(ForeignKeySpec("n_regionkey", "region", skew=0.5),),
        columns=(ColumnSpec("n_comment_len", "uniform", 0, 100),),
    ),
    TableSpec(
        name="supplier",
        row_weight=0.1,
        foreign_keys=(ForeignKeySpec("s_nationkey", "nation", skew=0.6),),
        columns=(ColumnSpec("s_acctbal", "normal", -1000, 10000),),
    ),
    TableSpec(
        name="customer",
        row_weight=0.6,
        foreign_keys=(ForeignKeySpec("c_nationkey", "nation", skew=0.8),),
        columns=(
            ColumnSpec("c_acctbal", "normal", -1000, 10000),
            ColumnSpec("c_mktsegment", "zipf", 0, 4, zipf_a=1.1),
        ),
    ),
    TableSpec(
        name="part",
        row_weight=0.8,
        columns=(
            ColumnSpec("p_size", "uniform", 1, 50),
            ColumnSpec("p_retailprice", "lognormal", 900, 2100),
        ),
    ),
    TableSpec(
        name="partsupp",
        row_weight=1.6,
        foreign_keys=(
            ForeignKeySpec("ps_partkey", "part", skew=0.7),
            ForeignKeySpec("ps_suppkey", "supplier", skew=0.9),
        ),
        columns=(ColumnSpec("ps_supplycost", "lognormal", 1, 1000),),
    ),
    TableSpec(
        name="orders",
        row_weight=3.0,
        foreign_keys=(ForeignKeySpec("o_custkey", "customer", skew=1.1),),
        columns=(
            ColumnSpec("o_totalprice", "lognormal", 800, 500000),
            ColumnSpec("o_orderdate", "uniform", 0, 2405),
        ),
    ),
    TableSpec(
        name="lineitem",
        row_weight=8.0,
        foreign_keys=(
            ForeignKeySpec("l_orderkey", "orders", skew=0.9),
            ForeignKeySpec("l_partkey", "part", skew=1.0),
            ForeignKeySpec("l_suppkey", "supplier", skew=1.0),
        ),
        columns=(
            ColumnSpec("l_quantity", "uniform", 1, 50),
            ColumnSpec("l_extendedprice", "correlated", 900, 100000, source="l_quantity"),
            ColumnSpec("l_discount", "zipf", 0, 10, zipf_a=1.2),
            ColumnSpec("l_shipdate", "uniform", 0, 2525),
        ),
    ),
]


def make_tpch(base_rows: int, seed: int = 0) -> Database:
    """Build the synthetic 8-table TPC-H database."""
    return build_database("tpch", TABLE_SPECS, base_rows, seed=seed)
