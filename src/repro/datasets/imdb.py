"""Synthetic IMDB: the 21-table JOB schema shape.

Reproduces the join topology of the IMDB snapshot used by the
Join Order Benchmark (Leis et al., 2015): ``title`` and ``name`` are the
hubs, fact tables (``cast_info``, ``movie_info``, ...) fan out from them
with skewed FK popularity, and dimension tables (``kind_type``,
``info_type``, ...) hang off the facts. Attribute counts are reduced to one
or two per table to keep encodings compact; join behaviour (what PACE
exercises) is preserved by the FK topology and skew.
"""

from __future__ import annotations

from repro.datasets.base import ColumnSpec, ForeignKeySpec, TableSpec, build_database
from repro.db.table import Database


def _dim(name: str, weight: float, attr: str, high: float) -> TableSpec:
    """A small dimension table with one skewed attribute."""
    return TableSpec(
        name=name,
        row_weight=weight,
        columns=(ColumnSpec(attr, "zipf", 0, high, zipf_a=1.3),),
    )


TABLE_SPECS = [
    TableSpec(
        name="title",
        row_weight=1.0,
        foreign_keys=(ForeignKeySpec("kind_id", "kind_type", skew=1.4),),
        columns=(
            ColumnSpec("production_year", "normal", 1900, 2020),
            ColumnSpec("episode_nr", "zipf", 0, 100, zipf_a=1.6),
        ),
    ),
    TableSpec(
        name="name",
        row_weight=1.2,
        columns=(ColumnSpec("gender", "zipf", 0, 2, zipf_a=1.2),),
    ),
    _dim("kind_type", 0.01, "kind", 7),
    _dim("company_type", 0.01, "kind", 4),
    _dim("info_type", 0.02, "info", 110),
    _dim("role_type", 0.01, "role", 11),
    _dim("link_type", 0.01, "link", 17),
    _dim("comp_cast_type", 0.01, "kind", 4),
    TableSpec(
        name="company_name",
        row_weight=0.3,
        columns=(ColumnSpec("country_code", "zipf", 0, 120, zipf_a=1.5),),
    ),
    TableSpec(
        name="keyword",
        row_weight=0.3,
        columns=(ColumnSpec("phonetic_code", "uniform", 0, 1000),),
    ),
    TableSpec(
        name="char_name",
        row_weight=0.5,
        columns=(ColumnSpec("name_pcode", "uniform", 0, 1000),),
    ),
    TableSpec(
        name="cast_info",
        row_weight=3.0,
        foreign_keys=(
            ForeignKeySpec("movie_id", "title", skew=1.1),
            ForeignKeySpec("person_id", "name", skew=1.2),
            ForeignKeySpec("person_role_id", "char_name", skew=0.8),
            ForeignKeySpec("role_id", "role_type", skew=0.9),
        ),
        columns=(ColumnSpec("nr_order", "zipf", 0, 100, zipf_a=1.5),),
    ),
    TableSpec(
        name="movie_companies",
        row_weight=1.5,
        foreign_keys=(
            ForeignKeySpec("movie_id", "title", skew=1.0),
            ForeignKeySpec("company_id", "company_name", skew=1.4),
            ForeignKeySpec("company_type_id", "company_type", skew=0.8),
        ),
        columns=(ColumnSpec("note_code", "zipf", 0, 50, zipf_a=1.2),),
    ),
    TableSpec(
        name="movie_info",
        row_weight=2.5,
        foreign_keys=(
            ForeignKeySpec("movie_id", "title", skew=1.1),
            ForeignKeySpec("info_type_id", "info_type", skew=1.0),
        ),
        columns=(ColumnSpec("info_code", "zipf", 0, 500, zipf_a=1.3),),
    ),
    TableSpec(
        name="movie_info_idx",
        row_weight=0.8,
        foreign_keys=(
            ForeignKeySpec("movie_id", "title", skew=1.0),
            ForeignKeySpec("info_type_id", "info_type", skew=1.0),
        ),
        columns=(ColumnSpec("info_value", "lognormal", 0, 1000),),
    ),
    TableSpec(
        name="movie_keyword",
        row_weight=2.0,
        foreign_keys=(
            ForeignKeySpec("movie_id", "title", skew=1.2),
            ForeignKeySpec("keyword_id", "keyword", skew=1.4),
        ),
        columns=(ColumnSpec("weight", "uniform", 0, 100),),
    ),
    TableSpec(
        name="aka_name",
        row_weight=0.4,
        foreign_keys=(ForeignKeySpec("person_id", "name", skew=1.1),),
        columns=(ColumnSpec("name_pcode", "uniform", 0, 1000),),
    ),
    TableSpec(
        name="aka_title",
        row_weight=0.3,
        foreign_keys=(ForeignKeySpec("movie_id", "title", skew=1.1),),
        columns=(ColumnSpec("production_year", "normal", 1900, 2020),),
    ),
    TableSpec(
        name="complete_cast",
        row_weight=0.2,
        foreign_keys=(
            ForeignKeySpec("movie_id", "title", skew=1.0),
            ForeignKeySpec("status_id", "comp_cast_type", skew=0.7),
        ),
        columns=(ColumnSpec("subject", "zipf", 0, 4, zipf_a=1.0),),
    ),
    TableSpec(
        name="movie_link",
        row_weight=0.1,
        foreign_keys=(
            ForeignKeySpec("movie_id", "title", skew=1.0),
            ForeignKeySpec("link_type_id", "link_type", skew=0.8),
        ),
        columns=(ColumnSpec("linked_year", "normal", 1900, 2020),),
    ),
    TableSpec(
        name="person_info",
        row_weight=1.0,
        foreign_keys=(
            ForeignKeySpec("person_id", "name", skew=1.3),
            ForeignKeySpec("info_type_id", "info_type", skew=1.0),
        ),
        columns=(ColumnSpec("info_code", "zipf", 0, 500, zipf_a=1.2),),
    ),
]


def make_imdb(base_rows: int, seed: int = 0) -> Database:
    """Build the synthetic 21-table IMDB database (JOB schema shape)."""
    return build_database("imdb", TABLE_SPECS, base_rows, seed=seed)
