"""Spec-driven synthetic dataset builder.

The paper evaluates on DMV, IMDB, TPC-H, and STATS. Those datasets are not
distributable here, so each is reproduced as a *synthetic* database with the
same schema shape (table count, FK topology) and with attribute
distributions chosen to preserve what makes cardinality estimation hard:
heavy skew (Zipf / log-normal), inter-column correlation, and FK fan-outs
that make multi-join cardinalities span many orders of magnitude.

A dataset module declares :class:`TableSpec`/:class:`ColumnSpec` values and
calls :func:`build_database`; everything is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.schema import Column, DatabaseSchema, JoinEdge, TableSchema
from repro.db.table import Database, Table
from repro.utils.errors import SchemaError
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class ColumnSpec:
    """How to synthesize one attribute column.

    Attributes:
        name: column name.
        distribution: ``uniform`` | ``zipf`` | ``normal`` | ``lognormal`` |
            ``correlated``.
        low/high: attribute domain (inclusive); generated values are clipped
            into it and the schema column advertises it for normalization.
        integer: round values to integers (dictionary-encoded categoricals).
        zipf_a: Zipf exponent for ``zipf``.
        source: for ``correlated``: the column (same table) this one follows.
        noise: for ``correlated``: relative Gaussian noise level.
    """

    name: str
    distribution: str = "uniform"
    low: float = 0.0
    high: float = 100.0
    integer: bool = True
    zipf_a: float = 1.5
    source: str | None = None
    noise: float = 0.15


@dataclass(frozen=True)
class ForeignKeySpec:
    """A child column referencing a parent table's primary key.

    ``skew`` controls the popularity distribution of parents: 0 is uniform,
    larger values concentrate references onto few parents (Zipf-like),
    which is what produces explosive join fan-outs.
    """

    column: str
    parent: str
    skew: float = 1.0


@dataclass(frozen=True)
class TableSpec:
    """One table: size weight, attribute specs, and FK references.

    ``row_weight`` multiplies the dataset's base row count, so "fact" tables
    can be bigger than dimension tables at any scale.
    """

    name: str
    row_weight: float
    columns: tuple[ColumnSpec, ...]
    foreign_keys: tuple[ForeignKeySpec, ...] = ()
    has_primary_key: bool = True


def _generate_attribute(spec: ColumnSpec, rows: int, rng: np.random.Generator,
                        existing: dict[str, np.ndarray]) -> np.ndarray:
    span = spec.high - spec.low
    if spec.distribution == "uniform":
        values = rng.uniform(spec.low, spec.high, size=rows)
    elif spec.distribution == "normal":
        center = spec.low + span / 2.0
        values = rng.normal(center, span / 6.0, size=rows)
    elif spec.distribution == "lognormal":
        raw = rng.lognormal(mean=0.0, sigma=1.0, size=rows)
        values = spec.low + span * (raw / (raw.max() + 1e-9))
    elif spec.distribution == "zipf":
        # Zipf ranks over a fixed number of distinct values mapped into the
        # domain; heavy mass on the low end of the domain.
        distinct = max(int(span) + 1, 2) if spec.integer else 1000
        ranks = np.arange(1, distinct + 1, dtype=np.float64)
        weights = ranks ** (-spec.zipf_a)
        weights /= weights.sum()
        choice = rng.choice(distinct, size=rows, p=weights)
        values = spec.low + (choice / max(distinct - 1, 1)) * span
    elif spec.distribution == "correlated":
        if spec.source is None or spec.source not in existing:
            raise SchemaError(
                f"correlated column {spec.name!r} needs an earlier 'source' column"
            )
        base = existing[spec.source].astype(np.float64)
        base_min, base_max = base.min(), base.max()
        base_span = max(base_max - base_min, 1e-9)
        normalized = (base - base_min) / base_span
        jitter = rng.normal(0.0, spec.noise, size=rows)
        values = spec.low + np.clip(normalized + jitter, 0.0, 1.0) * span
    else:
        raise SchemaError(f"unknown distribution {spec.distribution!r} for {spec.name!r}")
    values = np.clip(values, spec.low, spec.high)
    if spec.integer:
        values = np.rint(values)
    return values


def _generate_foreign_key(
    fk: ForeignKeySpec, rows: int, parent_rows: int, rng: np.random.Generator
) -> np.ndarray:
    if parent_rows <= 0:
        raise SchemaError(f"foreign key {fk.column!r} references empty parent {fk.parent!r}")
    if fk.skew <= 0:
        return rng.integers(0, parent_rows, size=rows)
    ranks = np.arange(1, parent_rows + 1, dtype=np.float64)
    weights = ranks ** (-fk.skew)
    weights /= weights.sum()
    parents = rng.choice(parent_rows, size=rows, p=weights)
    # Shuffle the identity of "popular" parents so popularity is not
    # correlated with primary-key order.
    permutation = rng.permutation(parent_rows)
    return permutation[parents]


def build_database(
    name: str,
    specs: list[TableSpec],
    base_rows: int,
    seed: int | np.random.Generator | None = 0,
) -> Database:
    """Materialize a :class:`Database` from table specs.

    Tables are generated in dependency order (parents before children);
    primary keys are ``0..rows-1`` under the column name ``id``.
    """
    rng = derive_rng(seed)
    spec_by_name = {s.name: s for s in specs}
    if len(spec_by_name) != len(specs):
        raise SchemaError("duplicate table names in dataset spec")

    # Topological order over FK dependencies.
    ordered: list[TableSpec] = []
    resolved: set[str] = set()
    pending = list(specs)
    while pending:
        progressed = False
        for spec in list(pending):
            if all(fk.parent in resolved for fk in spec.foreign_keys):
                ordered.append(spec)
                resolved.add(spec.name)
                pending.remove(spec)
                progressed = True
        if not progressed:
            cycle = [s.name for s in pending]
            raise SchemaError(f"cyclic or dangling foreign keys among tables {cycle}")

    table_schemas: list[TableSchema] = []
    join_edges: list[JoinEdge] = []
    tables: dict[str, Table] = {}
    row_counts: dict[str, int] = {}

    for spec in ordered:
        rows = max(int(round(spec.row_weight * base_rows)), 2)
        row_counts[spec.name] = rows
        columns: list[Column] = []
        data: dict[str, np.ndarray] = {}
        if spec.has_primary_key:
            columns.append(Column("id", kind="key"))
            data["id"] = np.arange(rows, dtype=np.int64)
        for fk in spec.foreign_keys:
            columns.append(Column(fk.column, kind="key"))
            data[fk.column] = _generate_foreign_key(fk, rows, row_counts[fk.parent], rng)
            join_edges.append(JoinEdge(spec.name, fk.column, fk.parent, "id"))
        for col_spec in spec.columns:
            columns.append(
                Column(col_spec.name, kind="attribute", low=col_spec.low, high=col_spec.high)
            )
            data[col_spec.name] = _generate_attribute(col_spec, rows, rng, data)
        schema = TableSchema(spec.name, tuple(columns))
        table_schemas.append(schema)
        tables[spec.name] = Table(schema, data)

    # Keep schema table order equal to the caller's declared order (not the
    # topological generation order) so encodings are stable.
    declared_order = [s.name for s in specs]
    table_schemas.sort(key=lambda ts: declared_order.index(ts.name))
    db_schema = DatabaseSchema(name, table_schemas, join_edges)
    return Database(db_schema, tables)
