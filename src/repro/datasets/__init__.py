"""Synthetic reproductions of the paper's four evaluation datasets."""

from repro.datasets.base import (
    ColumnSpec,
    ForeignKeySpec,
    TableSpec,
    build_database,
)
from repro.datasets.dmv import make_dmv
from repro.datasets.imdb import make_imdb
from repro.datasets.registry import (
    DATASET_NAMES,
    MULTI_TABLE_DATASETS,
    load_dataset,
)
from repro.datasets.stats import make_stats
from repro.datasets.tpch import make_tpch

__all__ = [
    "ColumnSpec",
    "ForeignKeySpec",
    "TableSpec",
    "build_database",
    "make_dmv",
    "make_imdb",
    "make_tpch",
    "make_stats",
    "load_dataset",
    "DATASET_NAMES",
    "MULTI_TABLE_DATASETS",
]
