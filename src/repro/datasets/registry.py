"""Dataset registry: build any of the paper's four datasets by name."""

from __future__ import annotations

from functools import lru_cache

from repro.datasets.dmv import make_dmv
from repro.datasets.imdb import make_imdb
from repro.datasets.stats import make_stats
from repro.datasets.tpch import make_tpch
from repro.db.table import Database
from repro.utils.config import ScaleConfig, get_scale
from repro.utils.errors import ReproError

_BUILDERS = {
    "dmv": (make_dmv, "rows_single_table"),
    "imdb": (make_imdb, "rows_multi_table"),
    "tpch": (make_tpch, "rows_multi_table"),
    "stats": (make_stats, "rows_multi_table"),
}

DATASET_NAMES: tuple[str, ...] = tuple(_BUILDERS)

#: Datasets with more than one table (used by the E2E experiments, Table 5).
MULTI_TABLE_DATASETS: tuple[str, ...] = ("imdb", "tpch", "stats")


@lru_cache(maxsize=16)
def _build_cached(name: str, base_rows: int, seed: int) -> Database:  # safe: R015 per-process memo; builders are deterministic in (name, rows, seed)
    builder, _ = _BUILDERS[name]
    return builder(base_rows, seed=seed)


def load_dataset(
    name: str,
    scale: ScaleConfig | str | None = None,
    seed: int = 0,
    base_rows: int | None = None,
) -> Database:
    """Build (or fetch from cache) a dataset by name.

    Args:
        name: one of ``dmv``, ``imdb``, ``tpch``, ``stats``.
        scale: a :class:`ScaleConfig`, a scale name, or ``None`` for the
            ``REPRO_SCALE`` default. Determines the base row count.
        seed: data-generation seed.
        base_rows: override the scale's row count explicitly.
    """
    if name not in _BUILDERS:
        raise ReproError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    if base_rows is None:
        if isinstance(scale, str) or scale is None:
            scale = get_scale(scale)
        _, rows_field = _BUILDERS[name]
        base_rows = getattr(scale, rows_field)
    return _build_cached(name, int(base_rows), int(seed))
