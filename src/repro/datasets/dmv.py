"""Synthetic DMV: a single wide table of vehicle registrations.

Mirrors the New York DMV registration snapshot the paper uses: one table,
~10 dictionary-encoded / numeric attributes with strong skew (a few
registration classes dominate) and correlations (vehicle weight follows
body type, fuel type follows model year).
"""

from __future__ import annotations

from repro.datasets.base import ColumnSpec, TableSpec, build_database
from repro.db.table import Database

TABLE_SPECS = [
    TableSpec(
        name="dmv",
        row_weight=1.0,
        has_primary_key=False,
        columns=(
            ColumnSpec("record_type", "zipf", 0, 4, zipf_a=1.2),
            ColumnSpec("registration_class", "zipf", 0, 60, zipf_a=1.6),
            ColumnSpec("city", "zipf", 0, 900, zipf_a=1.3),
            ColumnSpec("zip_code", "uniform", 0, 2000),
            ColumnSpec("model_year", "normal", 1960, 2020),
            ColumnSpec("body_type", "zipf", 0, 30, zipf_a=1.4),
            ColumnSpec("unladen_weight", "correlated", 500, 40000, source="body_type", noise=0.2),
            ColumnSpec("fuel_type", "correlated", 0, 8, source="model_year", noise=0.3),
            ColumnSpec("color", "zipf", 0, 20, zipf_a=1.1),
            ColumnSpec("scofflaw_indicator", "zipf", 0, 1, zipf_a=2.5),
        ),
    )
]


def make_dmv(base_rows: int, seed: int = 0) -> Database:
    """Build the synthetic DMV database with ``base_rows`` rows."""
    return build_database("dmv", TABLE_SPECS, base_rows, seed=seed)
