"""Synthetic STATS: the 8-table Stack Exchange schema shape (STATS-CEB).

Users and posts are the hubs; comments, votes, badges, post history, and
post links fan out from them, as in the STATS benchmark of Han et al.
(2021). FK skew models the real workload's heavy hitters (a few power users
and hot questions receive most activity).
"""

from __future__ import annotations

from repro.datasets.base import ColumnSpec, ForeignKeySpec, TableSpec, build_database
from repro.db.table import Database

TABLE_SPECS = [
    TableSpec(
        name="users",
        row_weight=0.5,
        columns=(
            ColumnSpec("reputation", "lognormal", 1, 100000),
            ColumnSpec("up_votes", "lognormal", 0, 10000),
            ColumnSpec("creation_year", "uniform", 2009, 2014),
        ),
    ),
    TableSpec(
        name="posts",
        row_weight=1.0,
        foreign_keys=(ForeignKeySpec("owner_user_id", "users", skew=1.3),),
        columns=(
            ColumnSpec("score", "normal", -10, 120),
            ColumnSpec("view_count", "lognormal", 0, 50000),
            ColumnSpec("answer_count", "zipf", 0, 30, zipf_a=1.6),
        ),
    ),
    TableSpec(
        name="comments",
        row_weight=1.8,
        foreign_keys=(
            ForeignKeySpec("post_id", "posts", skew=1.2),
            ForeignKeySpec("user_id", "users", skew=1.4),
        ),
        columns=(ColumnSpec("score", "zipf", 0, 80, zipf_a=1.8),),
    ),
    TableSpec(
        name="badges",
        row_weight=0.8,
        foreign_keys=(ForeignKeySpec("user_id", "users", skew=1.5),),
        columns=(ColumnSpec("badge_class", "zipf", 1, 3, zipf_a=1.2),),
    ),
    TableSpec(
        name="votes",
        row_weight=2.5,
        foreign_keys=(
            ForeignKeySpec("post_id", "posts", skew=1.3),
            ForeignKeySpec("user_id", "users", skew=1.1),
        ),
        columns=(ColumnSpec("vote_type", "zipf", 1, 15, zipf_a=1.7),),
    ),
    TableSpec(
        name="post_history",
        row_weight=1.5,
        foreign_keys=(
            ForeignKeySpec("post_id", "posts", skew=1.1),
            ForeignKeySpec("user_id", "users", skew=1.2),
        ),
        columns=(ColumnSpec("history_type", "zipf", 1, 38, zipf_a=1.3),),
    ),
    TableSpec(
        name="post_links",
        row_weight=0.2,
        foreign_keys=(ForeignKeySpec("post_id", "posts", skew=1.0),),
        columns=(ColumnSpec("link_type", "zipf", 1, 3, zipf_a=1.1),),
    ),
    TableSpec(
        name="tags",
        row_weight=0.1,
        foreign_keys=(ForeignKeySpec("excerpt_post_id", "posts", skew=0.8),),
        columns=(ColumnSpec("tag_count", "lognormal", 1, 30000),),
    ),
]


def make_stats(base_rows: int, seed: int = 0) -> Database:
    """Build the synthetic 8-table STATS database."""
    return build_database("stats", TABLE_SPECS, base_rows, seed=seed)
