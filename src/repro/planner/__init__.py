"""Cost-based join-order planning and end-to-end latency simulation."""

from repro.planner.cardinality import (
    CardinalitySource,
    EstimatedCardinalities,
    OracleWithNoise,
    TrueCardinalities,
)
from repro.planner.optimizer import JoinOrderOptimizer, PlannedQuery, plan_cost
from repro.planner.plans import JoinNode, PlanNode, ScanNode
from repro.planner.simulator import E2EResult, E2ESimulator, LatencyModel, QueryRun

__all__ = [
    "CardinalitySource",
    "TrueCardinalities",
    "EstimatedCardinalities",
    "OracleWithNoise",
    "JoinOrderOptimizer",
    "PlannedQuery",
    "plan_cost",
    "PlanNode",
    "ScanNode",
    "JoinNode",
    "E2ESimulator",
    "E2EResult",
    "LatencyModel",
    "QueryRun",
]
