"""End-to-end latency simulation (the Table 5 experiment's substrate).

The paper measures wall-clock execution of 20 multi-table join queries in
PostgreSQL with each (clean or poisoned) CE model plugged into the
optimizer. Here the optimizer chooses a join order using the model's
*estimates*, and the "latency" of the chosen plan is its C_out cost under
*true* cardinalities, scaled to seconds. The causal chain the paper
exploits — worse estimates => worse join orders => slower execution — is
preserved; absolute seconds are nominal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ce.base import CardinalityEstimator
from repro.db.executor import Executor
from repro.db.query import Query
from repro.planner.cardinality import EstimatedCardinalities, TrueCardinalities
from repro.planner.optimizer import JoinOrderOptimizer


@dataclass(frozen=True)
class LatencyModel:
    """Converts plan work into nominal seconds.

    ``seconds_per_tuple`` scales the C_out cost (intermediate tuples
    produced); ``seconds_per_scan_tuple`` charges base-table scans;
    ``per_query_overhead`` models fixed planning/startup cost.

    The paper attributes E2E degradation to join *order* and join
    *operator* selection. Operator choice is modeled explicitly, in both
    error directions:

    * **underestimate**: a join whose *estimated* output is at most
      ``nested_loop_threshold`` tuples gets a nested-loop join; if the
      *true* output exceeds the threshold, the node costs
      ``nested_loop_penalty`` x its tuples (the classic blowup);
    * **overestimate**: a join believed much larger than it really is pays
      a surcharge of ``overestimate_tax`` x the phantom tuples (capped at
      ``grant_cap``) — the cost of sizing hash tables, memory grants, and
      parallelism for rows that never arrive.
    """

    seconds_per_tuple: float = 1e-4
    seconds_per_scan_tuple: float = 1e-6
    per_query_overhead: float = 0.01
    nested_loop_threshold: float = 1_000.0
    nested_loop_penalty: float = 8.0
    overestimate_tax: float = 0.1
    grant_cap: float = 100_000.0


@dataclass
class QueryRun:
    """Outcome of one simulated query execution."""

    query: Query
    believed_cost: float
    true_cost: float
    seconds: float


@dataclass
class E2EResult:
    """Aggregate of a simulated workload run."""

    runs: list[QueryRun] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(r.seconds for r in self.runs)

    @property
    def total_true_cost(self) -> float:
        return sum(r.true_cost for r in self.runs)


class E2ESimulator:
    """Runs workloads through plan selection + true-cost evaluation."""

    def __init__(self, executor: Executor, latency: LatencyModel | None = None) -> None:
        self.executor = executor
        self.schema = executor.schema
        self.latency = latency or LatencyModel()
        self._truth = TrueCardinalities(executor)

    def run(self, queries, model: CardinalityEstimator) -> E2EResult:
        """Simulate executing ``queries`` with ``model`` driving the optimizer."""
        return self._run(queries, EstimatedCardinalities(model))

    def run_optimal(self, queries) -> E2EResult:
        """Simulate with perfect cardinalities (lower bound reference)."""
        return self._run(queries, self._truth)

    def _run(self, queries, source) -> E2EResult:
        optimizer = JoinOrderOptimizer(self.schema, source)
        result = E2EResult()
        for query in queries:
            planned = optimizer.best_plan(query)
            true_cost = self._execution_cost(planned.plan, query, source)
            scan_tuples = sum(
                self.executor.database.table(t).num_rows for t in query.tables
            )
            seconds = (
                self.latency.per_query_overhead
                + self.latency.seconds_per_scan_tuple * scan_tuples
                + self.latency.seconds_per_tuple * true_cost
            )
            result.runs.append(
                QueryRun(
                    query=query,
                    believed_cost=planned.believed_cost,
                    true_cost=true_cost,
                    seconds=seconds,
                )
            )
        return result

    def _execution_cost(self, plan, query, source) -> float:
        """True tuple cost of the plan, including operator mispredictions.

        Per join node the optimizer commits to a nested-loop join when the
        *estimated* output is small; if the *true* output is large, the
        node pays ``nested_loop_penalty``.
        """
        total = 0.0
        threshold = self.latency.nested_loop_threshold
        for subset in plan.join_subsets():
            sub = query.restricted_to(subset)
            true_card = max(self._truth.cardinality(sub), 0.0)
            estimated = max(source.cardinality(sub), 0.0)
            node_cost = true_card
            if estimated <= threshold < true_card:
                node_cost *= self.latency.nested_loop_penalty
            elif estimated > max(true_card * 4.0, threshold):
                phantom = min(estimated - true_card, self.latency.grant_cap)
                node_cost += self.latency.overestimate_tax * phantom
            total += node_cost
        return total
