"""Cardinality sources the planner can cost plans with.

``TrueCardinalities`` executes sub-joins (what the evaluation harness uses
to measure a plan's *actual* cost); ``EstimatedCardinalities`` asks a CE
model (what the optimizer believes when choosing the plan). The whole E2E
experiment (Table 5) is the gap between the two.
"""

from __future__ import annotations

from repro.ce.base import CardinalityEstimator
from repro.db.executor import Executor
from repro.db.query import Query


class CardinalitySource:
    """Interface: cardinality of a (sub-)query."""

    def cardinality(self, query: Query) -> float:
        raise NotImplementedError


class TrueCardinalities(CardinalitySource):
    """Ground truth from the relational executor (memoized there)."""

    def __init__(self, executor: Executor) -> None:
        self.executor = executor

    def cardinality(self, query: Query) -> float:
        return float(self.executor.count(query))


class EstimatedCardinalities(CardinalitySource):
    """Estimates from a learned CE model, memoized per sub-query."""

    def __init__(self, model: CardinalityEstimator) -> None:
        self.model = model
        self._cache: dict[tuple, float] = {}

    def cardinality(self, query: Query) -> float:
        key = query.cache_key()
        value = self._cache.get(key)
        if value is None:
            value = float(self.model.estimate([query])[0])
            self._cache[key] = value
        return value


class OracleWithNoise(CardinalitySource):
    """True cardinalities perturbed by a fixed factor per sub-query.

    Useful in tests to verify that worse estimates produce worse plans
    without training a model.
    """

    def __init__(self, executor: Executor, factors: dict[tuple, float]) -> None:
        self.executor = executor
        self.factors = factors

    def cardinality(self, query: Query) -> float:
        true = float(self.executor.count(query))
        return true * self.factors.get(query.cache_key(), 1.0)
