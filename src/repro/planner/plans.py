"""Physical-plan trees produced by the join-order optimizer."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlanNode:
    """Base plan node: the set of base tables it produces."""

    tables: frozenset[str]

    def join_subsets(self) -> list[frozenset[str]]:
        """Table sets of every join node in the subtree (for costing)."""
        raise NotImplementedError

    def render(self, indent: int = 0) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ScanNode(PlanNode):
    """A filtered base-table scan."""

    table: str = ""

    def join_subsets(self) -> list[frozenset[str]]:
        return []

    def render(self, indent: int = 0) -> str:
        return " " * indent + f"Scan({self.table})"


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """A binary hash join of two sub-plans."""

    left: PlanNode = None  # type: ignore[assignment]
    right: PlanNode = None  # type: ignore[assignment]

    def join_subsets(self) -> list[frozenset[str]]:
        return self.left.join_subsets() + self.right.join_subsets() + [self.tables]

    def render(self, indent: int = 0) -> str:
        lines = [" " * indent + f"Join({', '.join(sorted(self.tables))})"]
        lines.append(self.left.render(indent + 2))
        lines.append(self.right.render(indent + 2))
        return "\n".join(lines)
