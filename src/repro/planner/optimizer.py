"""Selinger-style dynamic-programming join-order optimizer.

Costs plans with the C_out model (sum of intermediate join cardinalities),
the standard metric for judging the impact of cardinality estimation on
plan quality. Plans are bushy; only connected sub-joins (no cross
products) are enumerated, exactly as the FK join graph allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.db.query import Query
from repro.db.schema import DatabaseSchema
from repro.planner.cardinality import CardinalitySource
from repro.planner.plans import JoinNode, PlanNode, ScanNode
from repro.utils.errors import PlanError


@dataclass
class PlannedQuery:
    """A chosen plan plus the cost the optimizer *believed* it had."""

    query: Query
    plan: PlanNode
    believed_cost: float


class JoinOrderOptimizer:
    """Chooses join orders using a :class:`CardinalitySource`."""

    def __init__(self, schema: DatabaseSchema, source: CardinalitySource) -> None:
        self.schema = schema
        self.source = source

    def best_plan(self, query: Query) -> PlannedQuery:
        """DP over connected table subsets of the query.

        Raises:
            PlanError: if the query's join set is not connected (cannot
                happen for queries built via :meth:`Query.build`).
        """
        tables = sorted(query.tables, key=self.schema.table_index)
        if not self.schema.is_valid_join_set(tables):
            raise PlanError(f"join set {tables} is not connected")
        if len(tables) == 1:
            plan = ScanNode(frozenset(tables), table=tables[0])
            return PlannedQuery(query, plan, believed_cost=0.0)

        graph = self.schema.join_graph().subgraph(tables)
        best: dict[frozenset[str], tuple[float, PlanNode]] = {}
        for t in tables:
            best[frozenset([t])] = (0.0, ScanNode(frozenset([t]), table=t))

        card_cache: dict[frozenset[str], float] = {}

        def cardinality(subset: frozenset[str]) -> float:
            if subset not in card_cache:
                card_cache[subset] = max(
                    self.source.cardinality(query.restricted_to(subset)), 0.0
                )
            return card_cache[subset]

        import networkx as nx

        for size in range(2, len(tables) + 1):
            for combo in combinations(tables, size):
                subset = frozenset(combo)
                if not nx.is_connected(graph.subgraph(subset)):
                    continue
                subset_card = cardinality(subset)
                best_cost = None
                best_plan: PlanNode | None = None
                members = sorted(subset, key=self.schema.table_index)
                # Enumerate each partition exactly once: the half containing
                # members[0] is `left`; the mask ranges over the remaining
                # members, excluding the all-ones mask (empty right half).
                for mask in range(0, (1 << (size - 1)) - 1):
                    left = frozenset(
                        members[i] for i in range(size) if (i == 0 or (mask >> (i - 1)) & 1)
                    )
                    right = subset - left
                    left_entry = best.get(left)
                    right_entry = best.get(right)
                    if left_entry is None or right_entry is None:
                        continue
                    # Require a join edge between halves (no cross products).
                    if not any(
                        graph.has_edge(a, b) for a in left for b in graph.neighbors(a)
                        if b in right
                    ):
                        continue
                    cost = left_entry[0] + right_entry[0] + subset_card
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        best_plan = JoinNode(subset, left=left_entry[1], right=right_entry[1])
                if best_plan is not None:
                    best[subset] = (best_cost, best_plan)

        full = frozenset(tables)
        if full not in best:
            raise PlanError(f"no plan found for join set {tables}")
        cost, plan = best[full]
        return PlannedQuery(query, plan, believed_cost=cost)


def plan_cost(plan: PlanNode, query: Query, source: CardinalitySource) -> float:
    """C_out cost of ``plan`` under ``source`` (sum of join-result sizes)."""
    total = 0.0
    for subset in plan.join_subsets():
        total += max(source.cardinality(query.restricted_to(subset)), 0.0)
    return total
