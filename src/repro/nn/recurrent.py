"""Recurrent cells used by the RNN and LSTM cardinality estimators.

Sequences are presented as ``(batch, steps, features)`` tensors; the
wrappers iterate over the step axis with graph-building tensor ops, so
gradients (including the second-order ones PACE needs) flow through time.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import derive_rng


class RNNCell(Module):
    """Elman cell: ``h' = tanh(x @ W_xh + h @ W_hh + b)``."""

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | int | None = None
    ) -> None:
        super().__init__()
        rng = derive_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_xh = init.xavier_uniform(input_size, hidden_size, rng)
        self.w_hh = init.xavier_uniform(hidden_size, hidden_size, rng)
        self.bias = init.zeros(hidden_size)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return (x @ self.w_xh + h @ self.w_hh + self.bias).tanh()


class LSTMCell(Module):
    """Standard LSTM cell with a single fused gate projection."""

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | int | None = None
    ) -> None:
        super().__init__()
        rng = derive_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_x = init.xavier_uniform(input_size, 4 * hidden_size, rng)
        self.w_h = init.xavier_uniform(hidden_size, 4 * hidden_size, rng)
        self.bias = init.zeros(4 * hidden_size)

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        gates = x @ self.w_x + h @ self.w_h + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next


class RNN(Module):
    """Unidirectional RNN returning the final hidden state."""

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | int | None = None
    ) -> None:
        super().__init__()
        self.cell = RNNCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> Tensor:
        batch, steps, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_size)))
        for t in range(steps):
            h = self.cell(x[:, t, :], h)
        return h


class LSTM(Module):
    """Unidirectional LSTM returning the final hidden state."""

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | int | None = None
    ) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> Tensor:
        batch, steps, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        for t in range(steps):
            h, c = self.cell(x[:, t, :], h, c)
        return h


def split_sequence(x: Tensor, step_size: int) -> Tensor:
    """Reshape a flat ``(batch, steps*step_size)`` tensor to ``(batch, steps, step_size)``.

    Query encodings are flat vectors; the recurrent estimators consume them
    chunk by chunk, which this helper makes explicit (padding with zeros when
    the width is not a multiple of ``step_size``).
    """
    batch, width = x.shape
    remainder = width % step_size
    if remainder:
        pad = Tensor(np.zeros((batch, step_size - remainder)))
        x = concat([x, pad], axis=1)
        width = x.shape[1]
    return x.reshape((batch, width // step_size, step_size))
