"""Feed-forward building blocks: Linear, activations, Sequential, Dropout."""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn import tensor as _tensor
from repro.nn.tensor import Tensor, affine
from repro.utils.rng import derive_rng

#: Weight-init schemes selectable per Linear. Xavier is the default (and
#: the historical behavior); Kaiming suits deep ReLU stacks.
_INITIALIZERS = {
    "xavier": init.xavier_uniform,
    "kaiming": init.kaiming_uniform,
}


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | int | None = None,
        bias: bool = True,
        init_scheme: str = "xavier",
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"features must be positive, got in={in_features}, out={out_features}"
            )
        initializer = _INITIALIZERS.get(init_scheme)
        if initializer is None:
            raise ValueError(
                f"init_scheme must be one of {sorted(_INITIALIZERS)}, got {init_scheme!r}"
            )
        rng = derive_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = initializer(in_features, out_features, rng)
        self.use_bias = bias
        if bias:
            self.bias = init.zeros(out_features)

    def forward(self, x: Tensor) -> Tensor:
        return affine(x, self.weight, self.bias if self.use_bias else None)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


#: Activation modules a Sequential may fold into the preceding Linear's
#: fused affine node (exact classes only — subclasses may override forward).
_FUSABLE_ACTIVATIONS: dict[type, str] = {ReLU: "relu", Sigmoid: "sigmoid", Tanh: "tanh"}


class Sequential(Module):
    """Chain of modules applied in order.

    ``(Linear, activation)`` adjacent pairs are executed as one fused
    :func:`~repro.nn.tensor.affine` graph node; the result is bit-identical
    to running the two modules separately.
    """

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order = []
        for i, module in enumerate(modules):
            name = f"layer{i}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        modules = [getattr(self, name) for name in self._order]
        i, n = 0, len(modules)
        while i < n:
            module = modules[i]
            if type(module) is Linear and i + 1 < n:
                activation = _FUSABLE_ACTIVATIONS.get(type(modules[i + 1]))
                if activation is not None:
                    x = affine(
                        x,
                        module.weight,
                        module.bias if module.use_bias else None,
                        activation=activation,
                    )
                    i += 2
                    continue
            x = module(x)
            i += 1
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)


class Dropout(Module):
    """Inverted dropout; identity in eval mode. Deterministic given a seed."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | int | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = derive_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p <= 0.0:
            return x
        if _tensor._TRACER is not None:
            # The mask draw advances the layer's RNG per call; baking one
            # draw into a replayed plan would freeze it. Decline the trace.
            _tensor._TRACER.unsupported("Dropout in training mode")
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


def mlp(
    in_features: int,
    hidden: list[int],
    out_features: int,
    rng: np.random.Generator | int | None = None,
    activation: type[Module] = ReLU,
    final_activation: Module | None = None,
) -> Sequential:
    """Build a multilayer perceptron with the given hidden widths."""
    rng = derive_rng(rng)
    dims = [in_features] + list(hidden) + [out_features]
    layers: list[Module] = []
    for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
        layers.append(Linear(d_in, d_out, rng=rng))
        if i < len(dims) - 2:
            layers.append(activation())
    if final_activation is not None:
        layers.append(final_activation)
    return Sequential(*layers)
