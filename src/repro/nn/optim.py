"""Gradient-descent optimizers (SGD with momentum, Adam)."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base class holding the parameter list."""

    def __init__(self, params: list[Tensor], lr: float) -> None:
        params = list(params)
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent, optionally with classical momentum."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) — the optimizer the paper uses throughout."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        beta1, beta2 = self.betas
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - beta1**t
        bias2 = 1.0 - beta2**t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad.data
            m *= beta1
            m += (1.0 - beta1) * g
            v *= beta2
            v += (1.0 - beta2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class GradientClipper:
    """Clips the global L2 norm of a parameter group's gradients."""

    def __init__(self, max_norm: float) -> None:
        if max_norm <= 0:
            raise ValueError(f"max_norm must be positive, got {max_norm}")
        self.max_norm = max_norm

    def clip(self, params: list[Tensor]) -> float:
        """Scale gradients in place; returns the pre-clip global norm."""
        total = 0.0
        grads = [p.grad for p in params if p.grad is not None]
        for g in grads:
            total += float((g.data**2).sum())
        norm = float(np.sqrt(total))
        if norm > self.max_norm and norm > 0:
            scale = self.max_norm / norm
            for g in grads:
                g.data *= scale
        return norm
