"""Loss functions: Q-error (the CE training loss), MSE, BCE, VAE ELBO parts."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, maximum


def q_error(estimated: Tensor, true: Tensor) -> Tensor:
    """Elementwise Q-error ``max(est/true, true/est)`` (Moerkotte et al.).

    Both operands must be strictly positive; the CE models guarantee this by
    construction (sigmoid output head, zero-cardinality queries dropped).
    """
    _check_positive(estimated, "estimated")
    _check_positive(true, "true")
    ratio = estimated / true
    return maximum(ratio, ratio ** -1.0)


def q_error_loss(estimated: Tensor, true: Tensor) -> Tensor:
    """Mean Q-error over a batch — Eq. 1's loss function."""
    return q_error(estimated, true).mean()


def log_q_error_loss(estimated: Tensor, true: Tensor) -> Tensor:
    """Mean ``|log est - log true|``, the smooth log-space Q-error variant.

    Equal to ``log(q_error)`` pointwise; its gradients do not blow up when
    estimates are off by orders of magnitude, so the trainers optimize this
    and report plain Q-error.
    """
    _check_positive(estimated, "estimated")
    _check_positive(true, "true")
    return (estimated.log() - true.log()).abs().mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error (the VAE reconstruction loss, Eq. 12)."""
    diff = prediction - target
    return (diff * diff).mean()


def bce_loss(prediction: Tensor, target: Tensor, eps: float = 1e-7) -> Tensor:
    """Binary cross-entropy on probabilities in ``(0, 1)`` (Eq. 8)."""
    p = prediction.clip(eps, 1.0 - eps)
    t = target if isinstance(target, Tensor) else Tensor(target)
    return -(t * p.log() + (1.0 - t) * (1.0 - p).log()).mean()


def kl_standard_normal(mu: Tensor, log_var: Tensor) -> Tensor:
    """KL(q(z|x) || N(0, I)) for a diagonal Gaussian posterior."""
    return (-0.5 * (1.0 + log_var - mu * mu - log_var.exp())).sum(axis=-1).mean()


def _check_positive(t: Tensor, name: str) -> None:
    if np.any(t.data <= 0):
        smallest = float(t.data.min())
        raise ValueError(f"q-error requires positive {name} cardinalities (min={smallest})")
