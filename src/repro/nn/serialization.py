"""Versioned, validated serialization of module parameters.

Checkpoints are written in a deliberately boring binary container::

    b"REPRO-CKPT" | u32 format version | u64 header length | header JSON | raw arrays

The header lists every array's name, dtype, and shape (sorted by name);
payload bytes follow in that order, C-contiguous and little-endian. Two
properties drive the design:

* **Determinism** — the same state dict always produces the same bytes
  (``np.savez``'s zip container embeds wall-clock timestamps, which
  would break the content-addressed artifact store's "same parameters,
  same digest" invariant).
* **Validation** — loading checks the magic, rejects formats newer than
  this reader, rejects non-numeric dtypes, and reports missing/extra
  state-dict keys and per-key shape mismatches with a clear
  :class:`~repro.utils.errors.SerializationError` instead of a silent
  partial load.

Legacy ``.npz`` archives produced by earlier revisions are still
readable (the loader sniffs the zip magic), but everything written from
now on uses the versioned container.
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path

import numpy as np

from repro.nn.module import Module
from repro.utils.errors import SerializationError

#: Current container format version. Version 1 is the implicit legacy
#: ``.npz`` format (no header at all).
FORMAT_VERSION = 2

MAGIC = b"REPRO-CKPT"
_ZIP_MAGIC = b"PK"
_HEADER_STRUCT = struct.Struct("<IQ")  # format version, header JSON length


def _validate_array(name: str, value) -> np.ndarray:
    array = np.asarray(value)
    if not (np.issubdtype(array.dtype, np.number) or array.dtype == np.bool_):
        raise SerializationError(
            f"checkpoint array {name!r} has non-numeric dtype {array.dtype!s}; "
            f"only numeric/bool arrays can be serialized"
        )
    # np.ascontiguousarray promotes 0-d arrays to 1-d, which would change
    # the recorded shape of scalar entries (e.g. the estimator log cap).
    if array.ndim and not array.flags["C_CONTIGUOUS"]:
        array = np.ascontiguousarray(array)
    return array


def state_to_bytes(state: dict[str, np.ndarray]) -> bytes:
    """Serialize a state dict to deterministic, versioned bytes."""
    arrays = {}
    for name in sorted(state):
        array = _validate_array(name, state[name])
        # Normalize to little-endian so the bytes (and therefore the
        # content digest) are platform-independent.
        if array.dtype.byteorder == ">":
            array = array.astype(array.dtype.newbyteorder("<"))
        arrays[name] = array
    header = {
        "arrays": [
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
            }
            for name, array in arrays.items()
        ],
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(_HEADER_STRUCT.pack(FORMAT_VERSION, len(header_bytes)))
    out.write(header_bytes)
    for array in arrays.values():
        out.write(array.tobytes(order="C"))
    return out.getvalue()


def _state_from_legacy_npz(data: bytes) -> dict[str, np.ndarray]:
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def state_from_bytes(data: bytes) -> dict[str, np.ndarray]:
    """Parse checkpoint bytes back into a state dict (validating as it goes)."""
    if data[: len(_ZIP_MAGIC)] == _ZIP_MAGIC:
        # Legacy format-1 archive written with np.savez by older revisions.
        return _state_from_legacy_npz(data)
    if data[: len(MAGIC)] != MAGIC:
        raise SerializationError(
            "not a repro checkpoint: bad magic (expected a REPRO-CKPT container "
            "or a legacy .npz archive)"
        )
    offset = len(MAGIC)
    version, header_len = _HEADER_STRUCT.unpack_from(data, offset)
    if version > FORMAT_VERSION:
        raise SerializationError(
            f"checkpoint format version {version} is newer than this reader "
            f"(supports <= {FORMAT_VERSION}); upgrade the library to load it"
        )
    offset += _HEADER_STRUCT.size
    try:
        header = json.loads(data[offset : offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"corrupt checkpoint header: {exc}") from exc
    offset += header_len
    state: dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        name = entry["name"]
        dtype = np.dtype(entry["dtype"])
        if not (np.issubdtype(dtype, np.number) or dtype == np.bool_):
            raise SerializationError(
                f"checkpoint array {name!r} declares non-numeric dtype {dtype!s}"
            )
        shape = tuple(int(dim) for dim in entry["shape"])
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        chunk = data[offset : offset + nbytes]
        if len(chunk) != nbytes:
            raise SerializationError(
                f"truncated checkpoint: array {name!r} needs {nbytes} bytes, "
                f"only {len(chunk)} remain"
            )
        state[name] = np.frombuffer(chunk, dtype=dtype).reshape(shape).copy()
        offset += nbytes
    if offset != len(data):
        raise SerializationError(
            f"corrupt checkpoint: {len(data) - offset} trailing bytes after "
            f"the declared arrays"
        )
    return state


def _resolve_read_path(path: Path) -> Path:
    if not path.exists() and path.with_suffix(".npz").exists():
        return path.with_suffix(".npz")
    return path


def validate_state_for(module: Module, state: dict[str, np.ndarray],
                       context: str = "checkpoint") -> None:
    """Check ``state`` against ``module`` before loading; raise clearly.

    Reports *all* missing/unexpected keys and every per-key shape
    mismatch in one :class:`SerializationError`, rather than failing on
    the first.
    """
    own = dict(module.named_parameters())
    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    problems = []
    if missing:
        problems.append(f"missing keys: {missing}")
    if unexpected:
        problems.append(f"unexpected keys: {unexpected}")
    for name, param in own.items():
        if name not in state:
            continue
        value = np.asarray(state[name])
        if param.data.shape != value.shape:
            problems.append(
                f"shape mismatch for {name!r}: model {param.data.shape}, "
                f"{context} {value.shape}"
            )
    if problems:
        raise SerializationError(
            f"{context} does not match {type(module).__name__}: "
            + "; ".join(problems)
        )


def save_module(module: Module, path: str | Path) -> Path:
    """Persist ``module.state_dict()`` to ``path`` (``.npz`` appended if absent).

    The write is atomic (temp file + rename), so a crash mid-save never
    leaves a truncated checkpoint at the final path.
    """
    from repro.store.io import atomic_write_bytes

    path = Path(path)
    if not path.suffix:
        path = path.with_suffix(".npz")
    return atomic_write_bytes(path, state_to_bytes(module.state_dict()))


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` (strict).

    Raises :class:`SerializationError` on a corrupt/newer container or a
    state dict that does not match the module's parameters.
    """
    path = _resolve_read_path(Path(path))
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise SerializationError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        state = state_from_bytes(data)
    except SerializationError as exc:
        raise SerializationError(f"{path}: {exc}") from exc
    validate_state_for(module, state, context=f"checkpoint {path.name}")
    module.load_state_dict(state)
    return module
