"""Save/load module parameters as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module


def save_module(module: Module, path: str | Path) -> None:
    """Persist ``module.state_dict()`` to ``path`` (``.npz`` appended if absent)."""
    path = Path(path)
    state = module.state_dict()
    np.savez(path, **state)


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` (strict)."""
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
    return module
