"""A small reverse-mode automatic-differentiation engine on numpy.

This module replaces PyTorch for the reproduction. Its distinguishing
feature is that every operation's backward rule is itself written with
:class:`Tensor` operations, so calling ``backward(create_graph=True)``
produces gradients that are differentiable graph nodes. PACE's bivariate
poisoning objective (Eq. 10 of the paper) differentiates through the CE
model's gradient-descent update, which requires exactly this second-order
capability.

Every primitive carries *two* backward rules that compute the same values:

* ``_grad_fn`` — the taped rule built from :class:`Tensor` ops, used when
  ``create_graph=True`` so gradients are themselves differentiable;
* ``_grad_fn_data`` — the same arithmetic on raw ndarrays, used for
  first-order backprop. This avoids allocating (and immediately
  detaching) hundreds of thousands of graph nodes per training step.

Only the operations the library needs are implemented; each is covered by
numeric gradient checks in ``tests/nn/test_tensor.py``, and the two rule
sets are checked bit-for-bit against each other there as well.
"""

from __future__ import annotations

import contextlib
import os
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.perf.registry import PERF

_GRAD_ENABLED = True  # safe: R015 per-process autograd mode, flipped only around single-threaded eval blocks

#: Graph tracer installed by :mod:`repro.nn.compile` while it records one
#: call of a compiled function. ``None`` in normal execution, so every op
#: pays a single attribute test. The tracer itself ignores ops from other
#: threads, and installation happens only under the compiler's trace lock.
_TRACER = None

#: Graph-sanitizer switch. When on, every op checks its forward value and
#: every backward rule checks the gradients it emits for NaN/Inf, and the
#: first non-finite value raises :class:`SanitizeError` naming the op that
#: produced it. Off by default: each check scans the output array, which
#: costs real time in training loops. Enable per-run with REPRO_SANITIZE=1
#: or per-block with :func:`sanitize`.
_SANITIZE = os.environ.get("REPRO_SANITIZE", "").strip() not in ("", "0")

#: Provenance labels (model / trainer entry points) active in this thread;
#: :class:`SanitizeError` reports them so a NaN deep in an unrolled update
#: still says which layer of which phase produced it.
_SCOPE_STACK: list[str] = []  # safe: R015 push/pop stays FILO within one thread; every process keeps its own stack

_SANITIZE_CHECKS = 0  # safe: R015 best-effort per-process diagnostic counter; an off-by-one loses nothing


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the block (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


class SanitizeError(RuntimeError):
    """A non-finite value surfaced while the graph sanitizer was active.

    Attributes:
        op: name of the tape operation where the value was detected.
        phase: ``"forward"`` or ``"backward"``.
        shapes: shapes of the op's inputs.
        context: ``" > "``-joined :func:`sanitize_scope` labels active at
            the detection site (layer / trainer provenance).
    """

    def __init__(
        self,
        op: str,
        phase: str,
        kinds: str,
        shape: tuple[int, ...],
        input_shapes: Sequence[tuple[int, ...]],
        scopes: Sequence[str],
        tainted_input: bool,
    ) -> None:
        self.op = op
        self.phase = phase
        self.shapes = tuple(input_shapes)
        self.context = " > ".join(scopes) if scopes else "<no scope>"
        blame = (
            "consumed an already non-finite input"
            if tainted_input
            else "produced non-finite values"
        )
        super().__init__(
            f"sanitize: op {op!r} {blame} ({kinds}) during {phase} "
            f"(output shape {shape}, input shapes {list(self.shapes)}) "
            f"in {self.context}"
        )


@contextlib.contextmanager
def sanitize(enabled: bool = True):
    """Enable (or force off) NaN/Inf checking for every op in the block."""
    global _SANITIZE
    previous = _SANITIZE
    _SANITIZE = bool(enabled)
    try:
        yield
    finally:
        _SANITIZE = previous


@contextlib.contextmanager
def sanitize_scope(label: str):
    """Attach a provenance label to sanitizer reports inside the block.

    No-op when sanitizing is off, so call sites (layers, trainers) can wrap
    unconditionally without paying for the bookkeeping in normal runs.
    """
    if not _SANITIZE:
        yield
        return
    _SCOPE_STACK.append(label)
    try:
        yield
    finally:
        _SCOPE_STACK.pop()


def is_sanitize_enabled() -> bool:
    return _SANITIZE


def sanitize_check_count() -> int:
    """Number of value/gradient checks performed since import (diagnostics)."""
    return _SANITIZE_CHECKS


def _nonfinite_kinds(arr: np.ndarray) -> str:
    has_nan = bool(np.isnan(arr).any())
    has_inf = bool(np.isinf(arr).any())
    return "+".join(k for k, present in (("nan", has_nan), ("inf", has_inf)) if present)


def _sanitize_forward(out: "Tensor", op: str, parents: tuple) -> None:
    """Record provenance on ``out`` and fail fast if it is non-finite."""
    global _SANITIZE_CHECKS
    out._op = op
    _SANITIZE_CHECKS += 1
    data = out.data
    if np.isfinite(data).all():
        return
    tensor_parents = [p for p in parents if isinstance(p, Tensor)]
    tainted = any(not np.isfinite(p.data).all() for p in tensor_parents)
    raise SanitizeError(
        op,
        "forward",
        _nonfinite_kinds(data),
        data.shape,
        [p.data.shape for p in tensor_parents],
        list(_SCOPE_STACK),
        tainted,
    )


def _sanitize_backward(node: "Tensor", parent_grads: Sequence) -> None:
    """Check every gradient a backward rule emits for ``node``."""
    global _SANITIZE_CHECKS
    for pgrad in parent_grads:
        if pgrad is None:
            continue
        arr = pgrad.data if isinstance(pgrad, Tensor) else pgrad
        _SANITIZE_CHECKS += 1
        if not np.isfinite(arr).all():
            raise SanitizeError(
                _node_op(node),
                "backward",
                _nonfinite_kinds(arr),
                arr.shape,
                [p.data.shape for p in node._parents],
                list(_SCOPE_STACK),
                False,
            )


def _node_op(node: "Tensor") -> str:
    """Best-effort op name for a graph node.

    Nodes built while sanitizing carry ``_op`` directly; for nodes built
    before :func:`sanitize` was entered, fall back to parsing the backward
    closure's qualname (``Tensor.__add__.<locals>.<lambda>`` -> ``add``).
    """
    if node._op is not None:
        return node._op
    fn = node._grad_fn or node._grad_fn_data
    if fn is None:
        return "<leaf>"
    qual = getattr(fn, "__qualname__", "")
    head = qual.split(".<locals>")[0]
    name = head.rsplit(".", 1)[-1] if head else ""
    return name.strip("_") or "<unknown>"


class Tensor:
    """A numpy array with an autograd tape.

    Attributes:
        data: the underlying ``float64`` ndarray.
        grad: accumulated gradient (a :class:`Tensor`) after ``backward``.
        requires_grad: whether gradients should flow to this tensor.
    """

    __slots__ = (
        "data", "grad", "requires_grad", "_parents", "_grad_fn", "_grad_fn_data", "_op",
    )

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Tensor | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: tuple[Tensor, ...] = ()
        self._grad_fn: Callable[[Tensor], tuple[Tensor | None, ...]] | None = None
        self._grad_fn_data: Callable[[np.ndarray], tuple[np.ndarray | None, ...]] | None = None
        self._op: str | None = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(
        shape, rng: np.random.Generator, scale: float = 1.0, requires_grad: bool = False
    ) -> "Tensor":
        return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """A copy of the underlying data (safe to mutate)."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return _wrap(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: tuple["Tensor", ...], grad_fn) -> "Tensor":
        """Legacy taped-child helper (kept for external callers/tests)."""
        out = _wrap(np.asarray(data, dtype=np.float64))
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._grad_fn = grad_fn
        if _TRACER is not None:
            _TRACER.unsupported("legacy _make_child node")
        if _SANITIZE:
            _sanitize_forward(out, "child", parents)
        return out

    def backward(self, grad: "Tensor | None" = None, create_graph: bool = False) -> None:
        """Backpropagate from this tensor, accumulating into leaf ``.grad``.

        Args:
            grad: upstream gradient; defaults to ones (scalar outputs only
                get the conventional seed of 1.0).
            create_graph: keep the gradient computation on the tape so the
                resulting ``.grad`` tensors can themselves be differentiated.
        """
        if _TRACER is not None:
            # ``.grad`` mutation is side state a replayed plan cannot
            # reproduce; traced functions must use :func:`grad` instead.
            _TRACER.unsupported("Tensor.backward inside a traced function")
        captured = _backward_pass(self, grad, create_graph)
        for leaf, contribution in captured.values():
            leaf.grad = contribution if leaf.grad is None else leaf.grad + contribution

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = _wrap(self.data + other.data)
        if _GRAD_ENABLED and (self.requires_grad or other.requires_grad):
            s_shape, o_shape = self.data.shape, other.data.shape
            out.requires_grad = True
            out._parents = (self, other)
            out._grad_fn = lambda g: (_unbroadcast(g, s_shape), _unbroadcast(g, o_shape))
            out._grad_fn_data = lambda g: (
                _unbroadcast_data(g, s_shape),
                _unbroadcast_data(g, o_shape),
            )
        if _TRACER is not None:
            _TRACER.op(out, "add", (self, other))
        if _SANITIZE:
            _sanitize_forward(out, "add", (self, other))
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = _wrap(-self.data)
        if _GRAD_ENABLED and self.requires_grad:
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (-g,)
            out._grad_fn_data = lambda g: (-g,)
        if _TRACER is not None:
            _TRACER.op(out, "neg", (self,))
        if _SANITIZE:
            _sanitize_forward(out, "neg", (self,))
        return out

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = _wrap(self.data - other.data)
        if _GRAD_ENABLED and (self.requires_grad or other.requires_grad):
            s_shape, o_shape = self.data.shape, other.data.shape
            out.requires_grad = True
            out._parents = (self, other)
            out._grad_fn = lambda g: (_unbroadcast(g, s_shape), _unbroadcast(-g, o_shape))
            out._grad_fn_data = lambda g: (
                _unbroadcast_data(g, s_shape),
                _unbroadcast_data(-g, o_shape),
            )
        if _TRACER is not None:
            _TRACER.op(out, "sub", (self, other))
        if _SANITIZE:
            _sanitize_forward(out, "sub", (self, other))
        return out

    def __rsub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return other.__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = _wrap(self.data * other.data)
        if _GRAD_ENABLED and (self.requires_grad or other.requires_grad):
            s_shape, o_shape = self.data.shape, other.data.shape
            out.requires_grad = True
            out._parents = (self, other)
            out._grad_fn = lambda g: (
                _unbroadcast(g * other, s_shape),
                _unbroadcast(g * self, o_shape),
            )
            out._grad_fn_data = lambda g: (
                _unbroadcast_data(g * other.data, s_shape),
                _unbroadcast_data(g * self.data, o_shape),
            )
        if _TRACER is not None:
            _TRACER.op(out, "mul", (self, other))
        if _SANITIZE:
            _sanitize_forward(out, "mul", (self, other))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _as_tensor(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return _as_tensor(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp(b * log(a))")
        exponent = float(exponent)
        out = _wrap(np.power(self.data, exponent))
        if _GRAD_ENABLED and self.requires_grad:
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (g * (self ** (exponent - 1.0)) * exponent,)
            out._grad_fn_data = lambda g: (
                g * np.power(self.data, exponent - 1.0) * exponent,
            )
        if _TRACER is not None:
            _TRACER.op(out, "pow", (self,), exponent=exponent)
        if _SANITIZE:
            _sanitize_forward(out, "pow", (self,))
        return out

    def __matmul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = _wrap(self.data @ other.data)
        if _GRAD_ENABLED and (self.requires_grad or other.requires_grad):
            out.requires_grad = True
            out._parents = (self, other)
            out._grad_fn = lambda g: (g @ other.transpose(), self.transpose() @ g)
            out._grad_fn_data = lambda g: (
                g @ other.data.transpose(),
                self.data.transpose() @ g,
            )
        if _TRACER is not None:
            _TRACER.op(out, "matmul", (self, other))
        if _SANITIZE:
            _sanitize_forward(out, "matmul", (self, other))
        return out

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = _wrap(np.exp(self.data))
        if _GRAD_ENABLED and self.requires_grad:
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (g * out,)
            out._grad_fn_data = lambda g: (g * out.data,)
        if _TRACER is not None:
            _TRACER.op(out, "exp", (self,))
        if _SANITIZE:
            _sanitize_forward(out, "exp", (self,))
        return out

    def log(self) -> "Tensor":
        out = _wrap(np.log(self.data))
        if _GRAD_ENABLED and self.requires_grad:
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (g / self,)
            # Mirror the taped rule exactly: g * self ** -1.0 (two roundings).
            out._grad_fn_data = lambda g: (g * np.power(self.data, -1.0),)
        if _TRACER is not None:
            _TRACER.op(out, "log", (self,))
        if _SANITIZE:
            _sanitize_forward(out, "log", (self,))
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        out = _wrap(np.abs(self.data))
        if _GRAD_ENABLED and self.requires_grad:
            sign = np.sign(self.data)
            sign_t = _wrap(sign)
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (g * sign_t,)
            out._grad_fn_data = lambda g: (g * sign,)
            if _TRACER is not None:
                _TRACER.helper(sign_t, "sign", (self,))
        if _TRACER is not None:
            _TRACER.op(out, "abs", (self,))
        if _SANITIZE:
            _sanitize_forward(out, "abs", (self,))
        return out

    def tanh(self) -> "Tensor":
        out = _wrap(np.tanh(self.data))
        if _GRAD_ENABLED and self.requires_grad:
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (g * (1.0 - out * out),)
            out._grad_fn_data = lambda g: (g * (1.0 - out.data * out.data),)
        if _TRACER is not None:
            _TRACER.op(out, "tanh", (self,))
        if _SANITIZE:
            _sanitize_forward(out, "tanh", (self,))
        return out

    def sigmoid(self) -> "Tensor":
        out = _wrap(1.0 / (1.0 + np.exp(-self.data)))
        if _GRAD_ENABLED and self.requires_grad:
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (g * out * (1.0 - out),)
            out._grad_fn_data = lambda g: (g * out.data * (1.0 - out.data),)
        if _TRACER is not None:
            _TRACER.op(out, "sigmoid", (self,))
        if _SANITIZE:
            _sanitize_forward(out, "sigmoid", (self,))
        return out

    def relu(self) -> "Tensor":
        out = _wrap(np.maximum(self.data, 0.0))
        if _GRAD_ENABLED and self.requires_grad:
            mask = (self.data > 0).astype(np.float64)
            mask_t = _wrap(mask)
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (g * mask_t,)
            out._grad_fn_data = lambda g: (g * mask,)
            if _TRACER is not None:
                _TRACER.helper(mask_t, "gt_zero_mask", (self,))
        if _TRACER is not None:
            _TRACER.op(out, "relu", (self,))
        if _SANITIZE:
            _sanitize_forward(out, "relu", (self,))
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient passes only where values are inside range."""
        out = _wrap(np.clip(self.data, low, high))
        if _GRAD_ENABLED and self.requires_grad:
            mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)
            mask_t = _wrap(mask)
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (g * mask_t,)
            out._grad_fn_data = lambda g: (g * mask,)
            if _TRACER is not None:
                _TRACER.helper(mask_t, "range_mask", (self,), low=low, high=high)
        if _TRACER is not None:
            _TRACER.op(out, "clip", (self,), low=low, high=high)
        if _SANITIZE:
            _sanitize_forward(out, "clip", (self,))
        return out

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out = _wrap(self.data.sum(axis=axis, keepdims=keepdims))
        if _GRAD_ENABLED and self.requires_grad:
            in_shape = self.data.shape
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                kept = list(in_shape)
                for ax in sorted(a % len(in_shape) for a in axes):
                    kept[ax] = 1
                kept_shape: tuple[int, ...] | None = tuple(kept)
            else:
                kept_shape = None

            def grad_fn(g: Tensor) -> tuple[Tensor]:
                if kept_shape is not None:
                    g = g.reshape(kept_shape)
                return (g.broadcast_to(in_shape),)

            def grad_fn_data(g: np.ndarray) -> tuple[np.ndarray]:
                if kept_shape is not None:
                    g = g.reshape(kept_shape)
                return (np.broadcast_to(g, in_shape).copy(),)

            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = grad_fn
            out._grad_fn_data = grad_fn_data
        if _TRACER is not None:
            _TRACER.op(out, "sum", (self,), axis=axis, keepdims=keepdims)
        if _SANITIZE:
            _sanitize_forward(out, "sum", (self,))
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max_reduce(self) -> "Tensor":
        """Global maximum; gradient flows to (one of) the argmax entries."""
        out = _wrap(np.asarray(self.data.max()))
        if _GRAD_ENABLED and self.requires_grad:
            flat_idx = int(np.argmax(self.data))
            mask = np.zeros_like(self.data)
            mask.reshape(-1)[flat_idx] = 1.0
            mask_t = _wrap(mask)
            in_shape = self.data.shape
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: ((g * mask_t).broadcast_to(in_shape),)
            out._grad_fn_data = lambda g: (np.broadcast_to(g * mask, in_shape).copy(),)
            if _TRACER is not None:
                _TRACER.helper(mask_t, "argmax_mask", (self,))
        if _TRACER is not None:
            _TRACER.op(out, "max_reduce", (self,))
        if _SANITIZE:
            _sanitize_forward(out, "max_reduce", (self,))
        return out

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, shape: tuple[int, ...]) -> "Tensor":
        out = _wrap(self.data.reshape(shape))
        if _GRAD_ENABLED and self.requires_grad:
            original = self.data.shape
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (g.reshape(original),)
            out._grad_fn_data = lambda g: (g.reshape(original),)
        if _TRACER is not None:
            _TRACER.op(out, "reshape", (self,), shape=shape)
        if _SANITIZE:
            _sanitize_forward(out, "reshape", (self,))
        return out

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        if axes is None:
            inverse = None
        else:
            inverse = tuple(int(i) for i in np.argsort(axes))
        out = _wrap(self.data.transpose(axes))
        if _GRAD_ENABLED and self.requires_grad:
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (g.transpose(inverse),)
            out._grad_fn_data = lambda g: (g.transpose(inverse),)
        if _TRACER is not None:
            _TRACER.op(out, "transpose", (self,), axes=axes)
        if _SANITIZE:
            _sanitize_forward(out, "transpose", (self,))
        return out

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-compatible alias
        return self.transpose()

    def broadcast_to(self, shape: tuple[int, ...]) -> "Tensor":
        out = _wrap(np.broadcast_to(self.data, shape).copy())
        if _GRAD_ENABLED and self.requires_grad:
            original = self.data.shape
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (_unbroadcast(g, original),)
            out._grad_fn_data = lambda g: (_unbroadcast_data(g, original),)
        if _TRACER is not None:
            _TRACER.op(out, "broadcast_to", (self,), shape=shape)
        if _SANITIZE:
            _sanitize_forward(out, "broadcast_to", (self,))
        return out

    def __getitem__(self, index) -> "Tensor":
        out = _wrap(np.array(self.data[index], copy=True))
        if _GRAD_ENABLED and self.requires_grad:
            in_shape = self.data.shape
            out.requires_grad = True
            out._parents = (self,)
            out._grad_fn = lambda g: (_scatter(g, index, in_shape),)
            out._grad_fn_data = lambda g: (_scatter_data(g, index, in_shape),)
        if _TRACER is not None:
            _TRACER.op(out, "getitem", (self,), index=index)
        if _SANITIZE:
            _sanitize_forward(out, "getitem", (self,))
        return out


def affine(x, weight, bias=None, activation: str | None = None) -> Tensor:
    """Fused ``activation(x @ weight + bias)`` as a single graph node.

    The fusion collapses what would otherwise be three or four taped nodes
    (matmul, broadcast add, activation) into one, which profiling shows is
    the dominant allocation site in training and unrolled-update loops.
    Numerics are identical to the unfused composition; ``activation`` is one
    of ``None``, ``"relu"``, ``"sigmoid"``, ``"tanh"``.
    """
    x = _as_tensor(x)
    weight = _as_tensor(weight)
    z = x.data @ weight.data
    if bias is not None:
        bias = _as_tensor(bias)
        z = z + bias.data
    if activation is None:
        out_data = z
    elif activation == "relu":
        out_data = np.maximum(z, 0.0)
    elif activation == "sigmoid":
        out_data = 1.0 / (1.0 + np.exp(-z))
    elif activation == "tanh":
        out_data = np.tanh(z)
    else:
        raise ValueError(f"unsupported affine activation: {activation!r}")

    out = _wrap(out_data)
    parents = (x, weight) if bias is None else (x, weight, bias)
    if _GRAD_ENABLED and any(p.requires_grad for p in parents):
        bias_shape = None if bias is None else bias.data.shape
        if activation == "relu":
            relu_mask = (z > 0).astype(np.float64)
            relu_mask_t = _wrap(relu_mask)

        def grad_fn(g: Tensor) -> tuple[Tensor | None, ...]:
            if activation == "relu":
                gz = g * relu_mask_t
            elif activation == "sigmoid":
                gz = g * out * (1.0 - out)
            elif activation == "tanh":
                gz = g * (1.0 - out * out)
            else:
                gz = g
            gx = gz @ weight.transpose()
            gw = x.transpose() @ gz
            if bias is None:
                return (gx, gw)
            return (gx, gw, _unbroadcast(gz, bias_shape))

        def grad_fn_data(g: np.ndarray) -> tuple[np.ndarray | None, ...]:
            if activation == "relu":
                gz = g * relu_mask
            elif activation == "sigmoid":
                gz = g * out_data * (1.0 - out_data)
            elif activation == "tanh":
                gz = g * (1.0 - out_data * out_data)
            else:
                gz = g
            gx = gz @ weight.data.transpose()
            gw = x.data.transpose() @ gz
            if bias is None:
                return (gx, gw)
            return (gx, gw, _unbroadcast_data(gz, bias_shape))

        out.requires_grad = True
        out._parents = parents
        out._grad_fn = grad_fn
        out._grad_fn_data = grad_fn_data
    if _TRACER is not None:
        _TRACER.op(out, "affine", parents, activation=activation, has_bias=bias is not None)
        if activation == "relu" and out.requires_grad:
            # (z > 0) and (out > 0) agree bitwise for relu, so the mask is
            # derivable from the recorded output buffer. Recorded after the
            # affine op itself so its parent is already bound.
            _TRACER.helper(relu_mask_t, "gt_zero_mask", (out,))
    if _SANITIZE:
        _sanitize_forward(out, "affine", parents)
    return out


def _wrap(data: np.ndarray) -> Tensor:
    """Fast constructor for a detached tensor around an existing ndarray."""
    out = Tensor.__new__(Tensor)
    out.data = data
    out.grad = None
    out.requires_grad = False
    out._parents = ()
    out._grad_fn = None
    out._grad_fn_data = None
    out._op = None
    return out


def _backward_pass(
    output: Tensor,
    seed: Tensor | None,
    create_graph: bool,
    watched: set[int] | None = None,
) -> dict[int, tuple[Tensor, Tensor]]:
    """Run reverse-mode accumulation from ``output``.

    Returns a mapping ``id(t) -> (t, gradient)`` covering every leaf tensor
    (``requires_grad`` and no ``_grad_fn``) plus any tensor whose id is in
    ``watched`` — the latter lets callers take gradients with respect to
    intermediate graph nodes, which PACE's unrolled inner update needs.
    Does not mutate any tensor, which keeps :func:`grad` side-effect free.

    With ``create_graph=False`` the pass runs entirely on raw ndarrays via
    each node's ``_grad_fn_data`` rule; with ``create_graph=True`` it uses
    the taped ``_grad_fn`` rules so the returned gradients are themselves
    graph nodes.
    """
    if not output.requires_grad:
        raise RuntimeError("backward() called on a tensor that does not require grad")
    if seed is None and output.data.size != 1:
        raise RuntimeError("backward() without a gradient requires a scalar output")
    if _TRACER is not None and not create_graph and _TRACER.tracing_here():
        # Inside a trace, first-order gradients must run through the taped
        # rules so the recorded graph captures the backward computation.
        # The two rule sets agree bit-for-bit (see module docstring), so
        # this does not change any value the traced function observes.
        create_graph = True

    topo: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(output, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in visited:
                stack.append((parent, False))

    if PERF.enabled:
        PERF.incr("nn.backward_passes")
        PERF.incr("nn.backward_nodes", len(topo))

    captured: dict[int, tuple[Tensor, Tensor]] = {}
    if create_graph:
        seed_t = Tensor(np.ones_like(output.data)) if seed is None else seed
        grads: dict[int, Tensor] = {id(output): seed_t}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            is_leaf = node._grad_fn is None
            if is_leaf or (watched is not None and id(node) in watched):
                captured[id(node)] = (node, node_grad)
            if is_leaf:
                continue
            parent_grads = node._grad_fn(node_grad)
            if _SANITIZE:
                _sanitize_backward(node, parent_grads)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                existing = grads.get(id(parent))
                grads[id(parent)] = pgrad if existing is None else existing + pgrad
        return captured

    seed_data = np.ones_like(output.data) if seed is None else seed.data
    data_grads: dict[int, np.ndarray] = {id(output): seed_data}
    for node in reversed(topo):
        node_grad = data_grads.pop(id(node), None)
        if node_grad is None:
            continue
        is_leaf = node._grad_fn is None
        if is_leaf or (watched is not None and id(node) in watched):
            captured[id(node)] = (node, _wrap(node_grad))
        if is_leaf:
            continue
        rule = node._grad_fn_data
        if rule is not None:
            parent_grads = rule(node_grad)
        else:
            # Fallback for externally-built nodes that only carry a taped
            # rule (e.g. via the legacy ``_make_child`` helper).
            with no_grad():
                taped = node._grad_fn(_wrap(node_grad))
            parent_grads = tuple(g.data if g is not None else None for g in taped)
        if _SANITIZE:
            _sanitize_backward(node, parent_grads)
        for parent, pgrad in zip(node._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            existing = data_grads.get(id(parent))
            data_grads[id(parent)] = pgrad if existing is None else existing + pgrad
    return captured


def _install_tracer(tracer) -> None:
    """Install (or clear, with ``None``) the compile-time graph tracer.

    Called only by :mod:`repro.nn.compile` under its trace lock.
    """
    global _TRACER
    _TRACER = tracer


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _unbroadcast(grad: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reduce ``grad`` back down to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        grad = grad.reshape(shape)
    return grad


def _unbroadcast_data(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Raw-ndarray twin of :func:`_unbroadcast` (same reductions, same order)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        grad = grad.reshape(shape)
    return grad


def _scatter(grad: Tensor, index, shape: tuple[int, ...]) -> Tensor:
    data = np.zeros(shape)
    np.add.at(data, index, grad.data)
    out = _wrap(data)
    if grad.requires_grad and _GRAD_ENABLED:
        out.requires_grad = True
        out._parents = (grad,)
        out._grad_fn = lambda g: (g[index],)
        out._grad_fn_data = lambda g: (np.array(g[index], copy=True),)
    if _TRACER is not None:
        _TRACER.op(out, "scatter", (grad,), index=index, shape=shape)
    if _SANITIZE:
        _sanitize_forward(out, "scatter", (grad,))
    return out


def _scatter_data(grad: np.ndarray, index, shape: tuple[int, ...]) -> np.ndarray:
    data = np.zeros(shape)
    np.add.at(data, index, grad)
    return data


# ----------------------------------------------------------------------
# free functions
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [_as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = _wrap(data)
    if _GRAD_ENABLED and any(t.requires_grad for t in tensors):
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        spans = [(int(start), int(stop)) for start, stop in zip(offsets[:-1], offsets[1:])]

        def grad_fn(g: Tensor) -> tuple[Tensor, ...]:
            pieces = []
            for start, stop in spans:
                index = [slice(None)] * g.ndim
                index[axis] = slice(start, stop)
                pieces.append(g[tuple(index)])
            return tuple(pieces)

        def grad_fn_data(g: np.ndarray) -> tuple[np.ndarray, ...]:
            pieces = []
            for start, stop in spans:
                index = [slice(None)] * g.ndim
                index[axis] = slice(start, stop)
                pieces.append(np.array(g[tuple(index)], copy=True))
            return tuple(pieces)

        out.requires_grad = True
        out._parents = tuple(tensors)
        out._grad_fn = grad_fn
        out._grad_fn_data = grad_fn_data
    if _TRACER is not None:
        _TRACER.op(out, "concat", tuple(tensors), axis=axis)
    if _SANITIZE:
        _sanitize_forward(out, "concat", tuple(tensors))
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    expanded = []
    for t in tensors:
        t = _as_tensor(t)
        new_shape = list(t.shape)
        new_shape.insert(axis if axis >= 0 else t.ndim + 1 + axis, 1)
        expanded.append(t.reshape(tuple(new_shape)))
    return concat(expanded, axis=axis)


def maximum(a: Tensor, b) -> Tensor:
    """Elementwise maximum; ties send the gradient to ``a``."""
    a = _as_tensor(a)
    b = _as_tensor(b)
    out = _wrap(np.maximum(a.data, b.data))
    if _GRAD_ENABLED and (a.requires_grad or b.requires_grad):
        take_a = (a.data >= b.data).astype(np.float64)
        take_b = (a.data < b.data).astype(np.float64)
        take_a_t = _wrap(take_a)
        take_b_t = _wrap(take_b)
        a_shape, b_shape = a.data.shape, b.data.shape
        out.requires_grad = True
        out._parents = (a, b)
        out._grad_fn = lambda g: (
            _unbroadcast(g * take_a_t, a_shape),
            _unbroadcast(g * take_b_t, b_shape),
        )
        out._grad_fn_data = lambda g: (
            _unbroadcast_data(g * take_a, a_shape),
            _unbroadcast_data(g * take_b, b_shape),
        )
        if _TRACER is not None:
            _TRACER.helper(take_a_t, "ge_mask", (a, b))
            _TRACER.helper(take_b_t, "lt_mask", (a, b))
    if _TRACER is not None:
        _TRACER.op(out, "maximum", (a, b))
    if _SANITIZE:
        _sanitize_forward(out, "maximum", (a, b))
    return out


def minimum(a: Tensor, b) -> Tensor:
    """Elementwise minimum; ties send the gradient to ``a``."""
    return -maximum(-_as_tensor(a), -_as_tensor(b))


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select ``a`` where ``condition`` else ``b``; condition is constant."""
    mask = Tensor(np.asarray(condition, dtype=np.float64))
    return _as_tensor(a) * mask + _as_tensor(b) * (1.0 - mask)


def grad(
    output: Tensor,
    inputs: Iterable[Tensor],
    create_graph: bool = False,
) -> list[Tensor]:
    """Functional gradient: d(output)/d(each input), without touching ``.grad``.

    Mirrors ``torch.autograd.grad``: no tensor's ``.grad`` attribute is
    modified, so this is safe to call in the middle of a training loop
    (PACE's inner update uses it with ``create_graph=True``).
    """
    inputs = list(inputs)
    watched = {id(t) for t in inputs}
    captured = _backward_pass(output, None, create_graph, watched=watched)
    results = []
    for t in inputs:
        entry = captured.get(id(t))
        results.append(entry[1] if entry is not None else Tensor(np.zeros_like(t.data)))
    return results
