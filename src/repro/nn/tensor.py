"""A small reverse-mode automatic-differentiation engine on numpy.

This module replaces PyTorch for the reproduction. Its distinguishing
feature is that every operation's backward rule is itself written with
:class:`Tensor` operations, so calling ``backward(create_graph=True)``
produces gradients that are differentiable graph nodes. PACE's bivariate
poisoning objective (Eq. 10 of the paper) differentiates through the CE
model's gradient-descent update, which requires exactly this second-order
capability.

Only the operations the library needs are implemented; each is covered by
numeric gradient checks in ``tests/nn/test_tensor.py``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the block (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


class Tensor:
    """A numpy array with an autograd tape.

    Attributes:
        data: the underlying ``float64`` ndarray.
        grad: accumulated gradient (a :class:`Tensor`) after ``backward``.
        requires_grad: whether gradients should flow to this tensor.
    """

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Tensor | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: tuple[Tensor, ...] = ()
        self._grad_fn: Callable[[Tensor], tuple[Tensor | None, ...]] | None = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(
        shape, rng: np.random.Generator, scale: float = 1.0, requires_grad: bool = False
    ) -> "Tensor":
        return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{flag})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """A copy of the underlying data (safe to mutate)."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # graph plumbing
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: tuple["Tensor", ...], grad_fn) -> "Tensor":
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._grad_fn = grad_fn
        return out

    def backward(self, grad: "Tensor | None" = None, create_graph: bool = False) -> None:
        """Backpropagate from this tensor, accumulating into leaf ``.grad``.

        Args:
            grad: upstream gradient; defaults to ones (scalar outputs only
                get the conventional seed of 1.0).
            create_graph: keep the gradient computation on the tape so the
                resulting ``.grad`` tensors can themselves be differentiated.
        """
        captured = _backward_pass(self, grad, create_graph)
        for leaf, contribution in captured.values():
            leaf.grad = contribution if leaf.grad is None else leaf.grad + contribution

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out = self._make_child(
            self.data + other.data,
            (self, other),
            lambda g: (_unbroadcast(g, self.shape), _unbroadcast(g, other.shape)),
        )
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self._make_child(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return _as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        return self._make_child(
            self.data * other.data,
            (self, other),
            lambda g: (
                _unbroadcast(g * other, self.shape),
                _unbroadcast(g * self, other.shape),
            ),
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _as_tensor(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return _as_tensor(other) * self ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp(b * log(a))")
        exponent = float(exponent)
        return self._make_child(
            np.power(self.data, exponent),
            (self,),
            lambda g: (g * (self ** (exponent - 1.0)) * exponent,),
        )

    def __matmul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        return self._make_child(
            self.data @ other.data,
            (self, other),
            lambda g: (g @ other.transpose(), self.transpose() @ g),
        )

    # ------------------------------------------------------------------
    # elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = self._make_child(np.exp(self.data), (self,), None)
        out._grad_fn = lambda g: (g * out,)
        return out

    def log(self) -> "Tensor":
        return self._make_child(np.log(self.data), (self,), lambda g: (g / self,))

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        sign = Tensor(np.sign(self.data))
        return self._make_child(np.abs(self.data), (self,), lambda g: (g * sign,))

    def tanh(self) -> "Tensor":
        out = self._make_child(np.tanh(self.data), (self,), None)
        out._grad_fn = lambda g: (g * (1.0 - out * out),)
        return out

    def sigmoid(self) -> "Tensor":
        out = self._make_child(1.0 / (1.0 + np.exp(-self.data)), (self,), None)
        out._grad_fn = lambda g: (g * out * (1.0 - out),)
        return out

    def relu(self) -> "Tensor":
        mask = Tensor((self.data > 0).astype(np.float64))
        return self._make_child(np.maximum(self.data, 0.0), (self,), lambda g: (g * mask,))

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient passes only where values are inside range."""
        mask = Tensor(((self.data >= low) & (self.data <= high)).astype(np.float64))
        return self._make_child(np.clip(self.data, low, high), (self,), lambda g: (g * mask,))

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def grad_fn(g: Tensor) -> tuple[Tensor]:
            gdata = g
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                shape = list(self.shape)
                for ax in sorted(a % self.ndim for a in axes):
                    shape[ax] = 1
                gdata = g.reshape(tuple(shape))
            return (gdata.broadcast_to(self.shape),)

        return self._make_child(data, (self,), grad_fn)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max_reduce(self) -> "Tensor":
        """Global maximum; gradient flows to (one of) the argmax entries."""
        flat_idx = int(np.argmax(self.data))
        mask = np.zeros_like(self.data)
        mask.reshape(-1)[flat_idx] = 1.0
        mask_t = Tensor(mask)
        return self._make_child(
            np.asarray(self.data.max()), (self,), lambda g: ((g * mask_t).broadcast_to(self.shape),)
        )

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, shape: tuple[int, ...]) -> "Tensor":
        original = self.shape
        return self._make_child(
            self.data.reshape(shape), (self,), lambda g: (g.reshape(original),)
        )

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        if axes is None:
            inverse = None
        else:
            inverse = tuple(int(i) for i in np.argsort(axes))
        return self._make_child(
            self.data.transpose(axes), (self,), lambda g: (g.transpose(inverse),)
        )

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-compatible alias
        return self.transpose()

    def broadcast_to(self, shape: tuple[int, ...]) -> "Tensor":
        original = self.shape
        return self._make_child(
            np.broadcast_to(self.data, shape).copy(),
            (self,),
            lambda g: (_unbroadcast(g, original),),
        )

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def grad_fn(g: Tensor) -> tuple[Tensor]:
            return (_scatter(g, index, self.shape),)

        return self._make_child(np.array(data, copy=True), (self,), grad_fn)


def _backward_pass(
    output: Tensor,
    seed: Tensor | None,
    create_graph: bool,
    watched: set[int] | None = None,
) -> dict[int, tuple[Tensor, Tensor]]:
    """Run reverse-mode accumulation from ``output``.

    Returns a mapping ``id(t) -> (t, gradient)`` covering every leaf tensor
    (``requires_grad`` and no ``_grad_fn``) plus any tensor whose id is in
    ``watched`` — the latter lets callers take gradients with respect to
    intermediate graph nodes, which PACE's unrolled inner update needs.
    Does not mutate any tensor, which keeps :func:`grad` side-effect free.
    """
    if not output.requires_grad:
        raise RuntimeError("backward() called on a tensor that does not require grad")
    if seed is None:
        if output.data.size != 1:
            raise RuntimeError("backward() without a gradient requires a scalar output")
        seed = Tensor(np.ones_like(output.data))

    topo: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(output, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            topo.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in visited:
                stack.append((parent, False))

    grads: dict[int, Tensor] = {id(output): seed}
    captured: dict[int, tuple[Tensor, Tensor]] = {}
    for node in reversed(topo):
        node_grad = grads.pop(id(node), None)
        if node_grad is None:
            continue
        is_leaf = node._grad_fn is None
        if is_leaf or (watched is not None and id(node) in watched):
            captured[id(node)] = (node, node_grad if create_graph else node_grad.detach())
        if is_leaf:
            continue
        parent_grads = node._grad_fn(node_grad)
        if not create_graph:
            parent_grads = tuple(g.detach() if g is not None else None for g in parent_grads)
        for parent, pgrad in zip(node._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            existing = grads.get(id(parent))
            grads[id(parent)] = pgrad if existing is None else existing + pgrad
    return captured


def _as_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _unbroadcast(grad: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reduce ``grad`` back down to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    if grad.shape != shape:
        grad = grad.reshape(shape)
    return grad


def _scatter(grad: Tensor, index, shape: tuple[int, ...]) -> Tensor:
    data = np.zeros(shape)
    np.add.at(data, index, grad.data)
    out = Tensor(data)
    if grad.requires_grad and _GRAD_ENABLED:
        out.requires_grad = True
        out._parents = (grad,)
        out._grad_fn = lambda g: (g[index],)
    return out


# ----------------------------------------------------------------------
# free functions
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [_as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def grad_fn(g: Tensor) -> tuple[Tensor, ...]:
        pieces = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[axis] = slice(int(start), int(stop))
            pieces.append(g[tuple(index)])
        return tuple(pieces)

    out = Tensor(data)
    if _GRAD_ENABLED and any(t.requires_grad for t in tensors):
        out.requires_grad = True
        out._parents = tuple(tensors)
        out._grad_fn = grad_fn
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` (differentiable)."""
    expanded = []
    for t in tensors:
        t = _as_tensor(t)
        new_shape = list(t.shape)
        new_shape.insert(axis if axis >= 0 else t.ndim + 1 + axis, 1)
        expanded.append(t.reshape(tuple(new_shape)))
    return concat(expanded, axis=axis)


def maximum(a: Tensor, b) -> Tensor:
    """Elementwise maximum; ties send the gradient to ``a``."""
    a = _as_tensor(a)
    b = _as_tensor(b)
    take_a = Tensor((a.data >= b.data).astype(np.float64))
    take_b = Tensor((a.data < b.data).astype(np.float64))
    out_data = np.maximum(a.data, b.data)
    out = Tensor(out_data)
    if _GRAD_ENABLED and (a.requires_grad or b.requires_grad):
        out.requires_grad = True
        out._parents = (a, b)
        out._grad_fn = lambda g: (
            _unbroadcast(g * take_a, a.shape),
            _unbroadcast(g * take_b, b.shape),
        )
    return out


def minimum(a: Tensor, b) -> Tensor:
    """Elementwise minimum; ties send the gradient to ``a``."""
    return -maximum(-_as_tensor(a), -_as_tensor(b))


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select ``a`` where ``condition`` else ``b``; condition is constant."""
    mask = Tensor(np.asarray(condition, dtype=np.float64))
    return _as_tensor(a) * mask + _as_tensor(b) * (1.0 - mask)


def grad(
    output: Tensor,
    inputs: Iterable[Tensor],
    create_graph: bool = False,
) -> list[Tensor]:
    """Functional gradient: d(output)/d(each input), without touching ``.grad``.

    Mirrors ``torch.autograd.grad``: no tensor's ``.grad`` attribute is
    modified, so this is safe to call in the middle of a training loop
    (PACE's inner update uses it with ``create_graph=True``).
    """
    inputs = list(inputs)
    watched = {id(t) for t in inputs}
    captured = _backward_pass(output, None, create_graph, watched=watched)
    results = []
    for t in inputs:
        entry = captured.get(id(t))
        results.append(entry[1] if entry is not None else Tensor(np.zeros_like(t.data)))
    return results
