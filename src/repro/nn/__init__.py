"""A numpy autodiff/neural-network substrate (PyTorch replacement).

Supports second-order differentiation (``create_graph=True``), which the
PACE attack requires to differentiate through the CE model's update step.
"""

from repro.nn.module import Module, Parameter
from repro.nn.tensor import (
    SanitizeError,
    Tensor,
    affine,
    concat,
    grad,
    is_sanitize_enabled,
    maximum,
    minimum,
    no_grad,
    sanitize,
    sanitize_scope,
    stack,
    where,
)
from repro.nn.layers import Dropout, Linear, ReLU, Sequential, Sigmoid, Tanh, mlp
from repro.nn.recurrent import LSTM, RNN, LSTMCell, RNNCell, split_sequence
from repro.nn.optim import SGD, Adam, GradientClipper, Optimizer
from repro.nn.losses import (
    bce_loss,
    kl_standard_normal,
    log_q_error_loss,
    mse_loss,
    q_error,
    q_error_loss,
)
from repro.nn.serialization import (
    load_module,
    save_module,
    state_from_bytes,
    state_to_bytes,
    validate_state_for,
)

__all__ = [
    "Tensor",
    "Module",
    "Parameter",
    "affine",
    "concat",
    "stack",
    "grad",
    "maximum",
    "minimum",
    "where",
    "no_grad",
    "SanitizeError",
    "sanitize",
    "sanitize_scope",
    "is_sanitize_enabled",
    "Linear",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "Dropout",
    "mlp",
    "RNN",
    "LSTM",
    "RNNCell",
    "LSTMCell",
    "split_sequence",
    "Optimizer",
    "SGD",
    "Adam",
    "GradientClipper",
    "q_error",
    "q_error_loss",
    "log_q_error_loss",
    "mse_loss",
    "bce_loss",
    "kl_standard_normal",
    "save_module",
    "load_module",
    "state_to_bytes",
    "state_from_bytes",
    "validate_state_for",
]
