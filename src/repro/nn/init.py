"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


def xavier_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> Parameter:
    """Glorot/Xavier uniform init for a ``(fan_in, fan_out)`` weight."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return Parameter(rng.uniform(-limit, limit, size=(fan_in, fan_out)))


def kaiming_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> Parameter:
    """He/Kaiming uniform init, suited to ReLU networks."""
    limit = np.sqrt(6.0 / fan_in)
    return Parameter(rng.uniform(-limit, limit, size=(fan_in, fan_out)))


def zeros(*shape: int) -> Parameter:
    """Zero-initialized parameter (biases)."""
    return Parameter(np.zeros(shape))


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> Parameter:
    """Gaussian init with small standard deviation."""
    return Parameter(rng.normal(0.0, std, size=shape))
