"""Call-site API: ``compiled_call`` and the ``REPRO_COMPILE`` switch.

The contract with call sites is deliberately narrow:

* a site wraps the tensor computation it wants compiled in a function of
  its declared inputs and calls :func:`compiled_call`;
* ``None`` means "not compiled" (switch off, site declined, reentrant) —
  the caller runs its unmodified interpreted branch, which is what makes
  the fallback bitwise-identical by construction;
* otherwise the site gets the outputs of a cached plan execution. When
  gradients were requested (``want_grad``), output[0] is a *super node*:
  a tensor whose parents are the caller's own input tensors and whose
  backward rule replays the plan's static backward schedule, so outer
  ``grad()``/``backward()`` calls flow through the compiled region
  transparently.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.nn import tensor as _tensor
from repro.nn.compile.cache import (
    CACHE,
    DEFAULT_COMPILE_THRESHOLD,
    STATS,
    Fallback,
    Pending,
)
from repro.nn.compile.plan import CompiledPlan, CompileError, build_plan
from repro.nn.compile.tracer import TraceReject, trace_function
from repro.nn.tensor import Tensor, _wrap, is_grad_enabled

_ENABLED = os.environ.get("REPRO_COMPILE", "").strip() not in ("", "0")

_THRESHOLD = int(
    os.environ.get("REPRO_COMPILE_THRESHOLD", "") or DEFAULT_COMPILE_THRESHOLD
)

_TRACE_LOCK = threading.RLock()

#: A freshly compiled plan is kept only when its probe execution runs in
#: at most this fraction of the fastest warm-up interpreted run. By probe
#: time the trace cost is sunk, so any solid per-call win is worth
#: keeping; the margin below 1.0 only guards against keeping plans whose
#: "win" is timing noise (tiny graphs where numpy call overhead dominates
#: both paths and the interpreter is effectively as fast).
_PROFIT_RATIO = 0.9


def is_enabled() -> bool:
    return _ENABLED


def set_enabled(enabled: bool) -> None:
    """Flip the process-wide compile switch (CLI flags, tests)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def compile_threshold() -> int:
    return _THRESHOLD


def set_compile_threshold(threshold: int) -> None:
    """Compile a key on its Nth request (1 = compile immediately)."""
    global _THRESHOLD
    _THRESHOLD = max(int(threshold), 1)


@contextlib.contextmanager
def compiled_execution(enabled: bool = True):
    """Enable (or force off) compiled execution inside the block."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous


@dataclass
class CompiledInput:
    """One declared input of a compiled call.

    Args:
        tensor: the caller's tensor for this call.
        diff: trace with a requires-grad leaf (needed whenever anything
            inside the traced function differentiates w.r.t. it).
        want_grad: the caller wants d(output[0])/d(this input) to flow
            back out of the compiled region (implies ``diff``).
    """

    tensor: Tensor
    diff: bool = False
    want_grad: bool = False


def _site_label(site) -> str:
    if isinstance(site, tuple):
        return ":".join(str(part) for part in site)
    return str(site)


def compiled_call(
    site,
    fn,
    inputs: list[CompiledInput],
    static: tuple = (),
    min_uses: int | None = None,
):
    """Run ``fn`` through a cached compiled plan, or return ``None``.

    ``site`` identifies the call site (hashable; conventionally a tuple of
    strings); ``static`` captures non-tensor arguments baked into the
    trace (step counts, learning rates) so different values get different
    plans. ``min_uses`` raises the compile threshold for sites whose
    per-call compiled saving is small relative to trace/codegen cost —
    a global threshold of 1 overrides it and compiles immediately.
    Returns a tuple of output tensors, or ``None`` when the call is not
    compiled and the caller must take its interpreted branch.
    """
    if not _ENABLED:
        return None
    tracer = _tensor._TRACER
    if tracer is not None and tracer.tracing_here():
        # Reentrant site inside an active trace: interpret it so the outer
        # trace records its ops.
        return None

    key = (
        site,
        static,
        tuple(
            (spec.tensor.data.shape, spec.tensor.data.dtype.str, spec.diff, spec.want_grad)
            for spec in inputs
        ),
    )
    entry = CACHE.get(key)
    if isinstance(entry, CompiledPlan):
        STATS.record_hit()
        return _run_plan(entry, inputs)
    if isinstance(entry, Fallback):
        STATS.record_fallback(entry.reason)
        return None
    return _compile_miss(key, site, fn, inputs, min_uses)


def _effective_threshold(min_uses: int | None) -> int:
    if _THRESHOLD <= 1:
        return 1
    return max(_THRESHOLD, min_uses or 1)


def _compile_miss(key, site, fn, inputs, min_uses):
    """Warm up, compile, or decline ``key``; returns outputs or ``None``.

    Warm-up calls run the build function through the interpreter with the
    caller's own tensors as arguments — the same ops, values, and graph
    wiring as the caller's fallback branch, so returning these outputs is
    bit-identical to returning ``None`` and letting the caller interpret.
    The fastest warm-up duration is kept; when the key reaches the compile
    threshold the freshly built plan's first (probe) execution is timed
    against it and plans without a clear per-call win are negatively
    cached, so a one-time trace is the most an unprofitable site can cost.
    """
    with _TRACE_LOCK:
        entry = CACHE.get(key)
        if isinstance(entry, CompiledPlan):
            STATS.record_hit()
            return _run_plan(entry, inputs)
        if isinstance(entry, Fallback):
            STATS.record_fallback(entry.reason)
            return None
        STATS.record_miss()
        pending = entry if isinstance(entry, Pending) else Pending()
        pending.count += 1
        if pending.count < _effective_threshold(min_uses):
            # Warm-up: not hot enough to pay tracing/codegen yet. Run the
            # interpreted equivalent here so it can be timed.
            CACHE.put(key, pending)
            args = [
                spec.tensor
                if spec.tensor.requires_grad or not spec.diff
                else Tensor(spec.tensor.data, requires_grad=True)
                for spec in inputs
            ]
            start = time.perf_counter()
            result = fn(*args)
            elapsed = time.perf_counter() - start
            if pending.interp_seconds is None or elapsed < pending.interp_seconds:
                pending.interp_seconds = elapsed
            return result if isinstance(result, tuple) else (result,)
        want_slots = tuple(i for i, spec in enumerate(inputs) if spec.want_grad)
        if any(spec.diff for spec in inputs) and not is_grad_enabled():
            entry = Fallback("gradients requested while grad is disabled")
        else:
            try:
                leaves = [
                    Tensor(spec.tensor.data, requires_grad=spec.diff) for spec in inputs
                ]
                graph, _ = trace_function(fn, leaves)
                entry = build_plan(graph, _site_label(site), want_slots)
            except TraceReject as exc:
                entry = Fallback(str(exc))
        if isinstance(entry, Fallback):
            STATS.record_fallback(entry.reason)
            CACHE.put(key, entry)
            return None
        start = time.perf_counter()
        result = _run_plan(entry, inputs)
        elapsed = time.perf_counter() - start
        baseline = pending.interp_seconds
        if baseline is not None and elapsed > baseline * _PROFIT_RATIO:
            # The plan's outputs are still exact — return them — but a
            # per-call win this thin never repays the trace; decline the
            # key from here on.
            reason = (
                f"unprofitable: compiled {elapsed * 1e3:.2f}ms vs "
                f"interpreted {baseline * 1e3:.2f}ms"
            )
            STATS.record_fallback(reason)
            CACHE.put(key, Fallback(reason))
        else:
            STATS.record_compiled()
            CACHE.put(key, entry)
        return result


def _run_plan(plan: CompiledPlan, inputs: list[CompiledInput]) -> tuple[Tensor, ...]:
    arrays = [spec.tensor.data for spec in inputs]
    outputs, serial = plan.execute(arrays)
    tensors = tuple(_wrap(arr) for arr in outputs)
    want_parents = tuple(spec.tensor for spec in inputs if spec.want_grad)
    if (
        want_parents
        and plan._has_backward
        and is_grad_enabled()
        and any(p.requires_grad for p in want_parents)
    ):
        head = tensors[0]
        head.requires_grad = True
        head._parents = want_parents
        head._op = f"compiled:{plan.label}"
        head._grad_fn_data = lambda g: tuple(plan.backward(g, serial))

        def _no_taped_rule(_g):
            raise CompileError(
                f"create_graph backward through compiled region {plan.label!r}; "
                "disable compilation for higher-order differentiation of this site"
            )

        head._grad_fn = _no_taped_rule
    return tensors


def compiled_forward(model, x: Tensor):
    """Compiled inference forward ``model(x)``; ``None`` when not compiled.

    Parameters are declared as plan inputs (not baked), so the same plan
    stays valid across retraining — only shapes key the cache.
    """
    if not _ENABLED:
        return None
    named = list(model.named_parameters())
    names = [name for name, _ in named]
    params = [param for _, param in named]

    def build(xi, *param_tensors):
        view = model.clone_with_parameters(dict(zip(names, param_tensors)))
        with _tensor.no_grad():
            return view(xi)

    outputs = compiled_call(
        ("nn.forward", type(model).__name__),
        build,
        [CompiledInput(x), *[CompiledInput(p) for p in params]],
    )
    return None if outputs is None else outputs[0]
