"""Graph tracer: runs a function once through the interpreter and records it.

The tracer installs itself as ``repro.nn.tensor._TRACER`` (under the
compiler's trace lock) and receives a callback from every tensor op. The
traced function runs through the *real* interpreter, so the recorded
values are by construction the interpreted values; the resulting
:class:`~repro.nn.compile.ir.TraceGraph` is a faithful flat rendering of
one call at one shape signature.

Inner ``grad()``/second-order computations inside the traced function are
forced through the taped backward rules (see ``_backward_pass``), whose
ops land in the recording like any forward op — the unrolled-update graph
PACE differentiates through is captured whole.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.nn import tensor as _tensor
from repro.nn.compile.ir import TraceGraph, TraceNode
from repro.nn.tensor import Tensor


class TraceReject(Exception):
    """Raised inside a trace when the recorded function cannot be compiled.

    The call site treats this as a (cached) decline: the caller falls back
    to its unmodified interpreted branch, so behavior is exactly legacy.
    """


class GraphTracer:
    """Records every tensor op executed by the owning thread.

    Holds a strong reference to each recorded tensor: the ``id()`` ->
    node-index map stays valid only while the referenced objects are
    alive (a freed tensor's id could be recycled mid-trace otherwise).
    """

    def __init__(self) -> None:
        self.nodes: list[TraceNode] = []
        self._index: dict[int, int] = {}
        self._refs: list[Tensor] = []
        self._thread = threading.get_ident()

    # ------------------------------------------------------------------
    # hooks called from repro.nn.tensor
    # ------------------------------------------------------------------
    def tracing_here(self) -> bool:
        return threading.get_ident() == self._thread

    def op(self, out: Tensor, name: str, parents: tuple, **aux) -> None:
        if not self.tracing_here():
            return
        parent_idxs = tuple(self._ensure(p) for p in parents)
        self._bind(
            out,
            TraceNode(
                idx=len(self.nodes),
                kind="op",
                op=name,
                parents=parent_idxs,
                aux=aux,
                shape=out.data.shape,
                requires_grad=out.requires_grad,
                dtype=out.data.dtype.str,
            ),
        )

    def helper(self, derived: Tensor, kind: str, parents: tuple, **aux) -> None:
        """Record a data-dependent helper (mask/sign) as a derived node.

        Helpers are materialized by backward rules from forward values; at
        plan-execution time they are recomputed from the live buffers, so
        baking them as constants (which would freeze one call's mask) is
        never correct.
        """
        if not self.tracing_here() or id(derived) in self._index:
            return
        parent_idxs = tuple(self._ensure(p) for p in parents)
        self._bind(
            derived,
            TraceNode(
                idx=len(self.nodes),
                kind="op",
                op=kind,
                parents=parent_idxs,
                aux=aux,
                shape=derived.data.shape,
                requires_grad=False,
                dtype=derived.data.dtype.str,
            ),
        )

    def unsupported(self, reason: str) -> None:
        if self.tracing_here():
            raise TraceReject(reason)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def add_input(self, leaf: Tensor, slot: int) -> None:
        self._bind(
            leaf,
            TraceNode(
                idx=len(self.nodes),
                kind="input",
                op=None,
                parents=(),
                aux={},
                shape=leaf.data.shape,
                requires_grad=leaf.requires_grad,
                slot=slot,
                dtype=leaf.data.dtype.str,
            ),
        )

    def _bind(self, tensor: Tensor, node: TraceNode) -> None:
        self.nodes.append(node)
        self._index[id(tensor)] = node.idx
        self._refs.append(tensor)

    def _ensure(self, tensor: Tensor) -> int:
        """Node index for ``tensor``, baking unknown tensors as constants.

        Anything the trace did not produce and was not declared an input
        must be call-invariant (seed/zero/one-hot tensors built inside the
        function). A requires-grad tensor sneaking in this way means a
        parameter was not declared as an input — reject the trace rather
        than silently freezing it.
        """
        idx = self._index.get(id(tensor))
        if idx is not None:
            return idx
        if tensor.requires_grad:
            raise TraceReject("untracked requires-grad tensor entered the trace")
        node = TraceNode(
            idx=len(self.nodes),
            kind="const",
            op=None,
            parents=(),
            aux={},
            shape=tensor.data.shape,
            requires_grad=False,
            value=np.array(tensor.data, copy=True),
            dtype=tensor.data.dtype.str,
        )
        self._bind(tensor, node)
        return node.idx


def trace_function(fn, leaves: list[Tensor]) -> tuple[TraceGraph, tuple[int, ...]]:
    """Run ``fn(*leaves)`` once under a fresh tracer and return its graph.

    The caller must hold the compiler's trace lock; only one trace can be
    active per process because the tracer hook is a module global.
    """
    if _tensor._TRACER is not None:
        raise RuntimeError("a trace is already active")
    tracer = GraphTracer()
    for slot, leaf in enumerate(leaves):
        tracer.add_input(leaf, slot)
    _tensor._install_tracer(tracer)
    try:
        result = fn(*leaves)
    finally:
        _tensor._install_tracer(None)
    outputs = result if isinstance(result, tuple) else (result,)
    for out in outputs:
        if not isinstance(out, Tensor):
            raise TraceReject(f"traced function returned a non-tensor: {type(out).__name__}")
    out_idxs = tuple(tracer._ensure(out) for out in outputs)
    graph = TraceGraph(
        nodes=tracer.nodes,
        outputs=out_idxs,
        input_idxs=tuple(range(len(leaves))),
    )
    return graph, out_idxs
