"""Plan cache and compile statistics.

Lookup is keyed by ``(site, static args, per-input (shape, dtype, diff,
want_grad))`` — everything known *before* tracing. Plan identity (the
``graph hash``) is computed after the trace and recorded on the plan, so
two sites that happen to record identical graphs still report the same
hash in diagnostics. Declined sites are negatively cached as
:class:`Fallback` entries so a hot loop pays the trace attempt once.

All counters are mirrored into the ``repro.perf`` registry under
``compile.*`` whenever it is enabled, which makes them show up in
``pace-repro profile`` and bench reports without extra plumbing.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.nn.compile.plan import CompiledPlan
from repro.perf.registry import PERF

#: Compile a cache key on its Nth request; earlier requests interpret.
#: A threshold of 1 forces immediate compilation everywhere, overriding
#: per-site ``min_uses`` hints (used by tests and the equivalence sweep).
DEFAULT_COMPILE_THRESHOLD = 3


@dataclass
class Fallback:
    """Negative cache entry: why a site declined compilation."""

    reason: str


@dataclass
class Pending:
    """Warm-up entry: calls seen for a key not yet hot enough to compile.

    Tracing and code generation cost ~10-200ms per plan, so shapes that
    occur once (e.g. a rare non-empty-row count in the attack loop) must
    not pay it. A key compiles only on its Nth request (the compile
    threshold); until then ``compiled_call`` runs the build function
    through the interpreter — bit-identical to the caller's own fallback
    branch — and keeps the fastest observed duration so the freshly
    compiled plan can be probed for profitability against it.
    """

    count: int = 0
    interp_seconds: float | None = None


class CompileStats:
    """Process-wide plan-cache counters (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.plans_compiled = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.fallback_calls = 0
        self.fallback_reasons: dict[str, int] = {}

    def record_hit(self) -> None:
        with self._lock:
            self.plan_hits += 1
        if PERF.enabled:
            PERF.incr("compile.plan_hits")

    def record_miss(self) -> None:
        with self._lock:
            self.plan_misses += 1
        if PERF.enabled:
            PERF.incr("compile.plan_misses")

    def record_compiled(self) -> None:
        with self._lock:
            self.plans_compiled += 1
        if PERF.enabled:
            PERF.incr("compile.plans_compiled")

    def record_fallback(self, reason: str) -> None:
        with self._lock:
            self.fallback_calls += 1
            self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1
        if PERF.enabled:
            PERF.incr("compile.fallback_calls")

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "plans_compiled": self.plans_compiled,
                "plan_hits": self.plan_hits,
                "plan_misses": self.plan_misses,
                "fallback_calls": self.fallback_calls,
                "fallback_reasons": dict(self.fallback_reasons),
            }


def stats_delta(now: dict, baseline: dict) -> dict:
    """Counter-wise ``now - baseline`` for two snapshots."""
    reasons = {}
    base_reasons = baseline.get("fallback_reasons", {})
    for reason, count in now.get("fallback_reasons", {}).items():
        diff = count - base_reasons.get(reason, 0)
        if diff:
            reasons[reason] = diff
    return {
        "plans_compiled": now["plans_compiled"] - baseline.get("plans_compiled", 0),
        "plan_hits": now["plan_hits"] - baseline.get("plan_hits", 0),
        "plan_misses": now["plan_misses"] - baseline.get("plan_misses", 0),
        "fallback_calls": now["fallback_calls"] - baseline.get("fallback_calls", 0),
        "fallback_reasons": reasons,
    }


class PlanCache:
    """Process-wide cache of compiled plans and negative entries."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[tuple, CompiledPlan | Fallback] = {}

    def get(self, key: tuple):
        with self._lock:
            return self._entries.get(key)

    def put(self, key: tuple, entry) -> None:
        with self._lock:
            self._entries[key] = entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def plans(self) -> list[CompiledPlan]:
        with self._lock:
            return [e for e in self._entries.values() if isinstance(e, CompiledPlan)]

    def fallbacks(self) -> list[tuple[tuple, str]]:
        with self._lock:
            return [(k, e.reason) for k, e in self._entries.items() if isinstance(e, Fallback)]


STATS = CompileStats()
CACHE = PlanCache()  # safe: R016 pure memoization of deterministic traces — a forked worker that re-compiles locally produces bit-identical plans, so per-process divergence costs repeat trace time, never correctness


def compile_stats() -> dict:
    """Snapshot of the global compile counters."""
    return STATS.snapshot()


def iter_plans() -> list[CompiledPlan]:
    """All live compiled plans (gradcheck enumerates their kernels)."""
    return CACHE.plans()


def reset_compile_state() -> None:
    """Drop all cached plans and zero the counters (tests/benchmarks)."""
    CACHE.clear()
    STATS.__init__()
