"""Compiled plans: fused-kernel code generation and execution.

A :class:`CompiledPlan` turns a :class:`~repro.nn.compile.ir.TraceGraph`
into

* a **forward schedule** — live ops in topological order, chunked into
  generated Python functions ("fused kernels") that run the ops
  back-to-back into preallocated buffers with zero graph bookkeeping;
* a **backward schedule** — a static replay of the interpreter's
  ``_backward_pass``: same DFS postorder from the first output, same
  parent order, same ``existing + contribution`` accumulation, with the
  emitted arithmetic mirroring each op's ``_grad_fn_data`` rule. The
  schedule is pruned to nodes from which a gradient-requesting input is
  reachable; every contribution feeding a kept node comes from a kept
  node, so pruning never changes a returned value.

When the ``REPRO_SANITIZE`` sanitizer is active, execution switches to an
instrumented build of the *same* generated lines with a finite-check
after every node, so a NaN inside a fused region is blamed on the exact
original op (name, shapes, scope chain) rather than on the kernel blob.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.nn import tensor as _tensor
from repro.nn.compile.ir import TraceGraph
from repro.nn.compile.kernels import (
    KERNEL_NAMESPACE,
    UnsupportedOp,
    backward_contributions,
    forward_lines,
)
from repro.nn.tensor import SanitizeError, _nonfinite_kinds

#: Max ops per generated kernel function. Chunking keeps any single
#: compiled code object at a size CPython's parser handles instantly while
#: preserving the exact overall op order.
SEGMENT_OPS = 250


class CompileError(RuntimeError):
    """A compiled plan was used in a way the recorded trace cannot honor."""


def _compile_segments(per_node_lines, label: str, tag: str, extra_ns=None):
    """Chunk per-node line lists into compiled kernel functions."""
    segments = []
    chunk: list[str] = []
    ops_in_chunk = 0

    def flush():
        nonlocal chunk, ops_in_chunk
        if not chunk:
            return
        body = "".join(f"    {line}\n" for line in chunk)
        src = f"def _kernel(B, G, AUX):\n{body}"
        code = compile(src, f"<repro-compile:{label}:{tag}{len(segments)}>", "exec")
        namespace = dict(KERNEL_NAMESPACE)
        if extra_ns:
            namespace.update(extra_ns)
        exec(code, namespace)  # noqa: S102 - our own generated source
        segments.append((namespace["_kernel"], ops_in_chunk))
        chunk = []
        ops_in_chunk = 0

    for lines in per_node_lines:
        chunk.extend(lines)
        ops_in_chunk += 1
        if ops_in_chunk >= SEGMENT_OPS:
            flush()
    flush()
    return segments


def _backward_topo(graph: TraceGraph, root: int) -> list[int]:
    """The interpreter's exact DFS postorder over requires-grad nodes."""
    topo: list[int] = []
    visited: set[int] = set()
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        idx, processed = stack.pop()
        if processed:
            topo.append(idx)
            continue
        if idx in visited:
            continue
        visited.add(idx)
        stack.append((idx, True))
        for parent in graph.nodes[idx].parents:
            if graph.nodes[parent].requires_grad and parent not in visited:
                stack.append((parent, False))
    return topo


class CompiledPlan:
    """Executable forward (and optional backward) schedule for one trace."""

    def __init__(self, graph: TraceGraph, label: str, want_slots: tuple[int, ...]) -> None:
        self.graph = graph
        self.label = label
        self._graph_hash: str | None = None
        self.want_slots = want_slots
        self._lock = threading.Lock()
        self._serial = 0

        self._aux: list = []
        self._aux_index: dict[int, int] = {}
        # _aux_index keys are id()s; the originals must outlive plan
        # construction or CPython may recycle a freed temporary's id and
        # alias two different aux values to one slot.
        self._aux_keepalive: list = []

        n = len(graph.nodes)
        live = self._liveness()
        self._buffers: list = [None] * n
        self._input_idxs = list(graph.input_idxs)
        self._out_idxs = list(graph.outputs)
        for node in graph.nodes:
            if node.kind == "const" and node.idx in live:
                self._buffers[node.idx] = node.value

        # Forward: (node_idx, lines) in recording order (already topological).
        self._fwd_per_node: list[tuple[int, list[str]]] = []
        for node in graph.nodes:
            if node.kind != "op" or node.idx not in live:
                continue
            lines, prealloc = forward_lines(node, graph, self._aux_ref)
            if prealloc:
                self._buffers[node.idx] = np.empty(node.shape)
            self._fwd_per_node.append((node.idx, lines))
        self._fwd_segments = _compile_segments(
            [lines for _, lines in self._fwd_per_node], label, "fwd"
        )
        self._fwd_checked = None

        # Backward: static replay of _backward_pass rooted at output[0].
        self._want_idxs = [graph.input_idxs[slot] for slot in want_slots]
        root = graph.outputs[0]
        self._root = root
        self._has_backward = bool(want_slots) and graph.nodes[root].requires_grad
        self._bwd_per_node: list[dict] = []
        self._reached_wants: set[int] = set()
        if self._has_backward:
            self._build_backward(root)
        self._bwd_segments = _compile_segments(
            [entry["lines"] for entry in self._bwd_per_node], label, "bwd"
        )
        self._bwd_checked = None
        # Aux interning happens only during construction; drop the
        # originals now that no further _aux_ref calls can occur.
        self._aux_index.clear()
        self._aux_keepalive.clear()

    @property
    def graph_hash(self) -> str:
        """Plan identity, hashed lazily — it is diagnostic-only and costs
        a few milliseconds on large traces."""
        if self._graph_hash is None:
            self._graph_hash = self.graph.graph_hash()
        return self._graph_hash

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _aux_ref(self, obj) -> str:
        key = id(obj)
        if key not in self._aux_index:
            self._aux_index[key] = len(self._aux)
            self._aux.append(_freeze_index(obj))
            self._aux_keepalive.append(obj)
        return f"AUX[{self._aux_index[key]}]"

    def _liveness(self) -> set[int]:
        live: set[int] = set()
        stack = list(self.graph.outputs)
        while stack:
            idx = stack.pop()
            if idx in live:
                continue
            live.add(idx)
            stack.extend(self.graph.nodes[idx].parents)
        return live

    def _build_backward(self, root: int) -> None:
        graph = self.graph
        topo = _backward_topo(graph, root)
        want_set = set(self._want_idxs)

        # Keep only nodes from which a wanted input is reachable. Postorder
        # lists parents before children, so one forward sweep suffices.
        needed: set[int] = set()
        for idx in topo:
            if idx in want_set or any(p in needed for p in graph.nodes[idx].parents):
                needed.add(idx)

        has_grad = {root}
        written: set[int] = set()
        for idx in reversed(topo):
            if idx not in has_grad:
                continue
            node = graph.nodes[idx]
            if node.kind != "op":
                continue  # leaf: gradient is captured, nothing to propagate
            setup, contribs = backward_contributions(node, graph, self._aux_ref)
            lines: list[str] = []
            checks: list[int] = []
            for parent, expr in contribs:
                if parent not in needed or not graph.nodes[parent].requires_grad:
                    continue
                if not lines:
                    lines.extend(setup)
                if parent in written:
                    lines.append(f"G[{parent}] = G[{parent}] + ({expr})")
                else:
                    lines.append(f"G[{parent}] = {expr}")
                    written.add(parent)
                has_grad.add(parent)
                checks.append(parent)
            if lines:
                self._bwd_per_node.append({"node": idx, "lines": lines, "checks": checks})
        self._reached_wants = {idx for idx in self._want_idxs if idx in has_grad}

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, arrays: list[np.ndarray]) -> tuple[list[np.ndarray], int]:
        """Run the forward schedule; returns (output copies, run serial)."""
        with self._lock:
            self._serial += 1
            serial = self._serial
            buffers = self._buffers
            for idx, arr in zip(self._input_idxs, arrays):
                buffers[idx] = arr
            segments = (
                self._sanitized_forward() if _tensor.is_sanitize_enabled() else self._fwd_segments
            )
            aux = self._aux
            for kernel, _ in segments:
                kernel(buffers, None, aux)
            outputs = [np.array(buffers[idx], copy=True) for idx in self._out_idxs]
            return outputs, serial

    def backward(self, seed: np.ndarray, serial: int) -> list[np.ndarray | None]:
        """Gradients of output[0] w.r.t. the wanted inputs, in slot order.

        ``serial`` must be the value :meth:`execute` returned for the
        forward pass these gradients belong to; the buffers still hold
        that pass's values only until the next ``execute``.
        """
        with self._lock:
            if not self._has_backward:
                raise CompileError(f"plan {self.label} was compiled without a backward schedule")
            if serial != self._serial:
                raise CompileError(
                    f"stale backward for plan {self.label}: forward buffers were "
                    f"overwritten by a later execution (serial {serial} != {self._serial})"
                )
            grads: list = [None] * len(self.graph.nodes)
            grads[self._root] = np.asarray(seed)
            segments = (
                self._sanitized_backward() if _tensor.is_sanitize_enabled() else self._bwd_segments
            )
            for kernel, _ in segments:
                kernel(self._buffers, grads, self._aux)
            return [
                grads[idx] if idx in self._reached_wants else None for idx in self._want_idxs
            ]

    # ------------------------------------------------------------------
    # sanitizer instrumentation
    # ------------------------------------------------------------------
    def _sanitized_forward(self):
        if self._fwd_checked is None:
            per_node = [
                lines + [f"_ck(B[{idx}], {idx})"] for idx, lines in self._fwd_per_node
            ]
            self._fwd_checked = _compile_segments(
                per_node, self.label, "fwdchk", {"_ck": self._check_forward_value}
            )
        return self._fwd_checked

    def _sanitized_backward(self):
        if self._bwd_checked is None:
            per_node = [
                entry["lines"]
                + [f"_ckg(G[{p}], {entry['node']})" for p in entry["checks"]]
                for entry in self._bwd_per_node
            ]
            self._bwd_checked = _compile_segments(
                per_node, self.label, "bwdchk", {"_ckg": self._check_grad_value}
            )
        return self._bwd_checked

    def _check_forward_value(self, arr: np.ndarray, idx: int) -> None:
        _tensor._SANITIZE_CHECKS += 1
        if np.isfinite(arr).all():
            return
        node = self.graph.nodes[idx]
        parent_shapes = [self.graph.nodes[p].shape for p in node.parents]
        tainted = any(
            self._buffers[p] is not None and not np.isfinite(self._buffers[p]).all()
            for p in node.parents
        )
        raise SanitizeError(
            node.op or node.kind,
            "forward",
            _nonfinite_kinds(arr),
            arr.shape,
            parent_shapes,
            list(_tensor._SCOPE_STACK) + [f"compiled:{self.label}"],
            tainted,
        )

    def _check_grad_value(self, arr: np.ndarray, idx: int) -> None:
        _tensor._SANITIZE_CHECKS += 1
        if np.isfinite(arr).all():
            return
        node = self.graph.nodes[idx]
        raise SanitizeError(
            node.op or node.kind,
            "backward",
            _nonfinite_kinds(arr),
            arr.shape,
            [self.graph.nodes[p].shape for p in node.parents],
            list(_tensor._SCOPE_STACK) + [f"compiled:{self.label}"],
            False,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    # The static IR verifier (repro.analysis.ir) consumes the plan solely
    # through these accessors: they expose the *schedules and buffer
    # metadata the generated kernels actually run against*, as plain
    # values, so the verifier never executes a kernel and never reaches
    # into construction internals.

    @property
    def has_backward(self) -> bool:
        """Whether this plan carries a static backward schedule."""
        return self._has_backward

    def forward_schedule(self) -> list[tuple[int, tuple[str, ...]]]:
        """``(node idx, generated source lines)`` per live op, in run order."""
        return [(idx, tuple(lines)) for idx, lines in self._fwd_per_node]

    def backward_schedule(self) -> list[dict]:
        """Static backward entries: node, generated lines, gradients written."""
        return [
            {
                "node": entry["node"],
                "lines": tuple(entry["lines"]),
                "writes": tuple(entry["checks"]),
            }
            for entry in self._bwd_per_node
        ]

    def buffer_table(self) -> dict[int, dict]:
        """Per-node buffer metadata: kind (input/const/prealloc), shape, dtype.

        Nodes whose forward line rebinds ``B[i]`` instead of writing into a
        preallocated buffer (matmul, reshape, ...) have no entry — their
        buffer exists only at run time.
        """
        table: dict[int, dict] = {}
        for node in self.graph.nodes:
            if node.kind == "input":
                table[node.idx] = {
                    "kind": "input", "shape": tuple(node.shape), "dtype": node.dtype,
                }
                continue
            buffer = self._buffers[node.idx]
            if buffer is None:
                continue
            table[node.idx] = {
                "kind": "const" if node.kind == "const" else "prealloc",
                "shape": tuple(buffer.shape),
                "dtype": buffer.dtype.str,
            }
        return table

    def segment_op_counts(self) -> dict[str, tuple[int, ...]]:
        """Ops per generated kernel segment for each direction."""
        return {
            "forward": tuple(ops for _, ops in self._fwd_segments),
            "backward": tuple(ops for _, ops in self._bwd_segments),
        }

    def input_nodes(self) -> tuple[int, ...]:
        """Graph node index of each declared input, in slot order."""
        return tuple(self._input_idxs)

    def output_nodes(self) -> tuple[int, ...]:
        """Graph node index of each plan output."""
        return tuple(self._out_idxs)

    def wanted_inputs(self) -> tuple[int, ...]:
        """Node indices of the inputs whose gradients the caller wants."""
        return tuple(self._want_idxs)

    def reached_wants(self) -> frozenset[int]:
        """Wanted inputs the backward schedule actually writes."""
        return frozenset(self._reached_wants)

    def backward_root(self) -> int | None:
        """Node the backward replay is seeded from, if a backward exists."""
        return self._root if self._has_backward else None

    def guards_serial(self) -> bool:
        """Whether :meth:`backward` rejects stale forward buffers.

        Always true for this implementation (``backward`` checks the run
        serial); exposed so the verifier states the requirement against
        the interface rather than the implementation.
        """
        return True

    def kernels(self) -> list[dict]:
        """One entry per generated fused kernel (for gradcheck/profile)."""
        entries = []
        for tag, segments in (("forward", self._fwd_segments), ("backward", self._bwd_segments)):
            for seg_no, (_, ops) in enumerate(segments):
                entries.append({"name": f"{self.label}:{tag}{seg_no}", "ops": ops})
        return entries

    def describe(self) -> dict:
        return {
            "label": self.label,
            "graph_hash": self.graph_hash,
            "nodes": len(self.graph.nodes),
            "op_counts": self.graph.op_counts(),
            "kernels": self.kernels(),
            "wants": len(self._want_idxs),
            "has_backward": self._has_backward,
        }


def _freeze_index(obj):
    """Deep-copy ndarray components of an index so later caller-side
    mutation of a position array cannot silently change a cached plan."""
    if isinstance(obj, np.ndarray):
        return np.array(obj, copy=True)
    if isinstance(obj, tuple):
        return tuple(_freeze_index(v) for v in obj)
    if isinstance(obj, list):
        return [_freeze_index(v) for v in obj]
    return obj


def build_plan(graph: TraceGraph, label: str, want_slots: tuple[int, ...]) -> CompiledPlan:
    """Build a plan, translating emitter gaps into trace rejections."""
    from repro.nn.compile.tracer import TraceReject

    try:
        return CompiledPlan(graph, label, want_slots)
    except UnsupportedOp as exc:
        raise TraceReject(str(exc)) from exc
