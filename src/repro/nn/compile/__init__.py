"""Trace-and-fuse JIT compiler for ``repro.nn``.

Records a tensor computation's autograd graph once per shape signature,
collapses it into preallocated-buffer NumPy kernels (forward and
backward, including second-order unrolled-update graphs), and caches the
plan. Execution is bit-identical to the interpreter; any op, shape, or
situation the compiler cannot honor falls back to the unmodified
interpreted code path. Off by default — enable with ``REPRO_COMPILE=1``,
the CLI ``--compile`` flags, or :func:`set_enabled`.
"""

from repro.nn.compile.api import (
    CompiledInput,
    compile_threshold,
    compiled_call,
    compiled_execution,
    compiled_forward,
    is_enabled,
    set_compile_threshold,
    set_enabled,
)
from repro.nn.compile.cache import (
    compile_stats,
    iter_plans,
    reset_compile_state,
    stats_delta,
)
from repro.nn.compile.ir import TraceGraph, TraceNode
from repro.nn.compile.plan import CompiledPlan, CompileError, build_plan
from repro.nn.compile.tracer import GraphTracer, TraceReject, trace_function

__all__ = [
    "CompiledInput",
    "CompiledPlan",
    "CompileError",
    "GraphTracer",
    "TraceGraph",
    "TraceNode",
    "TraceReject",
    "build_plan",
    "compile_stats",
    "compile_threshold",
    "compiled_call",
    "compiled_execution",
    "compiled_forward",
    "is_enabled",
    "iter_plans",
    "reset_compile_state",
    "set_compile_threshold",
    "set_enabled",
    "stats_delta",
    "trace_function",
]
