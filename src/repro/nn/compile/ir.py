"""Trace IR: the flat op graph a trace records and a stable hash over it.

A :class:`TraceGraph` is a DAG in SSA form: every node is produced exactly
once, parents always have smaller indices than their consumers (recording
order is a topological order), and the graph is immutable once the trace
finishes. Three node kinds exist:

* ``input`` — a placeholder rebound to a caller array on every plan run;
* ``const`` — a value captured at trace time (shape/seed/zero tensors that
  are provably call-invariant; anything call-variant must be an input);
* ``op`` — a recorded tensor operation, including the *derived* helper
  nodes (masks, signs) that backward rules consume. Helpers never require
  grad, so they appear in forward schedules but never in backward ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np


#: Canonical dtype string of the interpreter's tensors — ``Tensor`` casts
#: everything to float64, so every recorded node defaults to it.
DEFAULT_DTYPE = np.dtype(np.float64).str


@dataclass
class TraceNode:
    idx: int
    kind: str  # "input" | "const" | "op"
    op: str | None
    parents: tuple[int, ...]
    aux: dict[str, Any]
    shape: tuple[int, ...]
    requires_grad: bool
    value: np.ndarray | None = None  # consts only
    slot: int | None = None  # inputs only
    dtype: str = DEFAULT_DTYPE  # numpy dtype.str of the recorded array


@dataclass
class TraceGraph:
    nodes: list[TraceNode] = field(default_factory=list)
    outputs: tuple[int, ...] = ()
    input_idxs: tuple[int, ...] = ()  # slot -> node idx

    def op_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes:
            if node.kind == "op":
                counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def graph_hash(self) -> str:
        """SHA-256 over the full structure, aux payloads, and const bytes."""
        digest = hashlib.sha256()
        for node in self.nodes:
            digest.update(
                repr(
                    (
                        node.idx,
                        node.kind,
                        node.op,
                        node.parents,
                        _canonical_aux(node.aux),
                        node.shape,
                        node.requires_grad,
                        node.slot,
                        node.dtype,
                    )
                ).encode()
            )
            if node.value is not None:
                digest.update(node.value.tobytes())
        digest.update(repr((self.outputs, self.input_idxs)).encode())
        return digest.hexdigest()


def _canonical_aux(value: Any) -> Any:
    """Deterministic, hashable rendering of an aux payload.

    Index objects may embed ndarrays (fancy indexing) and slices, neither
    of which has a stable ``repr`` for hashing; both are rewritten into
    value-based tuples.
    """
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.shape, hashlib.sha256(value.tobytes()).hexdigest())
    if isinstance(value, slice):
        return ("slice", value.start, value.stop, value.step)
    if isinstance(value, dict):
        return tuple((k, _canonical_aux(v)) for k, v in sorted(value.items()))
    if isinstance(value, (tuple, list)):
        return tuple(_canonical_aux(v) for v in value)
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    return value
