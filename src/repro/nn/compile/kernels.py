"""NumPy source emitters for fused kernels.

Every emitter mirrors one op's interpreter arithmetic *textually*: the
forward lines reproduce the exact ufunc sequence the op runs in
``repro.nn.tensor`` (into preallocated buffers where the ufunc supports
``out=``), and the backward lines reproduce the op's ``_grad_fn_data``
rule term for term — same operand order, same intermediate roundings.
That one-to-one mapping is what makes the compiled plan bit-identical to
the interpreter rather than merely close.

Generated code runs with three names in scope: ``B`` (per-node forward
buffers), ``G`` (per-node gradient buffers), ``AUX`` (constant index
objects). Data-dependent helper masks are recomputed from live buffers
every call; they are never baked.
"""

from __future__ import annotations

import numpy as np

from repro.nn.compile.ir import TraceGraph, TraceNode
from repro.nn.tensor import _scatter_data, _unbroadcast_data


def _mask_gt0(x: np.ndarray) -> np.ndarray:
    return (x > 0).astype(np.float64)


def _mask_range(x: np.ndarray, low: float, high: float) -> np.ndarray:
    return ((x >= low) & (x <= high)).astype(np.float64)


def _mask_ge(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a >= b).astype(np.float64)


def _mask_lt(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a < b).astype(np.float64)


def _amask(x: np.ndarray) -> np.ndarray:
    mask = np.zeros_like(x)
    mask.reshape(-1)[int(np.argmax(x))] = 1.0
    return mask


#: Names available inside every generated kernel.
KERNEL_NAMESPACE = {
    "np": np,
    "_unb": _unbroadcast_data,
    "_scat": _scatter_data,
    "_mask_gt0": _mask_gt0,
    "_mask_range": _mask_range,
    "_mask_ge": _mask_ge,
    "_mask_lt": _mask_lt,
    "_amask": _amask,
}


class UnsupportedOp(Exception):
    """An op kind the code generator has no emitter for (plan declines)."""


def _sum_kept_shape(in_shape, axis, keepdims):
    """Replicate ``Tensor.sum``'s kept-shape computation exactly."""
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        kept = list(in_shape)
        for ax in sorted(a % len(in_shape) for a in axes):
            kept[ax] = 1
        return tuple(kept)
    return None


def _sigmoid_into(src: str, dst: str) -> list[str]:
    # Stage-for-stage rendering of 1.0 / (1.0 + np.exp(-x)).
    return [
        f"np.negative({src}, out={dst})",
        f"np.exp({dst}, out={dst})",
        f"np.add({dst}, 1.0, out={dst})",
        f"np.divide(1.0, {dst}, out={dst})",
    ]


def forward_lines(node: TraceNode, graph: TraceGraph, aux_ref) -> tuple[list[str], bool]:
    """Source lines computing ``B[node.idx]``; returns (lines, needs_prealloc).

    ``aux_ref(obj)`` interns a constant Python object (index tuples and
    the like) and returns the ``AUX[k]`` expression referencing it.
    """
    i = node.idx
    out = f"B[{i}]"
    p = [f"B[{j}]" for j in node.parents]
    op = node.op

    if op in ("add", "sub", "mul"):
        ufunc = {"add": "add", "sub": "subtract", "mul": "multiply"}[op]
        return [f"np.{ufunc}({p[0]}, {p[1]}, out={out})"], True
    if op == "neg":
        return [f"np.negative({p[0]}, out={out})"], True
    if op == "pow":
        return [f"np.power({p[0]}, {node.aux['exponent']!r}, out={out})"], True
    if op == "matmul":
        return [f"{out} = {p[0]} @ {p[1]}"], False
    if op in ("exp", "log", "tanh"):
        return [f"np.{op}({p[0]}, out={out})"], True
    if op == "abs":
        return [f"np.absolute({p[0]}, out={out})"], True
    if op == "sigmoid":
        return _sigmoid_into(p[0], out), True
    if op == "relu":
        return [f"np.maximum({p[0]}, 0.0, out={out})"], True
    if op == "clip":
        return [f"np.clip({p[0]}, {node.aux['low']!r}, {node.aux['high']!r}, out={out})"], True
    if op == "sum":
        axis, keepdims = node.aux["axis"], node.aux["keepdims"]
        return [f"np.sum({p[0]}, axis={axis!r}, keepdims={keepdims!r}, out={out})"], True
    if op == "max_reduce":
        return [f"{out}[...] = np.max({p[0]})"], True
    if op == "reshape":
        return [f"{out} = {p[0]}.reshape({node.aux['shape']!r})"], False
    if op == "transpose":
        return [f"{out} = {p[0]}.transpose({node.aux['axes']!r})"], False
    if op == "broadcast_to":
        return [f"np.copyto({out}, {p[0]})"], True
    if op == "getitem":
        return [f"{out} = np.array({p[0]}[{aux_ref(node.aux['index'])}], copy=True)"], False
    if op == "scatter":
        return [
            f"{out}[...] = 0.0",
            f"np.add.at({out}, {aux_ref(node.aux['index'])}, {p[0]})",
        ], True
    if op == "concat":
        args = ", ".join(p)
        return [f"np.concatenate(({args}), axis={node.aux['axis']!r}, out={out})"], True
    if op == "affine":
        activation = node.aux["activation"]
        lines = [f"_t = {p[0]} @ {p[1]}"]
        if node.aux["has_bias"]:
            lines.append(f"_t = _t + {p[2]}")
        if activation is None:
            return lines + [f"{out} = _t"], False
        if activation == "relu":
            return lines + [f"np.maximum(_t, 0.0, out={out})"], True
        if activation == "sigmoid":
            return lines + _sigmoid_into("_t", out), True
        if activation == "tanh":
            return lines + [f"np.tanh(_t, out={out})"], True
        raise UnsupportedOp(f"affine activation {activation!r}")
    # Derived helper masks (recomputed from live buffers each call).
    if op == "sign":
        return [f"np.sign({p[0]}, out={out})"], True
    if op == "gt_zero_mask":
        return [f"{out} = _mask_gt0({p[0]})"], False
    if op == "range_mask":
        return [f"{out} = _mask_range({p[0]}, {node.aux['low']!r}, {node.aux['high']!r})"], False
    if op == "ge_mask":
        return [f"{out} = _mask_ge({p[0]}, {p[1]})"], False
    if op == "lt_mask":
        return [f"{out} = _mask_lt({p[0]}, {p[1]})"], False
    if op == "argmax_mask":
        return [f"{out} = _amask({p[0]})"], False
    raise UnsupportedOp(f"no forward emitter for op {op!r}")


def _wrap_unb(expr: str, from_shape, to_shape) -> str:
    """Mirror ``_unbroadcast_data``, skipping the call when it is identity."""
    if from_shape == to_shape:
        return expr
    return f"_unb({expr}, {to_shape!r})"


def backward_contributions(
    node: TraceNode, graph: TraceGraph, aux_ref
) -> tuple[list[str], list[tuple[int, str]]]:
    """Backward rule for ``node``: (setup lines, [(parent idx, expr), ...]).

    Each expr evaluates to that parent's gradient contribution given the
    node gradient ``G[node.idx]``, mirroring the op's ``_grad_fn_data``
    text. The scheduler wraps exprs with first-write / accumulate logic.
    """
    i = node.idx
    g = f"G[{i}]"
    parents = node.parents
    shapes = [graph.nodes[j].shape for j in parents]
    p = [f"B[{j}]" for j in parents]
    op = node.op

    if op == "add":
        return [], [
            (parents[0], _wrap_unb(g, node.shape, shapes[0])),
            (parents[1], _wrap_unb(g, node.shape, shapes[1])),
        ]
    if op == "sub":
        return [], [
            (parents[0], _wrap_unb(g, node.shape, shapes[0])),
            (parents[1], _wrap_unb(f"-{g}", node.shape, shapes[1])),
        ]
    if op == "neg":
        return [], [(parents[0], f"-{g}")]
    if op == "mul":
        return [], [
            (parents[0], _wrap_unb(f"{g} * {p[1]}", node.shape, shapes[0])),
            (parents[1], _wrap_unb(f"{g} * {p[0]}", node.shape, shapes[1])),
        ]
    if op == "pow":
        e = node.aux["exponent"]
        return [], [(parents[0], f"{g} * np.power({p[0]}, {e - 1.0!r}) * {e!r}")]
    if op == "matmul":
        return [], [
            (parents[0], f"{g} @ {p[1]}.transpose()"),
            (parents[1], f"{p[0]}.transpose() @ {g}"),
        ]
    if op == "exp":
        return [], [(parents[0], f"{g} * B[{i}]")]
    if op == "log":
        return [], [(parents[0], f"{g} * np.power({p[0]}, -1.0)")]
    if op == "abs":
        return [], [(parents[0], f"{g} * np.sign({p[0]})")]
    if op == "tanh":
        return [], [(parents[0], f"{g} * (1.0 - B[{i}] * B[{i}])")]
    if op == "sigmoid":
        return [], [(parents[0], f"{g} * B[{i}] * (1.0 - B[{i}])")]
    if op == "relu":
        return [], [(parents[0], f"{g} * _mask_gt0({p[0]})")]
    if op == "clip":
        low, high = node.aux["low"], node.aux["high"]
        return [], [(parents[0], f"{g} * _mask_range({p[0]}, {low!r}, {high!r})")]
    if op == "sum":
        in_shape = shapes[0]
        kept = _sum_kept_shape(in_shape, node.aux["axis"], node.aux["keepdims"])
        src = g if kept is None else f"{g}.reshape({kept!r})"
        return [], [(parents[0], f"np.broadcast_to({src}, {in_shape!r}).copy()")]
    if op == "max_reduce":
        in_shape = shapes[0]
        return [], [(parents[0], f"np.broadcast_to({g} * _amask({p[0]}), {in_shape!r}).copy()")]
    if op == "reshape":
        return [], [(parents[0], f"{g}.reshape({shapes[0]!r})")]
    if op == "transpose":
        axes = node.aux["axes"]
        inverse = None if axes is None else tuple(int(k) for k in np.argsort(axes))
        return [], [(parents[0], f"{g}.transpose({inverse!r})")]
    if op == "broadcast_to":
        return [], [(parents[0], _wrap_unb(g, node.shape, shapes[0]))]
    if op == "getitem":
        index = aux_ref(node.aux["index"])
        return [], [(parents[0], f"_scat({g}, {index}, {shapes[0]!r})")]
    if op == "scatter":
        index = aux_ref(node.aux["index"])
        return [], [(parents[0], f"np.array({g}[{index}], copy=True)")]
    if op == "concat":
        axis = node.aux["axis"]
        ndim = len(node.shape)
        contribs = []
        offset = 0
        for j, parent in enumerate(parents):
            span = shapes[j][axis]
            index = [slice(None)] * ndim
            index[axis] = slice(offset, offset + span)
            offset += span
            contribs.append((parent, f"np.array({g}[{aux_ref(tuple(index))}], copy=True)"))
        return [], contribs
    if op == "affine":
        activation = node.aux["activation"]
        if activation == "relu":
            # (z > 0) == (out > 0) bitwise for relu, so the mask derives
            # from the output buffer exactly as the interpreter's does
            # from the preactivation.
            setup = [f"_gz = {g} * _mask_gt0(B[{i}])"]
        elif activation == "sigmoid":
            setup = [f"_gz = {g} * B[{i}] * (1.0 - B[{i}])"]
        elif activation == "tanh":
            setup = [f"_gz = {g} * (1.0 - B[{i}] * B[{i}])"]
        else:
            setup = [f"_gz = {g}"]
        contribs = [
            (parents[0], f"_gz @ {p[1]}.transpose()"),
            (parents[1], f"{p[0]}.transpose() @ _gz"),
        ]
        if node.aux["has_bias"]:
            contribs.append((parents[2], _wrap_unb("_gz", node.shape, shapes[2])))
        return setup, contribs
    if op == "maximum":
        return [], [
            (parents[0], _wrap_unb(f"{g} * _mask_ge({p[0]}, {p[1]})", node.shape, shapes[0])),
            (parents[1], _wrap_unb(f"{g} * _mask_lt({p[0]}, {p[1]})", node.shape, shapes[1])),
        ]
    raise UnsupportedOp(f"no backward emitter for op {op!r}")
