"""Module/parameter containers, modeled on ``torch.nn.Module``.

The one departure from torch is :meth:`Module.clone_with_parameters`, which
produces a *functional* copy of a module whose parameters are arbitrary
graph tensors. PACE uses it to build the "poisoned" surrogate
``theta' = theta - lr * grad`` whose forward pass stays differentiable with
respect to the poisoning queries (Eq. 9-10 of the paper).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor, is_sanitize_enabled, sanitize_scope


class Parameter(Tensor):
    """A tensor that is registered as a trainable module parameter."""

    __slots__ = ()

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural-network components.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__``; both are auto-registered and traversed recursively by
    :meth:`named_parameters`, :meth:`state_dict`, etc.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self.__dict__.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self.__dict__.pop(name, None)
        else:
            if name in self._parameters and isinstance(value, Tensor):
                # Allow a registered parameter to be replaced by a plain
                # graph tensor (functional substitution).
                self._parameters[name] = value
                return
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        parameters = self.__dict__.get("_parameters", {})
        if name in parameters:
            return parameters[name]
        modules = self.__dict__.get("_modules", {})
        if name in modules:
            return modules[name]
        raise AttributeError(f"{type(self).__name__} has no attribute {name!r}")

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(dotted_name, tensor)`` for every parameter, depth first."""
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    # train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Numpy snapshot of every parameter, keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load a snapshot produced by :meth:`state_dict` (strict keys)."""
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")
        for name, value in state.items():
            param = own[name]
            if param.data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: model {param.data.shape}, state {value.shape}"
                )
            param.data = np.asarray(value, dtype=np.float64).copy()

    # ------------------------------------------------------------------
    # functional substitution (the PACE-specific piece)
    # ------------------------------------------------------------------
    def clone_with_parameters(self, mapping: dict[str, Tensor]) -> "Module":
        """Return a structural copy whose parameters come from ``mapping``.

        ``mapping`` maps dotted parameter names (as produced by
        :meth:`named_parameters`) to replacement tensors — typically graph
        nodes such as ``theta - lr * grad``. Parameters absent from the
        mapping are shared with the original module. Non-parameter state is
        shared, so the clone is cheap and must be treated as read-only.
        """
        own = {name for name, _ in self.named_parameters()}
        unknown = sorted(set(mapping) - own)
        if unknown:
            raise KeyError(f"unknown parameter names in mapping: {unknown}")
        return self._clone_with(mapping, prefix="")

    def _clone_with(self, mapping: dict[str, Tensor], prefix: str) -> "Module":
        clone = object.__new__(type(self))
        object.__setattr__(clone, "_parameters", {})
        object.__setattr__(clone, "_modules", {})
        for key, value in self.__dict__.items():
            if key in ("_parameters", "_modules"):
                continue
            object.__setattr__(clone, key, value)
        for name, param in self._parameters.items():
            clone._parameters[name] = mapping.get(prefix + name, param)
        for name, module in self._modules.items():
            clone._modules[name] = module._clone_with(mapping, prefix=f"{prefix}{name}.")
        return clone

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        if is_sanitize_enabled():
            # Attach layer provenance so a SanitizeError deep in a stack
            # reports e.g. "ce.train_model > Sequential > Linear".
            with sanitize_scope(type(self).__name__):
                return self.forward(*args, **kwargs)
        return self.forward(*args, **kwargs)
