"""Deterministic random-number utilities.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`. Components never touch global numpy state,
so two experiments with the same seeds produce identical results regardless
of execution order.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def derive_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a generator for ``seed``.

    Passing an existing generator returns it unchanged (shared stream);
    passing ``None`` produces an OS-seeded generator; passing an int produces
    a fresh deterministic stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``count`` independent generators.

    Uses ``SeedSequence.spawn`` semantics so the children are statistically
    independent and stable across runs.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = derive_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


class RngMixin:
    """Mixin giving a class a private, lazily created ``self.rng``."""

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        self._rng = derive_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def reseed(self, seed: int | np.random.Generator | None) -> None:
        """Replace the stream, e.g. to rerun an experiment deterministically."""
        self._rng = derive_rng(seed)
