"""Shared utilities: seeded randomness, scale configuration, timing, errors."""

from repro.utils.config import ScaleConfig, get_scale
from repro.utils.errors import ReproError, SchemaError, QueryError, TrainingError
from repro.utils.log import configure as configure_logging
from repro.utils.log import get_logger
from repro.utils.rng import RngMixin, derive_rng, spawn_rngs
from repro.utils.timer import Timer, timed

__all__ = [
    "ScaleConfig",
    "get_scale",
    "get_logger",
    "configure_logging",
    "ReproError",
    "SchemaError",
    "QueryError",
    "TrainingError",
    "RngMixin",
    "derive_rng",
    "spawn_rngs",
    "Timer",
    "timed",
]
