"""Experiment scale configuration.

The paper's experiments run at a scale (10k training queries, 256GB RAM,
GPU training) that is far beyond a test environment. Every benchmark and
example in this repository reads a :class:`ScaleConfig` so the same harness
runs as a seconds-long smoke test or as a fuller sweep.

Select the scale with the ``REPRO_SCALE`` environment variable:

``smoke``   tiny models and workloads, used by CI and pytest-benchmark.
``small``   a few minutes per bench; shapes are already stable here.
``paper``   closest to the paper's parameter counts (hours on CPU).
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs that every experiment harness shares.

    Attributes:
        name: scale label (``smoke`` / ``small`` / ``paper``).
        rows_single_table: row count for single-table datasets (DMV).
        rows_multi_table: base row count for multi-table datasets.
        train_queries: size of the CE model's training workload.
        test_queries: size of the evaluation workload.
        poison_queries: default poisoning-workload size (paper: 450 = 5%).
        hidden_dim: hidden width of the CE models.
        train_epochs: epochs used to train a clean CE model.
        update_steps: incremental-update iterations on poisoning queries
            (paper's ``K`` = 10).
        generator_steps: outer training iterations for the poisoning
            generator (paper: 20).
        probe_queries_per_group: probe-workload size per property group used
            for model-type speculation.
    """

    name: str
    rows_single_table: int
    rows_multi_table: int
    train_queries: int
    test_queries: int
    poison_queries: int
    hidden_dim: int
    train_epochs: int
    update_steps: int
    generator_steps: int
    probe_queries_per_group: int

    @property
    def poison_ratio(self) -> float:
        """Poisoning queries as a fraction of the training workload."""
        return self.poison_queries / max(self.train_queries, 1)


_SCALES = {
    "smoke": ScaleConfig(
        name="smoke",
        rows_single_table=2_000,
        rows_multi_table=600,
        train_queries=120,
        test_queries=60,
        poison_queries=24,
        hidden_dim=16,
        train_epochs=30,
        update_steps=5,
        generator_steps=8,
        probe_queries_per_group=8,
    ),
    "small": ScaleConfig(
        name="small",
        rows_single_table=20_000,
        rows_multi_table=4_000,
        train_queries=1_000,
        test_queries=200,
        poison_queries=50,
        hidden_dim=32,
        train_epochs=60,
        update_steps=10,
        generator_steps=20,
        probe_queries_per_group=20,
    ),
    "paper": ScaleConfig(
        name="paper",
        rows_single_table=100_000,
        rows_multi_table=20_000,
        train_queries=10_000,
        test_queries=1_000,
        poison_queries=450,
        hidden_dim=128,
        train_epochs=100,
        update_steps=10,
        generator_steps=20,
        probe_queries_per_group=50,
    ),
}


def get_scale(name: str | None = None) -> ScaleConfig:
    """Return the scale config for ``name`` or the ``REPRO_SCALE`` env var."""
    resolved = name or os.environ.get("REPRO_SCALE", "smoke")
    try:
        return _SCALES[resolved]
    except KeyError:
        valid = ", ".join(sorted(_SCALES))
        raise ValueError(f"unknown scale {resolved!r}; expected one of: {valid}") from None


def available_scales() -> tuple[str, ...]:
    """Names accepted by :func:`get_scale`, in increasing size order."""
    return ("smoke", "small", "paper")
