"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming mistakes such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table, column, or join-graph definition is invalid or unknown."""


class QueryError(ReproError):
    """A query is malformed: empty join set, invalid bounds, unknown column."""


class TrainingError(ReproError):
    """A model cannot be trained or updated (empty workload, shape mismatch)."""


class EncodingError(ReproError):
    """A query vector does not match the encoder's layout."""


class PlanError(ReproError):
    """The planner cannot build a plan (disconnected join set, no tables)."""


class SerializationError(ReproError):
    """A checkpoint archive is malformed, mismatched, or from an unknown format."""


class StoreError(ReproError):
    """The artifact/run store is inconsistent: missing blob, digest mismatch,
    unknown run, or a manifest that does not match the requested pipeline."""


class ExecutionBudgetError(ReproError):
    """A query exceeded the executor's intermediate-result budget.

    Plays the role of a DBMS statement timeout: runaway joins are killed
    rather than executed, and both the DBMS's update path and the attacker
    treat such queries as unusable.
    """
