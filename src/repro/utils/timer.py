"""Wall-clock timing helpers used by the overhead experiments (Tables 9-10).

Both helpers read the injectable clock (:func:`repro.utils.clock.get_clock`),
so installing a :class:`~repro.utils.clock.FakeClock` makes every measured
span deterministic — which is what lets the durable pipeline layer promise
byte-identical resumed runs even for timing fields.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.utils.clock import get_clock


@dataclass
class Timer:
    """Accumulates named wall-clock spans.

    Example:
        >>> timer = Timer()
        >>> with timer.span("train"):
        ...     pass
        >>> timer.total("train") >= 0.0
        True
    """

    spans: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def span(self, name: str):
        clock = get_clock()
        start = clock()
        try:
            yield self
        finally:
            elapsed = clock() - start
            self.spans[name] = self.spans.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        """Accumulated seconds for ``name`` (0.0 if never recorded)."""
        return self.spans.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Mean seconds per recorded span for ``name``."""
        count = self.counts.get(name, 0)
        return self.spans.get(name, 0.0) / count if count else 0.0

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all accumulated totals."""
        return dict(self.spans)


@contextmanager
def timed():
    """Yield a zero-arg callable returning seconds elapsed since entry."""
    clock = get_clock()
    start = clock()
    yield lambda: clock() - start
