"""Library logging: non-CLI modules route their output through here.

The static-analysis rule R004 (print-in-library) forbids bare ``print()``
calls outside the CLI entry points, because stray stdout writes pollute
benchmark tables and pytest output. Library modules instead do::

    from repro.utils.log import get_logger

    _log = get_logger(__name__)
    _log.info("...")

By default the package root logger writes plain messages to the *current*
``sys.stdout`` (so benchmark scripts keep their table output and pytest's
capture still works), at the level named by ``REPRO_LOG_LEVEL`` (default
``INFO``). Applications can call :func:`configure` to override.
"""

from __future__ import annotations

import logging
import os
import sys

_ROOT_NAME = "repro"
_configured = False


class _StdoutProxy:
    """File-like object that always resolves the current ``sys.stdout``.

    Handlers capture their stream once at construction; tests (pytest's
    ``capsys``) swap ``sys.stdout`` afterwards, so the handler must defer
    the lookup to write time.
    """

    def write(self, text: str) -> int:
        return sys.stdout.write(text)

    def flush(self) -> None:  # noqa: R008 — file protocol, called by logging internals
        sys.stdout.flush()


def configure(level: int | str | None = None, *, force: bool = False) -> logging.Logger:
    """Attach the plain-text stdout handler to the ``repro`` root logger.

    Idempotent unless ``force`` is true. ``level`` defaults to the
    ``REPRO_LOG_LEVEL`` environment variable, then ``INFO``.
    """
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    if _configured and not force:
        return root
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "INFO")
    if isinstance(level, str):
        level = level.upper()
    handler = logging.StreamHandler(_StdoutProxy())
    handler.setFormatter(logging.Formatter("%(message)s"))
    root.handlers[:] = [handler]
    root.setLevel(level)
    root.propagate = False
    _configured = True
    return root


def get_logger(name: str) -> logging.Logger:
    """Module-level logger, namespaced under the package root.

    Usage: ``_log = get_logger(__name__)`` at module scope.
    """
    configure()
    if name != _ROOT_NAME and not name.startswith(_ROOT_NAME + "."):
        name = f"{_ROOT_NAME}.{name}"
    return logging.getLogger(name)
