"""Injectable wall clock for timing-sensitive code paths.

Model-type speculation (Section 4.1) feeds *measured latencies* into the
performance-vector comparison, which makes any test exercising it hostage
to scheduler jitter. Code that times estimator calls should fetch its
clock through :func:`get_clock` so tests (and the determinism-sensitive
harness paths) can swap in a :class:`FakeClock` via :func:`use_clock`.

The default clock is ``time.perf_counter``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

#: A clock is any zero-argument callable returning monotonic seconds.
Clock = Callable[[], float]

_current_clock: Clock = time.perf_counter  # safe: R015, R016 workers pin their clock once in the pool initializer, before any timing runs


def get_clock() -> Clock:
    """The currently installed clock (defaults to ``time.perf_counter``)."""
    return _current_clock


def install_clock(clock: Clock) -> None:
    """Install ``clock`` process-wide with no restore.

    For worker-process initializers (the parallel harness grid), where the
    clock should stay pinned for the process's whole life; interactive and
    test code should prefer the scoped :func:`use_clock`.
    """
    global _current_clock
    _current_clock = clock


@contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Install ``clock`` as the process-wide clock inside the block."""
    global _current_clock
    previous = _current_clock
    _current_clock = clock
    try:
        yield clock
    finally:
        _current_clock = previous


class ManualClock:
    """A clock that only moves when told to.

    Unlike :class:`FakeClock` (which ticks on every read), reading a
    ManualClock is side-effect free; simulation drivers advance it
    explicitly — the serve-layer traffic replay sets it to each request's
    arrival time and to each service instant, so queueing delays and
    deadline expiries are exact functions of the seeded arrival process.

    The optional ``domain`` label names the clock's timebase. The cluster
    layer runs one clock domain per worker process (``worker-3``) plus the
    router's (``router``); every RPC frame carries the router's ``now`` and
    workers :meth:`sync` onto it, so each domain only ever moves forward
    and all domains agree on simulated time at every message boundary.
    """

    def __init__(self, start: float = 0.0, domain: str = "main") -> None:
        self._now = float(start)
        self.domain = str(domain)

    def __call__(self) -> float:
        return self._now

    def __repr__(self) -> str:
        return f"ManualClock(domain={self.domain!r}, now={self._now!r})"

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0.0:
            raise ValueError(f"cannot advance by a negative duration: {seconds}")
        self._now += float(seconds)
        return self._now

    def set(self, now: float) -> float:
        """Jump to an absolute instant (monotonicity enforced)."""
        if now < self._now:
            raise ValueError(
                f"clock domain {self.domain!r} cannot go backwards: {now} < {self._now}"
            )
        self._now = float(now)
        return self._now

    def sync(self, now: float) -> float:
        """Fold another domain's instant into this one (take the max).

        Message-driven domains (cluster workers) call this with the
        sender's timestamp: time never goes backwards, and re-delivered
        frames carrying an already-seen instant are harmless no-ops —
        exactly what retry-safe RPC needs.
        """
        if now > self._now:
            self._now = float(now)
        return self._now


class FakeClock:
    """A deterministic clock: every call advances time by a fixed tick.

    With a fake clock installed, every timed section measures exactly
    ``tick`` seconds regardless of real elapsed time, so latency-derived
    features become constants and timing-dependent decisions (like type
    speculation's latency section) are reproducible bit-for-bit.
    """

    def __init__(self, tick: float = 1e-3, start: float = 0.0) -> None:
        if tick <= 0.0:
            raise ValueError(f"tick must be positive, got {tick}")
        self.tick = float(tick)
        self._now = float(start)

    def __call__(self) -> float:
        self._now += self.tick
        return self._now
