"""Query-driven learned cardinality estimation (the attack's target)."""

from repro.ce.base import CardinalityEstimator
from repro.ce.deployment import CallableGate, DeployedEstimator, ExecutionReport, Gate
from repro.ce.models import FCN, MSCN, FCNPool, LinearCE, LSTMCE, RNNCE
from repro.ce.registry import (
    MODEL_REGISTRY,
    MODEL_TYPES,
    NEURAL_MODEL_TYPES,
    create_model,
    register_model,
)
from repro.ce.trainer import (
    DEFAULT_UPDATE_LR,
    DEFAULT_UPDATE_STEPS,
    TrainConfig,
    TrainResult,
    evaluate_q_errors,
    incremental_update,
    train_model,
    training_loss,
    unrolled_update,
)

__all__ = [
    "CardinalityEstimator",
    "FCN",
    "FCNPool",
    "MSCN",
    "RNNCE",
    "LSTMCE",
    "LinearCE",
    "MODEL_REGISTRY",
    "MODEL_TYPES",
    "NEURAL_MODEL_TYPES",
    "create_model",
    "register_model",
    "TrainConfig",
    "TrainResult",
    "train_model",
    "training_loss",
    "incremental_update",
    "unrolled_update",
    "evaluate_q_errors",
    "DEFAULT_UPDATE_LR",
    "DEFAULT_UPDATE_STEPS",
    "DeployedEstimator",
    "ExecutionReport",
    "Gate",
    "CallableGate",
]
