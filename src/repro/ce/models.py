"""The six query-driven CE model architectures the paper evaluates.

==========  =====================================================
``linear``  single affine layer + sigmoid (the robust baseline)
``fcn``     fully connected net (Dutt et al., 2019)
``fcn_pool``three FCN branches pooled (Kim et al., 2022)
``mscn``    multi-set convolutional net (Kipf et al., 2019)
``rnn``     recurrent net over encoding chunks (Ortiz et al., 2019)
``lstm``    LSTM variant of the same
==========  =====================================================

All consume the shared flat query encoding and emit a normalized
log-cardinality in ``(0, 1)``.
"""

from __future__ import annotations

import numpy as np

from repro.ce.base import CardinalityEstimator
from repro.nn.layers import Linear, ReLU, Sequential, Sigmoid, mlp
from repro.nn.recurrent import LSTM, RNN, split_sequence
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import derive_rng
from repro.workload.encoding import QueryEncoder


class LinearCE(CardinalityEstimator):
    """Linear regression head; few parameters, weak fit, strong robustness."""

    model_type = "linear"

    def __init__(self, encoder: QueryEncoder, hidden_dim: int = 0, num_layers: int = 1,
                 seed=0) -> None:
        super().__init__(encoder)
        rng = derive_rng(seed)
        self.head = Linear(self.input_dim, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(x).sigmoid().reshape((x.shape[0],))


class FCN(CardinalityEstimator):
    """Lightweight fully connected network."""

    model_type = "fcn"

    def __init__(self, encoder: QueryEncoder, hidden_dim: int = 64, num_layers: int = 2,
                 seed=0) -> None:
        super().__init__(encoder)
        rng = derive_rng(seed)
        self.net = mlp(
            self.input_dim,
            [hidden_dim] * num_layers,
            1,
            rng=rng,
            final_activation=Sigmoid(),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x).reshape((x.shape[0],))


class FCNPool(CardinalityEstimator):
    """Three FCN branches (join / predicates / full) pooled by averaging."""

    model_type = "fcn_pool"

    def __init__(self, encoder: QueryEncoder, hidden_dim: int = 64, num_layers: int = 2,
                 seed=0) -> None:
        super().__init__(encoder)
        rng = derive_rng(seed)
        join_dim = encoder.num_tables
        pred_dim = encoder.dim - join_dim
        self._join_dim = join_dim
        self.join_branch = mlp(join_dim, [hidden_dim] * (num_layers - 1), hidden_dim, rng=rng)
        self.pred_branch = mlp(pred_dim, [hidden_dim] * (num_layers - 1), hidden_dim, rng=rng)
        self.full_branch = mlp(self.input_dim, [hidden_dim] * (num_layers - 1), hidden_dim,
                               rng=rng)
        self.head = Sequential(ReLU(), Linear(hidden_dim, 1, rng=rng), Sigmoid())

    def forward(self, x: Tensor) -> Tensor:
        join_part = x[:, : self._join_dim]
        pred_part = x[:, self._join_dim :]
        pooled = (
            self.join_branch(join_part)
            + self.pred_branch(pred_part)
            + self.full_branch(x)
        ) * (1.0 / 3.0)
        return self.head(pooled).reshape((x.shape[0],))


class MSCN(CardinalityEstimator):
    """Multi-set convolutional network.

    Each joined table contributes a set element ``[one_hot(table), bounds of
    its attributes]`` passed through a shared MLP; elements are averaged
    with the join bits as weights (absent tables contribute nothing), then a
    final MLP produces the estimate. This is the per-table set formulation
    of Kipf et al.'s table/join/predicate sets, adapted to the shared flat
    encoding.
    """

    model_type = "mscn"

    def __init__(self, encoder: QueryEncoder, hidden_dim: int = 64, num_layers: int = 2,
                 seed=0) -> None:
        super().__init__(encoder)
        rng = derive_rng(seed)
        self._num_tables = encoder.num_tables
        # Per-table gather indices into the flat encoding's bounds section.
        self._max_attrs = max(
            (len(encoder.schema.attributes_of(t)) for t in encoder.schema.table_names),
            default=0,
        )
        self._gather: list[np.ndarray] = []
        for t in encoder.schema.table_names:
            positions: list[int] = []
            for table, col in encoder.schema.attributes_of(t):
                lo, hi = encoder.bounds_positions(table, col)
                positions.extend((lo, hi))
            self._gather.append(np.array(positions, dtype=np.int64))
        element_dim = self._num_tables + 2 * self._max_attrs
        self.set_mlp = mlp(element_dim, [hidden_dim] * (num_layers - 1), hidden_dim, rng=rng)
        self.head = Sequential(
            ReLU(), Linear(hidden_dim, hidden_dim, rng=rng), ReLU(),
            Linear(hidden_dim, 1, rng=rng), Sigmoid(),
        )

    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        join_bits = x[:, : self._num_tables]
        pooled = None
        for t in range(self._num_tables):
            one_hot = np.zeros((1, self._num_tables))
            one_hot[0, t] = 1.0
            ident = Tensor(one_hot).broadcast_to((batch, self._num_tables))
            positions = self._gather[t]
            if positions.size:
                bounds = x[:, positions]
            else:
                bounds = Tensor(np.zeros((batch, 0)))
            pad_width = 2 * self._max_attrs - positions.size
            if pad_width > 0:
                default = np.tile(
                    np.array([0.0, 1.0]), pad_width // 2
                ) if pad_width % 2 == 0 else np.zeros(pad_width)
                pad = Tensor(np.tile(default, (batch, 1)))
                bounds = concat([bounds, pad], axis=1)
            element = self.set_mlp(concat([ident, bounds], axis=1))
            weight = join_bits[:, t : t + 1]
            contribution = element * weight
            pooled = contribution if pooled is None else pooled + contribution
        denom = join_bits.sum(axis=1, keepdims=True).clip(1.0, float(self._num_tables))
        pooled = pooled / denom
        return self.head(pooled).reshape((batch,))


class RNNCE(CardinalityEstimator):
    """Recurrent estimator consuming the encoding in fixed-size chunks."""

    model_type = "rnn"
    _recurrent_cls = RNN

    def __init__(self, encoder: QueryEncoder, hidden_dim: int = 64, num_layers: int = 1,
                 seed=0, step_size: int = 8) -> None:
        super().__init__(encoder)
        rng = derive_rng(seed)
        self.step_size = step_size
        self.recurrent = self._recurrent_cls(step_size, hidden_dim, rng=rng)
        self.head = Sequential(Linear(hidden_dim, 1, rng=rng), Sigmoid())

    def forward(self, x: Tensor) -> Tensor:
        sequence = split_sequence(x, self.step_size)
        hidden = self.recurrent(sequence)
        return self.head(hidden).reshape((x.shape[0],))


class LSTMCE(RNNCE):
    """LSTM variant of the recurrent estimator."""

    model_type = "lstm"
    _recurrent_cls = LSTM
