"""Registry of CE model types (the candidate set for type speculation)."""

from __future__ import annotations

from repro.ce.base import CardinalityEstimator
from repro.ce.models import FCN, MSCN, FCNPool, LinearCE, LSTMCE, RNNCE
from repro.utils.errors import ReproError
from repro.workload.encoding import QueryEncoder

MODEL_REGISTRY: dict[str, type[CardinalityEstimator]] = {
    cls.model_type: cls for cls in (FCN, FCNPool, MSCN, RNNCE, LSTMCE, LinearCE)
}

#: Paper's candidate order (Section 7.1).
MODEL_TYPES: tuple[str, ...] = ("fcn", "fcn_pool", "mscn", "rnn", "lstm", "linear")

#: Neural (attackable-by-gradient) model types — everything but linear is
#: deep; linear is included in the candidate set but barely attackable.
NEURAL_MODEL_TYPES: tuple[str, ...] = ("fcn", "fcn_pool", "mscn", "rnn", "lstm")


def create_model(
    model_type: str,
    encoder: QueryEncoder,
    hidden_dim: int = 64,
    num_layers: int = 2,
    seed=0,
) -> CardinalityEstimator:
    """Instantiate a CE model by registry name."""
    try:
        cls = MODEL_REGISTRY[model_type]
    except KeyError:
        raise ReproError(
            f"unknown CE model type {model_type!r}; expected one of {MODEL_TYPES}"
        ) from None
    return cls(encoder, hidden_dim=hidden_dim, num_layers=num_layers, seed=seed)


def register_model(cls: type[CardinalityEstimator]) -> type[CardinalityEstimator]:
    """Add a new candidate model type (the paper's K -> K+1 extension remark)."""
    if not issubclass(cls, CardinalityEstimator):
        raise ReproError(f"{cls!r} is not a CardinalityEstimator subclass")
    if cls.model_type in MODEL_REGISTRY:
        raise ReproError(f"model type {cls.model_type!r} is already registered")
    MODEL_REGISTRY[cls.model_type] = cls
    return cls
