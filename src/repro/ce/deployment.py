"""The deployed (black-box) learned estimator the attacker interacts with.

Models the paper's threat surface exactly (Section 2.2): the attacker can

* run ``COUNT(*)`` queries (:meth:`DeployedEstimator.count`),
* read the optimizer's estimate via ``EXPLAIN`` (:meth:`explain`),
* execute queries, which the DBMS then uses to incrementally retrain its
  CE model (:meth:`execute`) — optionally after an anomaly filter.

Nothing else is exposed: the model object, its type, and its parameters
stay private attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ce.base import CardinalityEstimator
from repro.ce.trainer import (
    DEFAULT_UPDATE_LR,
    DEFAULT_UPDATE_STEPS,
    incremental_update,
)
from repro.db.executor import Executor
from repro.db.query import LabeledQuery, Query
from repro.utils.clock import get_clock
from repro.utils.errors import TrainingError
from repro.workload.workload import Workload


@dataclass
class ExecutionReport:
    """What happened when a batch of queries was executed."""

    executed: int
    rejected: int
    update_losses: list[float]


class DeployedEstimator:
    """A learned CE model deployed inside a database.

    Args:
        model: the trained CE model (becomes private).
        executor: ground-truth executor of the underlying database.
        update_steps/update_lr: the DBMS's incremental-update mechanism
            (Eq. 9 parameters).
        anomaly_filter: optional callable ``(list[Query]) -> ndarray[bool]``
            returning True for queries to *reject* from the update (the
            defense the PACE detector is designed to slip past).
    """

    def __init__(
        self,
        model: CardinalityEstimator,
        executor: Executor,
        update_steps: int = DEFAULT_UPDATE_STEPS,
        update_lr: float = DEFAULT_UPDATE_LR,
        anomaly_filter=None,
    ) -> None:
        self._model = model
        self._executor = executor
        self.update_steps = update_steps
        self.update_lr = update_lr
        self.anomaly_filter = anomaly_filter
        self.history: list[LabeledQuery] = []

    # ------------------------------------------------------------------
    # the attacker-visible surface
    # ------------------------------------------------------------------
    def explain(self, query: Query) -> float:
        """The optimizer's cardinality estimate (``EXPLAIN``)."""
        return float(self._model.estimate([query])[0])

    def explain_many(self, queries) -> np.ndarray:
        """Vectorized :meth:`explain`, with wall-clock timing retained."""
        return self._model.estimate(list(queries))

    def explain_timed(self, queries) -> tuple[np.ndarray, float]:
        """Estimates plus elapsed seconds on the ambient clock.

        Timing uses :func:`repro.utils.clock.get_clock`, so tests can make
        latencies deterministic with :func:`~repro.utils.clock.use_clock`.
        """
        clock = get_clock()
        start = clock()
        estimates = self._model.estimate(list(queries))
        return estimates, clock() - start

    def count(self, query: Query) -> int:
        """True cardinality via ``COUNT(*)`` (the attacker may execute SQL)."""
        return self._executor.count(query)

    def execute(self, queries) -> ExecutionReport:
        """Execute queries; the DBMS retrains its CE model on them.

        Mirrors the paper's attack step (Section 3.4): executed queries and
        their true cardinalities become incremental training data. Queries
        flagged by the anomaly filter are executed but *not* used to update
        the model.
        """
        queries = list(queries)
        if not queries:
            raise TrainingError("execute() needs at least one query")
        if self.anomaly_filter is not None:
            abnormal = np.asarray(self.anomaly_filter(queries), dtype=bool)
        else:
            abnormal = np.zeros(len(queries), dtype=bool)
        accepted = [q for q, bad in zip(queries, abnormal) if not bad]
        rejected = int(abnormal.sum())
        if not accepted:
            return ExecutionReport(executed=len(queries), rejected=rejected, update_losses=[])
        workload = Workload.from_queries(accepted, self._executor, drop_empty=True)
        if len(workload) == 0:
            return ExecutionReport(executed=len(queries), rejected=rejected, update_losses=[])
        self.history.extend(workload.examples)
        losses = incremental_update(
            self._model, workload, steps=self.update_steps, lr=self.update_lr
        )
        return ExecutionReport(executed=len(queries), rejected=rejected, update_losses=losses)

    # ------------------------------------------------------------------
    # evaluation-only access (not part of the attacker surface)
    # ------------------------------------------------------------------
    def inspect_model(self) -> CardinalityEstimator:
        """The private model — for the evaluation harness, not the attacker."""
        return self._model

    def snapshot(self) -> dict[str, np.ndarray]:
        """Parameter snapshot, so experiments can restore a clean model."""
        return self._model.state_dict()

    def restore(self, state: dict[str, np.ndarray]) -> None:
        self._model.load_state_dict(state)
