"""The deployed (black-box) learned estimator the attacker interacts with.

Models the paper's threat surface exactly (Section 2.2): the attacker can

* run ``COUNT(*)`` queries (:meth:`DeployedEstimator.count`),
* read the optimizer's estimate via ``EXPLAIN`` (:meth:`explain`),
* execute queries, which the DBMS then uses to incrementally retrain its
  CE model (:meth:`execute`) — after consulting the configured
  :class:`Gate` stack.

Nothing else is exposed: the model object, its type, and its parameters
stay private attributes.

Gates
-----
A :class:`Gate` is the uniform defense hook the DBMS consults around each
incremental update. It has two touch points:

* :meth:`Gate.screen` — *before* the update, mark queries to reject from
  the update stream (the VAE detector and the poison classifier plug in
  here);
* :meth:`Gate.review_update` — *after* the update, veto the new
  parameters, rolling the model back to its pre-update state (the serving
  layer's validation-gated promotion guard plugs in here).

The legacy ``anomaly_filter`` callable attribute is still honoured: it is
wrapped into a :class:`CallableGate` at execute time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.ce.base import CardinalityEstimator
from repro.ce.trainer import (
    DEFAULT_UPDATE_LR,
    DEFAULT_UPDATE_STEPS,
    incremental_update,
)
from repro.db.executor import Executor
from repro.db.query import LabeledQuery, Query
from repro.utils.clock import get_clock
from repro.utils.errors import TrainingError
from repro.workload.workload import Workload


class Gate:
    """Uniform defense hook consulted by :meth:`DeployedEstimator.execute`.

    Subclasses override :meth:`screen` (pre-update query rejection) and/or
    :meth:`review_update` (post-update veto). The base class is a no-op on
    both, so a gate only has to implement the half it cares about.
    """

    #: Label used in :attr:`ExecutionReport.rejected_by` accounting.
    name: str = "gate"

    def screen(self, queries: list[Query]) -> np.ndarray:
        """Boolean mask over ``queries``; True = reject from the update."""
        return np.zeros(len(queries), dtype=bool)

    def review_update(
        self, model: CardinalityEstimator, workload: Workload
    ) -> bool:
        """Whether the just-applied update may stand (False = roll back)."""
        return True


class CallableGate(Gate):
    """Adapter wrapping a plain ``(queries) -> bool mask`` callable."""

    def __init__(self, fn, name: str = "anomaly_filter") -> None:
        self._fn = fn
        self.name = name

    def screen(self, queries: list[Query]) -> np.ndarray:
        return np.asarray(self._fn(queries), dtype=bool)


@dataclass
class ExecutionReport:
    """What happened when a batch of queries was executed.

    Attributes:
        executed: queries the DBMS ran (all of them — gates only affect
            the *update*, not execution).
        rejected: queries at least one gate screened out of the update.
        update_losses: per-step losses of the incremental update (empty
            when no update ran).
        rejected_by: per-gate count of screened queries (a query flagged
            by several gates counts once per gate).
        updated: an incremental update was applied and kept.
        rolled_back: an update was applied but vetoed by a gate's
            :meth:`Gate.review_update`, and the parameters were restored.
    """

    executed: int
    rejected: int
    update_losses: list[float]
    rejected_by: dict[str, int] = field(default_factory=dict)
    updated: bool = False
    rolled_back: bool = False


class DeployedEstimator:
    """A learned CE model deployed inside a database.

    Args:
        model: the trained CE model (becomes private).
        executor: ground-truth executor of the underlying database.
        update_steps/update_lr: the DBMS's incremental-update mechanism
            (Eq. 9 parameters).
        anomaly_filter: legacy hook — a callable ``(list[Query]) ->
            ndarray[bool]`` returning True for queries to *reject* from
            the update; wrapped into a :class:`CallableGate`.
        gates: first-class :class:`Gate` instances consulted around every
            incremental update, in order.
    """

    def __init__(
        self,
        model: CardinalityEstimator,
        executor: Executor,
        update_steps: int = DEFAULT_UPDATE_STEPS,
        update_lr: float = DEFAULT_UPDATE_LR,
        anomaly_filter=None,
        gates: list[Gate] | None = None,
    ) -> None:
        self._model = model
        self._executor = executor
        self.update_steps = update_steps
        self.update_lr = update_lr
        self.anomaly_filter = anomaly_filter
        self.gates: list[Gate] = list(gates or [])
        self.history: list[LabeledQuery] = []
        # One retrain round (screen -> label -> update -> review) is a
        # single critical section: two interleaved rounds would snapshot
        # and restore each other's parameters. The estimate hot path
        # never takes this lock.
        self._execute_lock = threading.Lock()

    def add_gate(self, gate: Gate) -> None:
        """Append a gate to the update-defense stack."""
        self.gates.append(gate)

    def _active_gates(self) -> list[Gate]:
        """The gate stack, with the legacy callable wrapped on the fly."""
        active = list(self.gates)
        if self.anomaly_filter is not None:
            active.insert(0, CallableGate(self.anomaly_filter))
        return active

    # ------------------------------------------------------------------
    # the attacker-visible surface
    # ------------------------------------------------------------------
    def explain(self, query: Query) -> float:
        """The optimizer's cardinality estimate (``EXPLAIN``)."""
        return float(self._model.estimate([query])[0])

    def explain_many(self, queries) -> np.ndarray:
        """Vectorized :meth:`explain`, with wall-clock timing retained."""
        return self._model.estimate(list(queries))

    def explain_encoded(self, encodings: np.ndarray) -> np.ndarray:
        """Estimates for pre-encoded queries (one fused forward pass).

        The serving layer's micro-batcher uses this to answer a whole
        batch with a single ``encode_many`` + forward instead of one
        round-trip per request.
        """
        return self._model.estimate_encoded(encodings)

    def explain_timed(self, queries) -> tuple[np.ndarray, float]:
        """Estimates plus elapsed seconds on the ambient clock.

        Timing uses :func:`repro.utils.clock.get_clock`, so tests can make
        latencies deterministic with :func:`~repro.utils.clock.use_clock`.
        """
        clock = get_clock()
        start = clock()
        estimates = self._model.estimate(list(queries))
        return estimates, clock() - start

    def count(self, query: Query) -> int:
        """True cardinality via ``COUNT(*)`` (the attacker may execute SQL)."""
        return self._executor.count(query)

    def execute(self, queries) -> ExecutionReport:
        """Execute queries; the DBMS retrains its CE model on them.

        Mirrors the paper's attack step (Section 3.4): executed queries and
        their true cardinalities become incremental training data. Queries
        flagged by a gate's :meth:`Gate.screen` are executed but *not* used
        to update the model; after the update, every gate's
        :meth:`Gate.review_update` may veto it, restoring the pre-update
        parameters (guarded promotion).
        """
        queries = list(queries)
        if not queries:
            raise TrainingError("execute() needs at least one query")
        with self._execute_lock:
            gates = self._active_gates()
            abnormal = np.zeros(len(queries), dtype=bool)
            rejected_by: dict[str, int] = {}
            for gate in gates:
                mask = np.asarray(gate.screen(queries), dtype=bool)
                flagged = int(mask.sum())
                if flagged:
                    rejected_by[gate.name] = rejected_by.get(gate.name, 0) + flagged
                abnormal |= mask
            accepted = [q for q, bad in zip(queries, abnormal) if not bad]
            rejected = int(abnormal.sum())
            if not accepted:
                return ExecutionReport(
                    executed=len(queries), rejected=rejected, update_losses=[],
                    rejected_by=rejected_by,
                )
            workload = Workload.from_queries(accepted, self._executor, drop_empty=True)
            if len(workload) == 0:
                return ExecutionReport(
                    executed=len(queries), rejected=rejected, update_losses=[],
                    rejected_by=rejected_by,
                )
            self.history.extend(workload.examples)
            snapshot = self._model.state_dict()
            losses = incremental_update(  # safe: R014 serializing whole retrain rounds is the lock's purpose; the estimate hot path never takes it
                self._model, workload, steps=self.update_steps, lr=self.update_lr
            )
            for gate in gates:
                if not gate.review_update(self._model, workload):
                    self._model.load_state_dict(snapshot)
                    return ExecutionReport(
                        executed=len(queries), rejected=rejected,
                        update_losses=losses, rejected_by=rejected_by,
                        updated=False, rolled_back=True,
                    )
            return ExecutionReport(
                executed=len(queries), rejected=rejected, update_losses=losses,
                rejected_by=rejected_by, updated=True,
            )

    # ------------------------------------------------------------------
    # evaluation-only access (not part of the attacker surface)
    # ------------------------------------------------------------------
    def inspect_model(self) -> CardinalityEstimator:
        """The private model — for the evaluation harness, not the attacker."""
        return self._model

    def snapshot(self) -> dict[str, np.ndarray]:
        """Parameter snapshot, so experiments can restore a clean model."""
        return self._model.state_dict()

    def restore(self, state: dict[str, np.ndarray]) -> None:
        self._model.load_state_dict(state)
