"""Base class for query-driven cardinality estimators.

All six paper models share this contract: the network maps a query
encoding to a *normalized log-cardinality* in ``(0, 1)`` (final sigmoid —
the paper notes this is why estimates are always strictly positive), and
the estimator denormalizes with a per-model log cap fitted from its
training workload.
"""

from __future__ import annotations

import numpy as np

from repro.nn.compile import compiled_forward
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad
from repro.utils.errors import TrainingError
from repro.workload.encoding import QueryEncoder

#: Floor on denormalized cardinalities (sigmoid never emits exactly 0).
_MIN_CARD = 1.0


class CardinalityEstimator(Module):
    """Common functionality: normalization, estimation, loss plumbing.

    Subclasses implement :meth:`forward` mapping a ``(batch, dim)`` tensor
    of query encodings to a ``(batch,)`` tensor of normalized
    log-cardinalities in ``(0, 1)``.

    Attributes:
        model_type: registry name (``fcn``, ``mscn``, ...), set per class.
    """

    model_type: str = "abstract"

    def __init__(self, encoder: QueryEncoder) -> None:
        super().__init__()
        self.encoder = encoder
        self.input_dim = encoder.dim
        # Log-cardinality cap; calibrated from the training workload before
        # the first fit (see calibrate_normalization).
        self.log_cap = 20.0

    # ------------------------------------------------------------------
    # normalization
    # ------------------------------------------------------------------
    def calibrate_normalization(self, cardinalities: np.ndarray) -> None:
        """Fit the log cap so training labels map well inside ``(0, 1)``."""
        cards = np.asarray(cardinalities, dtype=np.float64)
        if cards.size == 0 or np.any(cards <= 0):
            raise TrainingError("normalization needs a non-empty positive cardinality sample")
        self.log_cap = float(np.log(cards.max()) * 1.2 + 1.0)

    def normalize_log(self, cardinalities: np.ndarray) -> np.ndarray:
        """Map positive cardinalities to normalized log space ``(0, 1)``."""
        cards = np.maximum(np.asarray(cardinalities, dtype=np.float64), _MIN_CARD)
        return np.clip(np.log(cards) / self.log_cap, 1e-6, 1.0 - 1e-6)

    def denormalize_log(self, normalized: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalize_log` (numpy arrays)."""
        return np.exp(np.asarray(normalized) * self.log_cap)

    # ------------------------------------------------------------------
    # checkpointing (parameters + non-parameter estimator state)
    # ------------------------------------------------------------------
    #: Reserved state-dict key carrying the calibrated log cap. The plain
    #: Module state dict holds parameters only; an estimator restored
    #: without its log cap would denormalize into a different scale, so
    #: durable checkpoints must round-trip both.
    _LOG_CAP_KEY = "__meta__.log_cap"

    def full_state_dict(self) -> dict[str, np.ndarray]:
        """Parameters plus normalization state — enough to restore bitwise."""
        state = self.state_dict()
        state[self._LOG_CAP_KEY] = np.float64(self.log_cap)
        return state

    def load_full_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`full_state_dict` (tolerates a parameters-only dict)."""
        state = dict(state)
        cap = state.pop(self._LOG_CAP_KEY, None)
        if cap is not None:
            self.log_cap = float(np.asarray(cap).reshape(-1)[0])
        self.load_state_dict(state)

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def estimate_encoded(self, encodings: np.ndarray) -> np.ndarray:
        """Estimated cardinalities for pre-encoded queries (no gradients)."""
        x = Tensor(np.atleast_2d(encodings))
        out = compiled_forward(self, x)
        if out is None:
            with no_grad():
                out = self.forward(x)
        return self.denormalize_log(out.data)

    def estimate(self, queries) -> np.ndarray:
        """Estimated cardinalities for :class:`~repro.db.query.Query` objects."""
        encodings = self.encoder.encode_many(queries)
        return self.estimate_encoded(encodings)

    # ------------------------------------------------------------------
    # introspection used by the surrogate-acquisition experiments
    # ------------------------------------------------------------------
    def flat_parameters(self) -> np.ndarray:
        """All parameters concatenated (parameter-similarity metric, §7.4)."""
        return np.concatenate([p.data.reshape(-1) for p in self.parameters()])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(type={self.model_type!r}, "
            f"params={self.num_parameters()}, log_cap={self.log_cap:.2f})"
        )
