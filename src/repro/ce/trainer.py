"""Training, incremental updating, and unrolled (differentiable) updating.

Three update regimes matter in the paper:

* initial training (Eq. 1): Adam over the training workload;
* incremental update (Eq. 9): ``K`` full-batch gradient-descent steps on
  newly executed queries — the mechanism the attack exploits;
* unrolled update: the same ``K`` steps expressed as a differentiable graph
  so the poisoning objective (Eq. 10) can be optimized through it.

The optimization loss is MSE in normalized log space (stable); evaluation
is plain Q-error (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ce.base import CardinalityEstimator
from repro.nn.compile import CompiledInput, compiled_call
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, grad, no_grad, sanitize_scope
from repro.utils.errors import TrainingError
from repro.utils.rng import derive_rng
from repro.workload.workload import Workload

#: Learning rate of the DBMS's incremental-update mechanism (Eq. 9's eta).
#: Full-batch gradient descent on normalized-log MSE; deliberately larger
#: than the Adam training rate because it takes only K(=10) steps.
DEFAULT_UPDATE_LR = 2.0

#: Paper's K: incremental-update iterations on newly executed queries.
DEFAULT_UPDATE_STEPS = 10


@dataclass
class TrainConfig:
    """Hyper-parameters for initial CE training."""

    epochs: int = 60
    batch_size: int = 64
    lr: float = 1e-3
    seed: int = 0


@dataclass
class TrainResult:
    """Training diagnostics."""

    losses: list[float] = field(default_factory=list)


def _compiled_batch_loss(model: CardinalityEstimator, x: Tensor, y: Tensor):
    """Batch loss through the JIT plan cache; ``None`` -> interpreted path.

    Gradients are requested w.r.t. every parameter, so the returned loss
    tensor backpropagates into ``model``'s parameters exactly like the
    interpreted ``mse_loss(model(x), y)`` graph would.
    """
    named = list(model.named_parameters())
    names = [name for name, _ in named]
    params = [param for _, param in named]

    def build(xi, yi, *param_tensors):
        view = model.clone_with_parameters(dict(zip(names, param_tensors)))
        return mse_loss(view(xi), yi)

    outputs = compiled_call(
        ("ce.train_model", type(model).__name__),
        build,
        [
            CompiledInput(x),
            CompiledInput(y),
            *[CompiledInput(p, diff=True, want_grad=True) for p in params],
        ],
    )
    return None if outputs is None else outputs[0]


def train_model(
    model: CardinalityEstimator,
    workload: Workload,
    config: TrainConfig | None = None,
) -> TrainResult:
    """Fit ``model`` on ``workload`` (Eq. 1) with mini-batch Adam."""
    config = config or TrainConfig()
    if len(workload) == 0:
        raise TrainingError("cannot train on an empty workload")
    rng = derive_rng(config.seed)
    x_all = workload.encode(model.encoder)
    model.calibrate_normalization(workload.cardinalities)
    y_all = model.normalize_log(workload.cardinalities)

    optimizer = Adam(model.parameters(), lr=config.lr)
    result = TrainResult()
    n = len(workload)
    batch = min(config.batch_size, n)
    with sanitize_scope("ce.train_model"):
        for _epoch in range(config.epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            steps = 0
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                x = Tensor(x_all[idx])
                y = Tensor(y_all[idx])
                loss = _compiled_batch_loss(model, x, y)
                if loss is None:
                    prediction = model(x)
                    loss = mse_loss(prediction, y)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
                steps += 1
            result.losses.append(epoch_loss / max(steps, 1))
    return result


def training_loss(model: CardinalityEstimator, x: Tensor, y_norm: Tensor) -> Tensor:
    """The CE model's own training loss on a batch (normalized-log MSE)."""
    return mse_loss(model(x), y_norm)


def _compiled_update_run(
    model: CardinalityEstimator, x: Tensor, y: Tensor, steps: int, lr: float
):
    """All ``steps`` update iterations as one plan; ``None`` -> interpreted.

    Outputs are ``(*per_step_losses, *final_parameters)``. The traced update
    ``p - lr * g`` evaluates the same NumPy expression as the interpreted
    in-place ``p.data -= lr * p.grad.data``, and ``grad``'s zeros fallback
    makes a no-gradient parameter a no-op update, matching the interpreted
    ``if p.grad is not None`` guard bit for bit.
    """
    named = list(model.named_parameters())
    names = [name for name, _ in named]
    params = [param for _, param in named]

    def build(xi, yi, *param_tensors):
        current = model.clone_with_parameters(dict(zip(names, param_tensors)))
        losses = []
        for _ in range(steps):
            loss = training_loss(current, xi, yi)
            ps = [p for _, p in current.named_parameters()]
            gs = grad(loss, ps)
            current = current.clone_with_parameters(
                {name: p - lr * g for name, p, g in zip(names, ps, gs)}
            )
            losses.append(loss)
        return (*losses, *(p for _, p in current.named_parameters()))

    return compiled_call(
        ("ce.incremental_update", type(model).__name__),
        build,
        [
            CompiledInput(x),
            CompiledInput(y),
            *[CompiledInput(p, diff=True) for p in params],
        ],
        static=(steps, repr(float(lr))),
    )


def incremental_update(
    model: CardinalityEstimator,
    workload: Workload,
    steps: int = DEFAULT_UPDATE_STEPS,
    lr: float = DEFAULT_UPDATE_LR,
) -> list[float]:
    """Apply Eq. 9 in place: ``steps`` full-batch GD steps on ``workload``.

    This is what the deployed DBMS does with newly executed queries; the
    attack's whole premise is that it will run on poisoned ones too.
    Returns the per-step losses.
    """
    if len(workload) == 0:
        raise TrainingError("cannot update on an empty workload")
    x = Tensor(workload.encode(model.encoder))
    y = Tensor(model.normalize_log(workload.cardinalities))
    params = model.parameters()
    losses = []
    with sanitize_scope("ce.incremental_update"):
        compiled = _compiled_update_run(model, x, y, steps, lr)
        if compiled is not None:
            with no_grad():
                for p, updated in zip(params, compiled[steps:]):
                    p.data = updated.data
            model.zero_grad()
            return [float(t.data) for t in compiled[:steps]]
        for _ in range(steps):
            loss = training_loss(model, x, y)
            model.zero_grad()
            loss.backward()
            with no_grad():
                for p in params:
                    if p.grad is not None:
                        p.data -= lr * p.grad.data
            losses.append(loss.item())
    model.zero_grad()
    return losses


def unrolled_update(
    model: CardinalityEstimator,
    x: Tensor,
    y_norm: Tensor,
    steps: int = DEFAULT_UPDATE_STEPS,
    lr: float = DEFAULT_UPDATE_LR,
) -> CardinalityEstimator:
    """Differentiable version of :func:`incremental_update`.

    Returns a functional clone whose parameters are graph tensors
    ``theta_K = theta - lr * sum_k grad_k`` — gradients flow back through
    every step to ``x`` (and hence to the poisoning generator that produced
    ``x``). The original ``model`` is untouched.
    """
    if steps <= 0:
        raise TrainingError(f"unrolled update needs steps >= 1, got {steps}")
    names = [name for name, _ in model.named_parameters()]
    current = model
    with sanitize_scope("ce.unrolled_update"):
        for _ in range(steps):
            loss = training_loss(current, x, y_norm)
            params = [p for _, p in current.named_parameters()]
            grads = grad(loss, params, create_graph=True)
            mapping = {
                name: p - lr * g for name, p, g in zip(names, params, grads)
            }
            current = current.clone_with_parameters(mapping)
    return current


def evaluate_q_errors(model: CardinalityEstimator, workload: Workload) -> np.ndarray:
    """Per-query Q-errors of ``model`` on a labeled workload."""
    if len(workload) == 0:
        raise TrainingError("cannot evaluate on an empty workload")
    estimates = np.maximum(model.estimate_encoded(workload.encode(model.encoder)), 1e-9)
    truths = np.maximum(workload.cardinalities, 1.0)
    ratio = estimates / truths
    return np.maximum(ratio, 1.0 / ratio)
