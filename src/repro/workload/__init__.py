"""Workloads: query encodings, random and template-based generation."""

from repro.workload.encoding import QueryEncoder
from repro.workload.generator import WorkloadGenerator
from repro.workload.templates import QueryTemplate, default_templates, template_workload
from repro.workload.workload import Workload

__all__ = [
    "QueryEncoder",
    "WorkloadGenerator",
    "Workload",
    "QueryTemplate",
    "default_templates",
    "template_workload",
]
