"""Workload container: labeled queries plus convenience views."""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np

from repro.db.executor import Executor
from repro.db.query import LabeledQuery, Query
from repro.utils.errors import TrainingError
from repro.utils.rng import derive_rng
from repro.workload.encoding import QueryEncoder


@dataclass
class Workload:  # safe: R015 the _cards memo recomputes deterministically; last-writer-wins stores an identical array
    """An ordered collection of labeled queries.

    The example list is treated as immutable once views are taken:
    :meth:`encode` and :attr:`cardinalities` memoize their results (all
    manipulation methods return *new* workloads, so caches never go stale).
    """

    examples: list[LabeledQuery]
    # encoder id -> (weakref to encoder, read-only encoding matrix)
    _encodings: dict = field(  # safe: R015 idempotent memo keyed by encoder id; racing writers store equal matrices
        default_factory=dict, repr=False, compare=False
    )
    _cards: np.ndarray | None = field(default=None, repr=False, compare=False)

    @staticmethod
    def from_queries(queries, executor: Executor, drop_empty: bool = True) -> "Workload":
        """Label queries with true cardinalities via the executor.

        Zero-cardinality queries are dropped by default, matching the paper
        (queries with true cardinality 0 are eliminated during training).
        Queries whose COUNT(*) exceeds the execution budget (the statement
        timeout) are always dropped — the DBMS never obtains their labels.
        """
        from repro.utils.errors import ExecutionBudgetError

        examples = []
        for q in queries:
            try:
                card = executor.count(q)
            except ExecutionBudgetError:
                continue
            if card <= 0 and drop_empty:
                continue
            examples.append(LabeledQuery(q, card))
        return Workload(examples)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def queries(self) -> list[Query]:
        return [ex.query for ex in self.examples]

    @property
    def cardinalities(self) -> np.ndarray:
        if self._cards is None:
            cards = np.array([ex.cardinality for ex in self.examples], dtype=np.float64)
            cards.setflags(write=False)
            object.__setattr__(self, "_cards", cards)
        return self._cards

    def encode(self, encoder: QueryEncoder) -> np.ndarray:
        """Encoding matrix for this workload (memoized per encoder).

        The returned array is marked read-only; copy before mutating.
        """
        key = id(encoder)
        hit = self._encodings.get(key)
        if hit is not None:
            ref, matrix = hit
            if ref() is encoder:
                return matrix
        matrix = encoder.encode_many(self.queries)
        matrix.setflags(write=False)
        self._encodings[key] = (weakref.ref(encoder), matrix)
        return matrix

    def __len__(self) -> int:
        return len(self.examples)

    def __iter__(self):
        return iter(self.examples)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Workload(self.examples[index])
        return self.examples[index]

    # ------------------------------------------------------------------
    # manipulation
    # ------------------------------------------------------------------
    def split(self, fraction: float, seed=0) -> tuple["Workload", "Workload"]:
        """Shuffle and split into ``(first, second)`` at ``fraction``."""
        if not 0.0 < fraction < 1.0:
            raise TrainingError(f"split fraction must be in (0, 1), got {fraction}")
        rng = derive_rng(seed)
        order = rng.permutation(len(self.examples))
        cut = int(round(fraction * len(self.examples)))
        first = [self.examples[i] for i in order[:cut]]
        second = [self.examples[i] for i in order[cut:]]
        return Workload(first), Workload(second)

    def shuffled(self, seed=0) -> "Workload":
        rng = derive_rng(seed)
        order = rng.permutation(len(self.examples))
        return Workload([self.examples[i] for i in order])

    def chunks(self, parts: int) -> list["Workload"]:
        """Split into ``parts`` near-equal consecutive chunks (Fig. 14)."""
        if parts <= 0:
            raise TrainingError(f"parts must be positive, got {parts}")
        bounds = np.linspace(0, len(self.examples), parts + 1).astype(int)
        return [Workload(self.examples[a:b]) for a, b in zip(bounds[:-1], bounds[1:])]

    def __add__(self, other: "Workload") -> "Workload":
        return Workload(self.examples + other.examples)

    def subset(self, indices) -> "Workload":
        return Workload([self.examples[i] for i in indices])
