"""Template-based workloads (IMDB-JOB / STATS-CEB style).

The paper generates IMDB and STATS workloads from the JOB and CEB query
templates: fixed join sets with randomized predicates. Templates here are
derived from the schema's join graph — a spread of connected join sets of
increasing size — and instantiated with data-centered predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.executor import Executor
from repro.db.table import Database
from repro.utils.errors import QueryError
from repro.utils.rng import derive_rng
from repro.workload.generator import WorkloadGenerator
from repro.workload.workload import Workload


@dataclass(frozen=True)
class QueryTemplate:
    """A fixed join set with a bounded number of filtered columns."""

    name: str
    tables: frozenset[str]
    max_columns: int = 3


def default_templates(database: Database, count: int = 12, max_tables: int = 4,
                      seed=0) -> list[QueryTemplate]:
    """Derive ``count`` templates spanning join sizes 1..max_tables.

    Join sets are sampled by random walk, de-duplicated, and named
    ``t<size>_<index>`` — a synthetic stand-in for the JOB/CEB template
    families.
    """
    rng = derive_rng(seed)
    generator = WorkloadGenerator(database, seed=rng)
    seen: set[frozenset[str]] = set()
    templates: list[QueryTemplate] = []
    attempts = 0
    while len(templates) < count and attempts < count * 30:
        attempts += 1
        size = 1 + (attempts % max_tables)
        join_set = generator.random_join_set(max_tables=size)
        if join_set in seen:
            continue
        seen.add(join_set)
        templates.append(
            QueryTemplate(
                name=f"t{len(join_set)}_{len(templates)}",
                tables=join_set,
                max_columns=3,
            )
        )
    if not templates:
        raise QueryError("could not derive any query templates")
    return templates


def template_workload(
    database: Database,
    count: int,
    templates: list[QueryTemplate] | None = None,
    executor: Executor | None = None,
    seed=0,
) -> Workload:
    """A labeled workload instantiated round-robin from templates."""
    rng = derive_rng(seed)
    executor = executor or Executor(database)
    generator = WorkloadGenerator(database, executor=executor, seed=rng)
    templates = templates or default_templates(database, seed=rng)
    examples = []
    attempts = 0
    budget = count * 15
    i = 0
    from repro.db.query import LabeledQuery

    from repro.utils.errors import ExecutionBudgetError

    while len(examples) < count and attempts < budget:
        attempts += 1
        template = templates[i % len(templates)]
        i += 1
        n_cols = int(rng.integers(1, template.max_columns + 1))
        query = generator.random_query(tables=template.tables, n_columns=n_cols)
        try:
            card = executor.count(query)
        except ExecutionBudgetError:
            continue
        if card <= 0:
            continue
        examples.append(LabeledQuery(query, card))
    if len(examples) < count:
        raise QueryError(
            f"template workload generation stalled at {len(examples)}/{count}"
        )
    return Workload(examples)
