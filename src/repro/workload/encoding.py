"""Query <-> vector encoding (Section 5.2 of the paper).

A query over a schema with ``T`` tables and ``A`` global attributes becomes
a vector of width ``T + 2A``:

* positions ``[0, T)`` — binary join vector (1 = table participates);
* positions ``[T + 2i, T + 2i + 2)`` — normalized ``[low, high]`` bounds of
  attribute ``i`` (schema attribute order); unconstrained attributes and
  attributes of non-joined tables encode as ``[0, 1]``.

The encoder is shared by every consumer — CE models, the PACE generator,
the anomaly detector — so the layout lives in exactly one place.
"""

from __future__ import annotations

import numpy as np

from repro.db.query import Query
from repro.db.schema import DatabaseSchema
from repro.utils.errors import EncodingError

#: Bounds closer than this to [0, 1] are treated as "no predicate" on decode.
_OPEN_EPS = 1e-9


class QueryEncoder:
    """Encodes queries of one schema into fixed-width vectors."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self.num_tables = schema.num_tables
        self.num_attributes = schema.num_attributes
        self.dim = self.num_tables + 2 * self.num_attributes
        # (T, A) 0/1 matrix: attribute_mask[t, a] == 1 iff attribute a
        # belongs to table t. Used to mask generated predicates.
        self.attribute_mask = np.zeros((self.num_tables, self.num_attributes))
        for a, (table, _col) in enumerate(schema.attribute_order):
            self.attribute_mask[schema.table_index(table), a] = 1.0
        # Flat lookup tables so the batch encoder never walks the schema.
        self._table_index = {name: i for i, name in enumerate(schema.table_names)}
        self._attr_index = {key: a for a, key in enumerate(schema.attribute_order)}
        self._attr_order = list(schema.attribute_order)

    def _attribute_position(self, table: str, col: str) -> int:
        position = self._attr_index.get((table, col))
        if position is None:
            # Defer to the schema for its (richer) unknown-attribute error.
            position = self.schema.attribute_index(table, col)
        return position

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    def encode(self, query: Query) -> np.ndarray:
        """Vector representation of one query."""
        vec = np.zeros(self.dim)
        base = self.num_tables
        vec[base + 1 :: 2] = 1.0
        for table in query.tables:
            vec[self._table_index[table]] = 1.0
        for (table, col), (low, high) in query.predicates.items():
            a = self._attribute_position(table, col)
            vec[base + 2 * a] = low
            vec[base + 2 * a + 1] = high
        return vec

    def encode_many(self, queries) -> np.ndarray:
        """Matrix of encodings, one row per query.

        Batched: per-query structure is flattened into index arrays once,
        then written with two fancy-index scatters instead of one numpy
        round-trip per (query, attribute) pair.
        """
        queries = list(queries)
        n = len(queries)
        out = np.zeros((n, self.dim))
        base = self.num_tables
        out[:, base + 1 :: 2] = 1.0
        if n == 0:
            return out
        table_index = self._table_index
        join_rows: list[int] = []
        join_cols: list[int] = []
        pred_rows: list[int] = []
        pred_cols: list[int] = []
        pred_lows: list[float] = []
        pred_highs: list[float] = []
        for i, query in enumerate(queries):
            for table in query.tables:
                join_rows.append(i)
                join_cols.append(table_index[table])
            for (table, col), (low, high) in query.predicates.items():
                a = self._attribute_position(table, col)
                pred_rows.append(i)
                pred_cols.append(base + 2 * a)
                pred_lows.append(low)
                pred_highs.append(high)
        if join_rows:
            out[join_rows, join_cols] = 1.0
        if pred_rows:
            rows = np.asarray(pred_rows)
            cols = np.asarray(pred_cols)
            out[rows, cols] = pred_lows
            out[rows, cols + 1] = pred_highs
        return out

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def decode(self, vector: np.ndarray, repair: bool = False, snap: float = 0.02) -> Query:
        """Reconstruct a query from a vector.

        Join bits are thresholded at 0.5; bound pairs with ``low > high``
        are swapped; bounds equal to ``[0, 1]`` become "no predicate".

        Args:
            repair: when the thresholded join set is invalid (empty or
                disconnected), fall back to the best valid subset instead of
                raising — the connected component with the largest total
                join-bit mass, or the single highest-bit table.
            snap: bounds within ``snap`` of the domain edge are snapped onto
                it, so a generated "almost unconstrained" attribute decodes
                to an actually unconstrained one (continuous generators
                cannot emit exact 0/1 through a sigmoid).

        Raises:
            EncodingError: wrong vector width, or invalid join set with
                ``repair=False``.
        """
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise EncodingError(f"expected vector of shape ({self.dim},), got {vector.shape}")
        join_bits = vector[: self.num_tables]
        tables = {self.schema.table_names[i] for i in np.nonzero(join_bits > 0.5)[0]}
        if not self.schema.is_valid_join_set(tables):
            if not repair:
                raise EncodingError(f"decoded join set {sorted(tables)} is invalid")
            tables = self._repair_join_set(join_bits, tables)

        predicates: dict[tuple[str, str], tuple[float, float]] = {}
        base = self.num_tables
        for a, (table, col) in enumerate(self.schema.attribute_order):
            if table not in tables:
                continue
            low = float(np.clip(vector[base + 2 * a], 0.0, 1.0))
            high = float(np.clip(vector[base + 2 * a + 1], 0.0, 1.0))
            if low > high:
                low, high = high, low
            if low <= snap:
                low = 0.0
            if high >= 1.0 - snap:
                high = 1.0
            if low <= _OPEN_EPS and high >= 1.0 - _OPEN_EPS:
                continue
            predicates[(table, col)] = (low, high)
        return Query.build(self.schema, tables, predicates)

    def decode_many(self, matrix: np.ndarray, repair: bool = False) -> list[Query]:
        return [self.decode(row, repair=repair) for row in np.asarray(matrix)]

    def _repair_join_set(self, join_bits: np.ndarray, tables: set[str]) -> set[str]:
        import networkx as nx

        if not tables:
            best = int(np.argmax(join_bits))
            return {self.schema.table_names[best]}
        graph = self.schema.join_graph().subgraph(tables)
        components = list(nx.connected_components(graph))
        # Sum in schema order: summing in set-iteration order would make the
        # float total (and near-tie argmax picks) hash-seed dependent.
        scores = [
            sum(join_bits[i] for i in sorted(self.schema.table_index(t) for t in comp))
            for comp in components
        ]
        return set(components[int(np.argmax(scores))])

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    def join_slice(self) -> slice:
        """Positions of the join-bit section."""
        return slice(0, self.num_tables)

    def predicate_slice(self) -> slice:
        """Positions of the bounds section."""
        return slice(self.num_tables, self.dim)

    def bounds_positions(self, table: str, column: str) -> tuple[int, int]:
        """Vector positions of ``(low, high)`` for one attribute."""
        a = self.schema.attribute_index(table, column)
        base = self.num_tables
        return base + 2 * a, base + 2 * a + 1

    def expand_attribute_mask(self, join_binary: np.ndarray) -> np.ndarray:
        """Per-attribute 0/1 mask implied by a batch of join vectors.

        Args:
            join_binary: ``(batch, T)`` 0/1 matrix.

        Returns:
            ``(batch, A)`` matrix: 1 where the attribute's table is joined.
        """
        join_binary = np.asarray(join_binary, dtype=np.float64)
        return join_binary @ self.attribute_mask
