"""Random SPJ workload generation.

Training/testing workloads follow the recipe the paper borrows from
Learned-CE evaluations: random connected join sets over the FK graph,
random attribute subsets, and range predicates centered on actual data
values (so queries are rarely empty). The probe workloads used for
model-type speculation (Section 4.1) vary the column count and predicate
range size explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.db.executor import Executor
from repro.db.query import Query
from repro.db.table import Database
from repro.utils.errors import QueryError
from repro.utils.rng import derive_rng
from repro.workload.workload import Workload


class WorkloadGenerator:
    """Generates labeled random workloads over one database."""

    def __init__(
        self,
        database: Database,
        executor: Executor | None = None,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        self.database = database
        self.schema = database.schema
        self.executor = executor or Executor(database)
        self.rng = derive_rng(seed)

    # ------------------------------------------------------------------
    # join sets
    # ------------------------------------------------------------------
    def random_join_set(self, max_tables: int = 4) -> frozenset[str]:
        """A connected join set grown by a random walk on the FK graph."""
        tables = list(self.schema.table_names)
        current = {tables[self.rng.integers(len(tables))]}
        target = int(self.rng.integers(1, max(min(max_tables, len(tables)), 1) + 1))
        while len(current) < target:
            frontier = sorted(
                {n for t in current for n in self.schema.neighbors(t)} - current
            )
            if not frontier:
                break
            current.add(frontier[self.rng.integers(len(frontier))])
        return frozenset(current)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def random_query(
        self,
        max_tables: int = 4,
        n_columns: int | None = None,
        range_scale: float | None = None,
        tables: frozenset[str] | None = None,
    ) -> Query:
        """One random SPJ query (unlabeled).

        Args:
            max_tables: upper bound on the join-set size.
            n_columns: exact number of filtered attributes (default: random
                1..4, capped by availability).
            range_scale: predicate width in normalized units (default:
                random widths spanning narrow to wide).
            tables: fix the join set instead of sampling one.
        """
        join_set = tables or self.random_join_set(max_tables)
        # Schema order, not set order: the RNG draws indices into this list,
        # so its layout must not depend on the process hash seed.
        ordered = sorted(join_set, key=self.schema.table_index)
        available = [tc for t in ordered for tc in self.schema.attributes_of(t)]
        if not available:
            raise QueryError(f"join set {sorted(join_set)} has no filterable attributes")
        if n_columns is None:
            k = int(self.rng.integers(1, min(4, len(available)) + 1))
        else:
            k = min(n_columns, len(available))
        chosen_idx = self.rng.choice(len(available), size=k, replace=False)
        predicates: dict[tuple[str, str], tuple[float, float]] = {}
        for idx in np.atleast_1d(chosen_idx):
            table, col = available[int(idx)]
            width = range_scale if range_scale is not None else float(
                np.exp(self.rng.uniform(np.log(0.02), np.log(0.9)))
            )
            center = self._data_centered_value(table, col)
            low = float(np.clip(center - width / 2.0, 0.0, 1.0))
            high = float(np.clip(center + width / 2.0, 0.0, 1.0))
            if high <= low:
                high = min(low + 1e-3, 1.0)
            predicates[(table, col)] = (low, high)
        return Query.build(self.schema, join_set, predicates)

    def _data_centered_value(self, table: str, col: str) -> float:
        """A normalized predicate center sampled from the actual data."""
        column = self.schema.table(table).column(col)
        values = self.database.table(table).column(col)
        sample = values[self.rng.integers(len(values))]
        return float(column.normalize(sample))

    # ------------------------------------------------------------------
    # workloads
    # ------------------------------------------------------------------
    def generate(
        self,
        count: int,
        max_tables: int = 4,
        n_columns: int | None = None,
        range_scale: float | None = None,
        max_attempts_factor: int = 10,
    ) -> Workload:
        """A labeled workload of ``count`` non-empty queries.

        Queries whose true cardinality is zero are rejected and resampled
        (the paper drops them); gives up with :class:`QueryError` when the
        rejection rate makes the target unreachable.
        """
        from repro.utils.errors import ExecutionBudgetError

        examples = []
        attempts = 0
        budget = max(count * max_attempts_factor, 50)
        while len(examples) < count and attempts < budget:
            attempts += 1
            query = self.random_query(
                max_tables=max_tables, n_columns=n_columns, range_scale=range_scale
            )
            try:
                card = self.executor.count(query)
            except ExecutionBudgetError:
                continue
            if card <= 0:
                continue
            examples.append((query, card))
        if len(examples) < count:
            raise QueryError(
                f"could only generate {len(examples)}/{count} non-empty queries "
                f"in {attempts} attempts"
            )
        from repro.db.query import LabeledQuery

        return Workload([LabeledQuery(q, c) for q, c in examples])

    def probe_workloads(
        self,
        queries_per_group: int = 10,
        column_counts=(1, 2, 3),
        range_scales=(0.05, 0.3, 0.8),
        max_tables: int = 3,
    ) -> list[tuple[str, Workload]]:
        """Property-grouped probe workloads for model-type speculation.

        Each group fixes either the filtered-column count or the predicate
        range size, because those are the properties along which the six CE
        model families behave measurably differently (Section 4.1).
        """
        groups: list[tuple[str, Workload]] = []
        for n_cols in column_counts:
            wl = self.generate(queries_per_group, max_tables=max_tables, n_columns=n_cols)
            groups.append((f"cols={n_cols}", wl))
        for scale in range_scales:
            wl = self.generate(queries_per_group, max_tables=max_tables, range_scale=scale)
            groups.append((f"range={scale}", wl))
        return groups
