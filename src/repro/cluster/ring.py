"""Consistent-hash ring: shard keys to workers, stable under churn.

The router shards traffic by *join template* — the sorted table set of a
query, prefixed with the tenant that issued it — so every estimate for
one (tenant, template) pair lands on the same worker, whose per-tenant
estimator instance and cache stay hot. A consistent-hash ring keeps that
assignment stable when the worker set changes: removing one of N workers
remaps only the keys in its ring span (≈ K/N of K keys), never reshuffles
the survivors.

Hash positions come from SHA-256, **not** Python's builtin ``hash``:
string hashing is salted per process (PYTHONHASHSEED), and the whole
point of the ring is that the router and every worker process — and a
re-spawned replacement — independently derive the identical mapping.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable

from repro.utils.errors import ReproError

#: Virtual nodes per worker; more vnodes = smoother load at ring cost.
DEFAULT_VNODES = 64


def ring_position(label: str) -> int:
    """The 64-bit ring position of ``label`` (process-independent)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def shard_key(tenant: str, tables: Iterable[str]) -> str:
    """The routing key for one request: tenant + canonical join template."""
    return f"{tenant}|{'+'.join(sorted(tables))}"


class HashRing:
    """A consistent-hash ring over named worker nodes."""

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ReproError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = int(vnodes)
        self._nodes: set[str] = set()
        self._points: list[int] = []        # sorted vnode positions
        self._owners: dict[int, str] = {}   # position -> node
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Insert ``node`` (its vnodes claim their spans from neighbors)."""
        if node in self._nodes:
            raise ReproError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for position in self._positions_of(node):
            # Ties are astronomically unlikely with 64-bit positions, but
            # deterministic: the lexicographically smaller node wins.
            owner = self._owners.get(position)
            if owner is not None:
                if node < owner:
                    self._owners[position] = node
                continue
            self._owners[position] = node
            idx = bisect_right(self._points, position)
            self._points.insert(idx, position)

    def remove(self, node: str) -> None:
        """Drop ``node``; its spans fall to each span's ring successor."""
        if node not in self._nodes:
            raise ReproError(f"node {node!r} is not on the ring")
        self._nodes.remove(node)
        for position in self._positions_of(node):
            if self._owners.get(position) != node:
                continue  # lost a (theoretical) tie to another node
            del self._owners[position]
            idx = bisect_right(self._points, position) - 1
            if 0 <= idx < len(self._points) and self._points[idx] == position:
                del self._points[idx]

    def _positions_of(self, node: str) -> list[int]:
        return [ring_position(f"{node}#{i}") for i in range(self.vnodes)]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def node_for(self, key: str) -> str:
        """The worker owning ``key`` (first vnode clockwise of its hash)."""
        if not self._points:
            raise ReproError("the ring has no nodes")
        position = ring_position(key)
        idx = bisect_right(self._points, position)
        if idx == len(self._points):
            idx = 0  # wrap past the top of the ring
        return self._owners[self._points[idx]]

    def mapping_of(self, keys: Iterable[str]) -> dict[str, str]:
        """Key -> owning node, for a whole batch of keys."""
        return {key: self.node_for(key) for key in keys}

    def spans(self) -> dict[str, float]:
        """Fraction of the ring each node owns (sums to 1.0)."""
        if not self._points:
            return {}
        total = float(2**64)
        fractions = {node: 0.0 for node in self._nodes}
        for i, position in enumerate(self._points):
            previous = self._points[i - 1] if i > 0 else self._points[-1] - 2**64
            fractions[self._owners[position]] += (position - previous) / total
        return fractions
