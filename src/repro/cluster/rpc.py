"""Framed RPC over multiprocessing pipes (and an in-process twin).

Every message between the router and a shard worker is one *frame*:

    ``magic(4) | version(1) | crc32(4) | length(4) | body``

where the body is canonical JSON ``{"kind", "seq", "payload"}``. The CRC
and length make torn or corrupted transport bytes a loud
:class:`RpcError` instead of a silently wrong estimate, and the sequence
number lets a retrying client discard stale replies.

Two transports implement the same :class:`Endpoint` byte interface:

* :class:`PipeEndpoint` wraps a ``multiprocessing.Connection`` — the real
  thing, used when workers are separate spawned processes;
* :class:`InlineEndpoint` hosts a handler in-process — the deterministic
  simulation transport. It still routes every message through
  ``encode_frame``/``decode_frame``, so the sim exercises the identical
  serialization path, and it catches :class:`~repro.store.faults.CrashPoint`
  (a ``BaseException``) at the boundary, which is exactly what a worker
  process dying mid-request looks like to the router: a closed endpoint.

:class:`RpcChannel` adds request/response semantics with timeouts and
bounded retries on top of any endpoint.
"""

from __future__ import annotations

import json
import struct
import zlib
from collections import deque
from typing import Callable

from repro.store.faults import CrashPoint
from repro.utils.errors import ReproError

MAGIC = b"PRPC"
VERSION = 1
_HEADER = struct.Struct(">4sBII")  # magic, version, crc32, body length

#: Hard cap on one frame's body; a frame this large is a bug, not traffic.
MAX_BODY_BYTES = 64 * 1024 * 1024


class RpcError(ReproError):
    """Malformed frame, protocol violation, or transport failure."""


class RpcTimeout(RpcError):
    """No reply arrived within the deadline."""


class EndpointClosed(RpcError):
    """The peer is gone (process died, pipe closed, inline host crashed)."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(kind: str, seq: int, payload) -> bytes:
    """Serialize one message into a framed byte string."""
    body = json.dumps(
        {"kind": kind, "seq": int(seq), "payload": payload},
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    return _HEADER.pack(MAGIC, VERSION, zlib.crc32(body), len(body)) + body


def decode_frame(data: bytes) -> tuple[str, int, object]:
    """Parse and validate a framed byte string -> (kind, seq, payload)."""
    if len(data) < _HEADER.size:
        raise RpcError(f"short frame: {len(data)} bytes < {_HEADER.size}-byte header")
    magic, version, crc, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise RpcError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise RpcError(f"unsupported frame version {version} (expected {VERSION})")
    if length > MAX_BODY_BYTES:
        raise RpcError(f"frame body of {length} bytes exceeds cap {MAX_BODY_BYTES}")
    body = data[_HEADER.size:]
    if len(body) != length:
        raise RpcError(f"torn frame: header says {length} body bytes, got {len(body)}")
    if zlib.crc32(body) != crc:
        raise RpcError("frame CRC mismatch (corrupted in transport)")
    message = json.loads(body.decode("utf-8"))
    return str(message["kind"]), int(message["seq"]), message["payload"]


# ----------------------------------------------------------------------
# endpoints
# ----------------------------------------------------------------------
class Endpoint:
    """One side of a bidirectional framed byte channel."""

    def send(self, data: bytes) -> None:
        raise NotImplementedError

    def recv(self, timeout: float | None = None) -> bytes:
        raise NotImplementedError

    def poll(self, timeout: float = 0.0) -> bool:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError


class PipeEndpoint(Endpoint):
    """Frames over a ``multiprocessing.Connection`` (the real transport)."""

    def __init__(self, connection) -> None:
        self._conn = connection
        self._closed = False

    def send(self, data: bytes) -> None:
        if self._closed:
            raise EndpointClosed("endpoint is closed")
        try:
            self._conn.send_bytes(data)
        except (OSError, ValueError, BrokenPipeError, EOFError) as exc:
            self._closed = True
            raise EndpointClosed(f"peer went away during send: {exc}") from exc

    def recv(self, timeout: float | None = None) -> bytes:
        if self._closed:
            raise EndpointClosed("endpoint is closed")
        try:
            if timeout is not None and not self._conn.poll(timeout):
                raise RpcTimeout(f"no frame within {timeout}s")
            return self._conn.recv_bytes()
        except EOFError as exc:
            self._closed = True
            raise EndpointClosed("peer closed the pipe") from exc
        except (OSError, ValueError) as exc:
            self._closed = True
            raise EndpointClosed(f"pipe failed during recv: {exc}") from exc

    def poll(self, timeout: float = 0.0) -> bool:
        if self._closed:
            return False
        try:
            return bool(self._conn.poll(timeout))
        except (OSError, EOFError, ValueError):
            self._closed = True
            return False

    def close(self) -> None:
        self._closed = True
        try:
            self._conn.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed


class InlineEndpoint(Endpoint):
    """In-process endpoint hosting a frame handler (simulation transport).

    ``send`` runs ``handler(frame_bytes)`` synchronously and queues its
    reply frames for ``recv``. A :class:`CrashPoint` escaping the handler
    — a fault drill killing the hosted worker — permanently closes the
    endpoint, mirroring a dead worker process.
    """

    def __init__(self, handler: Callable[[bytes], list[bytes]]) -> None:
        self._handler = handler
        self._replies: deque[bytes] = deque()
        self._closed = False

    def send(self, data: bytes) -> None:
        if self._closed:
            raise EndpointClosed("inline worker is dead")
        try:
            self._replies.extend(self._handler(data))
        except CrashPoint as exc:
            self._closed = True
            raise EndpointClosed(f"inline worker crashed: {exc}") from exc

    def recv(self, timeout: float | None = None) -> bytes:
        if self._closed:
            raise EndpointClosed("inline worker is dead")
        if not self._replies:
            # The inline transport is synchronous: no pending reply now
            # means none will ever arrive, however long we wait.
            raise RpcTimeout("inline endpoint has no pending reply")
        return self._replies.popleft()

    def poll(self, timeout: float = 0.0) -> bool:
        return bool(self._replies) and not self._closed

    def close(self) -> None:
        self._closed = True
        self._replies.clear()

    @property
    def closed(self) -> bool:
        return self._closed


# ----------------------------------------------------------------------
# request/response channel
# ----------------------------------------------------------------------
class RpcChannel:
    """Request/response client over an :class:`Endpoint`.

    Retries are only safe because every worker operation is idempotent by
    design: estimates are pure given the replica's parameters, and
    ``warm_restart``/``ping``/``stats`` can be re-applied freely. The
    sequence number identifies each request's reply; stale replies (from
    a timed-out earlier attempt) are discarded, never mis-delivered.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        timeout: float = 10.0,
        retries: int = 1,
    ) -> None:
        self.endpoint = endpoint
        self.timeout = timeout
        self.retries = int(retries)
        self._seq = 0

    def begin(self, kind: str, payload) -> int:
        """Send one request frame; returns its sequence number."""
        self._seq += 1
        self.endpoint.send(encode_frame(kind, self._seq, payload))
        return self._seq

    def finish(self, seq: int, timeout: float | None = None):
        """Wait for the reply to request ``seq`` and return its payload."""
        deadline_timeout = self.timeout if timeout is None else timeout
        while True:
            reply_kind, reply_seq, payload = decode_frame(
                self.endpoint.recv(timeout=deadline_timeout)
            )
            if reply_seq < seq:
                continue  # stale reply from a timed-out earlier attempt
            if reply_seq != seq:
                raise RpcError(
                    f"out-of-order reply: expected seq {seq}, got {reply_seq}"
                )
            if reply_kind == "error":
                raise RpcError(f"worker error: {payload}")
            return payload

    def call(self, kind: str, payload, timeout: float | None = None,
             retries: int | None = None):
        """``begin`` + ``finish`` with bounded retries on timeout."""
        attempts = 1 + (self.retries if retries is None else int(retries))
        last: RpcTimeout | None = None
        for _ in range(attempts):
            seq = self.begin(kind, payload)
            try:
                return self.finish(seq, timeout=timeout)
            except RpcTimeout as exc:
                last = exc
        raise RpcTimeout(
            f"rpc {kind!r} timed out after {attempts} attempt(s): {last}"
        )
